//! The request/response serving front-end over a shared [`ReleaseEngine`].
//!
//! Architecture: submitters pass admission control (per-user ε-budget, then
//! the bounded queue) and receive a [`Ticket`]; a [`WorkerPool`] drains the
//! queue, drives the sharded engine (one `Arc<ReleaseEngine>` shared by all
//! workers — calibrations are cached and stampede-coalesced there), and
//! fulfils the ticket. Back-pressure is explicit: a full queue refuses
//! [`ReleaseService::try_submit`] rather than growing without bound.
//!
//! Budget semantics: the ε spend is committed atomically at *admission*, so
//! concurrent submissions can never jointly overdraw a user's budget. If the
//! queue then refuses the request, the spend is rolled back; if the release
//! itself later fails in the mechanism layer, the spend is *kept* — the
//! conservative choice, since a failed release may still have consumed
//! information (and admission, not outcome, is what the accountant can
//! reason about atomically).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use pufferfish_core::queries::LipschitzQuery;
use pufferfish_core::snapshot::unix_now;
use pufferfish_core::{
    CalibrationSnapshot, NoisyRelease, PrivacyBudget, PufferfishError, ReleaseEngine,
};
use pufferfish_parallel::{Parallelism, WorkerPool};
use pufferfish_telemetry::{query_signature, LedgerEventKind, RequestTrace, Stage};

use crate::budget::SpendTag;
use crate::queue::{BoundedQueue, PushError};
use crate::telemetry::ServiceTelemetry;
use crate::{BudgetAccountant, ReleaseObserver, ServiceError, ServiceStats};

/// One release request, self-contained and thread-portable.
///
/// The `seed` makes the request's noise deterministic (each worker derives
/// its RNG from it), so identical request streams produce identical
/// responses regardless of worker scheduling — the property the service
/// tests rely on.
#[derive(Clone)]
pub struct ReleaseRequest {
    /// Budget owner this release is charged to.
    pub user: String,
    /// The query to release.
    pub query: Arc<dyn LipschitzQuery>,
    /// The database (state sequence) to evaluate on.
    pub database: Vec<usize>,
    /// Per-release privacy parameter ε.
    pub epsilon: f64,
    /// Seed for the release's Laplace noise.
    pub seed: u64,
}

impl std::fmt::Debug for ReleaseRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleaseRequest")
            .field("user", &self.user)
            .field("query", &self.query.name())
            .field("database_len", &self.database.len())
            .field("epsilon", &self.epsilon)
            .field("seed", &self.seed)
            .finish()
    }
}

/// Single-use response slot shared between a ticket and the worker that
/// fulfils it.
struct ResponseSlot {
    result: Mutex<Option<Result<NoisyRelease, ServiceError>>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfil(&self, result: Result<NoisyRelease, ServiceError>) {
        *self.result.lock().expect("response slot poisoned") = Some(result);
        self.ready.notify_all();
    }
}

/// A claim on the eventual response to a submitted request.
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// `true` once the response is available ([`Ticket::wait`] will not
    /// block).
    pub fn is_ready(&self) -> bool {
        self.slot
            .result
            .lock()
            .expect("response slot poisoned")
            .is_some()
    }

    /// Blocks until the worker fulfils the request and returns the release.
    ///
    /// # Errors
    /// Mechanism-layer failures ([`ServiceError::Mechanism`]) and
    /// [`ServiceError::ServiceClosed`] when the service shut down before a
    /// worker reached the request.
    pub fn wait(self) -> Result<NoisyRelease, ServiceError> {
        let mut result = self.slot.result.lock().expect("response slot poisoned");
        loop {
            if let Some(response) = result.take() {
                return response;
            }
            result = self
                .slot
                .ready
                .wait(result)
                .expect("response slot poisoned");
        }
    }

    /// Waits at most `timeout` for the response — the bounded-latency wait
    /// the network front-end's connection writers use so one slow release
    /// can never wedge a whole connection.
    ///
    /// On success the response is **consumed**: a later
    /// [`Ticket::wait`]/`wait_timeout` on the same ticket reports
    /// [`ServiceError::ServiceClosed`] instead of blocking forever. A zero
    /// `timeout` is a pure poll.
    ///
    /// # Errors
    /// [`ServiceError::WaitTimeout`] when the response did not arrive in
    /// time (the request is still in flight and the ticket remains usable);
    /// otherwise as for [`Ticket::wait`].
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Result<NoisyRelease, ServiceError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut result = self.slot.result.lock().expect("response slot poisoned");
        loop {
            if let Some(response) = result.take() {
                // Leave a closed marker so a (buggy) second wait on the
                // consumed ticket fails fast instead of hanging.
                *result = Some(Err(ServiceError::ServiceClosed));
                return response;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|r| !r.is_zero())
            else {
                return Err(ServiceError::WaitTimeout { waited: timeout });
            };
            let (guard, _timed_out) = self
                .slot
                .ready
                .wait_timeout(result, remaining)
                .expect("response slot poisoned");
            result = guard;
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// A queued unit of work: the request, the slot its response goes to, and
/// the tracing context it carries through the worker pool.
struct Job {
    request: ReleaseRequest,
    slot: Arc<ResponseSlot>,
    /// When the job entered admission. Together with `admitted_at` the
    /// worker derives the admission and queue-wait stages from these two
    /// timestamps (the endpoints live on different threads, so an RAII
    /// span cannot time either stage) — which keeps the warm admission
    /// path free of any telemetry lookup at all.
    submitted_at: Instant,
    /// When admission accepted the job (the queue-wait clock start).
    admitted_at: Instant,
    /// The caller's request trace, when one rides along (the network
    /// front-end threads one through so decode/encode on the connection
    /// threads and the worker stages land in one breakdown).
    trace: Option<Arc<RequestTrace>>,
}

impl Drop for Job {
    /// Fulfils the slot with [`ServiceError::ServiceClosed`] if nothing else
    /// did: a job dropped before its worker produced a response (worker
    /// panic mid-release, admission rollback, queue teardown) must never
    /// leave a submitter blocked in [`Ticket::wait`] forever.
    fn drop(&mut self) {
        // Tolerate a poisoned slot here — this guard runs during unwinding,
        // and a second panic would abort the process.
        let mut result = match self.slot.result.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if result.is_none() {
            *result = Some(Err(ServiceError::ServiceClosed));
            drop(result);
            self.slot.ready.notify_all();
        }
    }
}

/// Tuning knobs for [`ReleaseService::start`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker-pool size ([`Parallelism::Auto`] = one worker per core).
    pub workers: Parallelism,
    /// Admission-queue capacity (back-pressure threshold, clamped to ≥ 1).
    pub queue_capacity: usize,
    /// Total ε budget granted to each user across all their releases.
    pub per_user_epsilon: f64,
}

impl Default for ServiceConfig {
    /// All cores, a 256-deep queue, and a per-user budget of ε = 1.
    fn default() -> Self {
        ServiceConfig {
            workers: Parallelism::Auto,
            queue_capacity: 256,
            per_user_epsilon: 1.0,
        }
    }
}

/// A concurrent Pufferfish release service.
///
/// # Trust boundary
///
/// Responses are full [`NoisyRelease`] values — including `true_values`,
/// per the workspace-wide experiment-harness convention — and noise seeds
/// are supplied by the requester so traffic is replayable. Both are right
/// for benchmarking and testing, but they sit *inside* the trust boundary:
/// a deployment exposing this service to untrusted clients must strip
/// `true_values` from responses and draw seeds from a server-side CSPRNG,
/// otherwise the ε accounting guards nothing.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pufferfish_core::engine::{MqmApproxCalibrator, ReleaseEngine};
/// use pufferfish_core::queries::StateFrequencyQuery;
/// use pufferfish_core::{MqmApproxOptions, Parallelism};
/// use pufferfish_markov::IntervalClassBuilder;
/// use pufferfish_service::{ReleaseRequest, ReleaseService, ServiceConfig, ServiceError};
///
/// let class = IntervalClassBuilder::symmetric(0.4).grid_points(2).build().unwrap();
/// let engine = ReleaseEngine::shared(MqmApproxCalibrator::new(
///     class,
///     60,
///     MqmApproxOptions::default(),
/// ));
/// let service = ReleaseService::start(
///     engine,
///     ServiceConfig {
///         workers: Parallelism::Threads(2),
///         queue_capacity: 8,
///         per_user_epsilon: 1.0,
///     },
/// )
/// .unwrap();
///
/// let request = |seed: u64| ReleaseRequest {
///     user: "alice".to_string(),
///     query: Arc::new(StateFrequencyQuery::new(1, 60)),
///     database: vec![0; 60],
///     epsilon: 0.5,
///     seed,
/// };
/// // Two releases of ε = 0.5 fit alice's budget of 1.0.
/// let first = service.submit(request(1)).unwrap();
/// let second = service.submit(request(2)).unwrap();
/// assert_eq!(first.wait().unwrap().values.len(), 1);
/// assert_eq!(second.wait().unwrap().values.len(), 1);
/// // The third is refused at admission: budget exhausted.
/// assert!(matches!(
///     service.submit(request(3)),
///     Err(ServiceError::BudgetExhausted { .. })
/// ));
/// service.shutdown();
/// ```
pub struct ReleaseService {
    /// The engine behind one level of indirection so
    /// [`ReleaseService::swap_engine`] can replace it atomically while
    /// requests are in flight. Workers clone the inner `Arc` out under the
    /// read lock *once per request*, then serve entirely from that clone —
    /// a request is always answered by exactly one engine's calibration,
    /// never a torn mix of pre- and post-swap entries.
    engine: Arc<RwLock<Arc<ReleaseEngine>>>,
    observer: Arc<RwLock<Option<Arc<dyn ReleaseObserver>>>>,
    telemetry: Arc<RwLock<Option<Arc<ServiceTelemetry>>>>,
    /// Bumped on every [`ReleaseService::enable_telemetry`]. Workers keep a
    /// private clone of the telemetry handle and re-read the `RwLock` slot
    /// only when this generation changes — the per-job fast path is one
    /// relaxed atomic load instead of a lock acquisition plus two contended
    /// `Arc` reference-count updates.
    telemetry_epoch: Arc<AtomicU64>,
    budget: Arc<BudgetAccountant>,
    queue: Arc<BoundedQueue<Job>>,
    pool: Option<WorkerPool>,
    served: Arc<AtomicU64>,
    /// Provenance of the warm-start snapshot, when the service was built
    /// with [`ReleaseService::warm_start`].
    warm_start: Option<WarmStartProvenance>,
}

/// What [`ReleaseService::warm_start`] remembers about the snapshot it
/// loaded (the age in [`crate::SnapshotInfo`] is derived from the creation
/// time at every stats call).
#[derive(Debug, Clone, Copy)]
struct WarmStartProvenance {
    created_unix_secs: u64,
    entries: usize,
    bytes: u64,
}

impl ReleaseService {
    /// Starts the worker pool and returns the running service.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] for a non-positive per-user budget.
    pub fn start(engine: Arc<ReleaseEngine>, config: ServiceConfig) -> Result<Self, ServiceError> {
        let budget = Arc::new(BudgetAccountant::new(config.per_user_epsilon)?);
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(config.queue_capacity));
        let served = Arc::new(AtomicU64::new(0));
        let engine = Arc::new(RwLock::new(engine));
        let observer: Arc<RwLock<Option<Arc<dyn ReleaseObserver>>>> = Arc::new(RwLock::new(None));
        let telemetry: Arc<RwLock<Option<Arc<ServiceTelemetry>>>> = Arc::new(RwLock::new(None));
        let telemetry_epoch = Arc::new(AtomicU64::new(0));

        let pool = {
            let engine = Arc::clone(&engine);
            let observer = Arc::clone(&observer);
            let telemetry = Arc::clone(&telemetry);
            let telemetry_epoch = Arc::clone(&telemetry_epoch);
            let queue = Arc::clone(&queue);
            let served = Arc::clone(&served);
            WorkerPool::spawn(config.workers, "pufferfish-release", move |_worker| {
                // Worker-local telemetry cache, refreshed only when the
                // service's epoch moves (i.e. after `enable_telemetry`):
                // steady-state jobs never touch the lock or the `Arc`
                // reference count.
                let mut cached_epoch = 0u64;
                let mut cached: Option<Arc<ServiceTelemetry>> = None;
                while let Some(job) = queue.pop() {
                    let epoch = telemetry_epoch.load(Ordering::Acquire);
                    if epoch != cached_epoch {
                        cached = telemetry.read().expect("telemetry lock poisoned").clone();
                        cached_epoch = epoch;
                    }
                    let watch = &cached;
                    // In-process submissions carry no trace of their own;
                    // when a flight recorder is attached, the worker builds
                    // one so the recorder still sees a stage breakdown. With
                    // no recorder the per-request trace would be dropped
                    // unread, so it is never built.
                    let own_trace = match (&watch, &job.trace) {
                        (Some(watch), None) if watch.recorder().is_some() => {
                            Some(RequestTrace::new(job.request.seed))
                        }
                        _ => None,
                    };
                    let trace = job.trace.as_deref().or(own_trace.as_ref());
                    // One clock read serves as both the queue-wait end and
                    // the engine-stage start ("dequeued"): clock reads are
                    // the bulk of the per-request telemetry cost.
                    let dequeued = watch.as_ref().map(|watch| {
                        let now = Instant::now();
                        // The admission stage and counter are recorded here,
                        // from the job's timestamps, rather than on the
                        // submitter thread — the worker's cached handle makes
                        // this the only place that pays a telemetry lookup.
                        Self::record_stage(
                            watch,
                            trace,
                            Stage::Admission,
                            job.admitted_at.duration_since(job.submitted_at),
                        );
                        watch.admitted().inc();
                        Self::record_stage(
                            watch,
                            trace,
                            Stage::QueueWait,
                            now.duration_since(job.admitted_at),
                        );
                        // The atomic mirror, not `len()`: re-locking the
                        // queue here would contend with every submitter.
                        watch.queue_depth().set(queue.approx_len() as u64);
                        now
                    });
                    // One engine per request: the clone taken here outlives
                    // any concurrent swap_engine, so the whole release is
                    // served from a single consistent calibration.
                    let current = Arc::clone(&engine.read().expect("engine lock poisoned"));
                    let response = match (&watch, dequeued) {
                        (Some(watch), Some(dequeued)) => {
                            Self::serve_traced(&current, &job.request, watch, trace, dequeued)
                        }
                        _ => Self::serve(&current, &job.request),
                    };
                    if let Ok(release) = &response {
                        let watcher = observer.read().expect("observer lock poisoned").clone();
                        if let Some(watcher) = watcher {
                            watcher.observe_release(&job.request.database, release);
                        }
                    }
                    // Count before fulfilling: a submitter woken by the
                    // ticket must observe its own request in `served()`.
                    served.fetch_add(1, Ordering::Relaxed);
                    job.slot.fulfil(response);
                    // A worker-built trace ends here; a caller-supplied one
                    // is finished (and offered to a recorder) by its owner.
                    if let (Some(watch), Some(trace)) = (&watch, &own_trace) {
                        if let Some(recorder) = watch.recorder() {
                            recorder.observe(trace);
                        }
                    }
                }
            })
        };

        Ok(ReleaseService {
            engine,
            observer,
            telemetry,
            telemetry_epoch,
            budget,
            queue,
            pool: Some(pool),
            served,
            warm_start: None,
        })
    }

    /// Starts the service *warm*: loads the calibration snapshot at `path`
    /// into `engine` before spawning the workers, so the first requests are
    /// cache hits instead of multi-second cold calibrations.
    ///
    /// The import performs **zero** calibrations — the engine's miss counter
    /// is untouched, which is how the warm-start tests and the
    /// `calibration_store` bench certify that no calibration ran. Snapshot
    /// provenance (age, entry count, file size) is reported through
    /// [`ServiceStats::snapshot`](crate::ServiceStats::snapshot).
    ///
    /// A missing, corrupt, version-mismatched or wrong-class snapshot is a
    /// **typed error**, not a silent cold start: callers that prefer
    /// best-effort warming can match on
    /// `ServiceError::Mechanism(PufferfishError::Snapshot(_))` and fall back
    /// to [`ReleaseService::start`] themselves.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] as for [`ReleaseService::start`];
    /// [`ServiceError::Mechanism`] wrapping
    /// [`pufferfish_core::SnapshotError`] for every snapshot failure.
    pub fn warm_start(
        engine: Arc<ReleaseEngine>,
        config: ServiceConfig,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, ServiceError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| {
            PufferfishError::Snapshot(pufferfish_core::SnapshotError::Io(format!(
                "reading {}: {e}",
                path.display()
            )))
        })?;
        let snapshot = CalibrationSnapshot::from_bytes(&bytes)?;
        let entries = engine.import_snapshot(&snapshot)?;
        let mut service = Self::start(engine, config)?;
        service.warm_start = Some(WarmStartProvenance {
            created_unix_secs: snapshot.created_unix_secs,
            entries,
            bytes: bytes.len() as u64,
        });
        Ok(service)
    }

    /// Exports the engine's current calibration cache to `path`, returning
    /// the bytes written — the producer side of
    /// [`ReleaseService::warm_start`]. Shard locks are held only to clone
    /// entries; encoding and file I/O run lock-free, so a live service can
    /// checkpoint itself without stalling releases.
    ///
    /// # Errors
    /// [`ServiceError::Mechanism`] wrapping
    /// [`pufferfish_core::SnapshotError::Io`] on filesystem failures.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<u64, ServiceError> {
        Ok(self.engine().export_snapshot().write_to_file(path)?)
    }

    /// One worker's handling of one request.
    /// Records one finished stage into the registry histogram and, when the
    /// request carries one, its per-request trace.
    fn record_stage(
        watch: &ServiceTelemetry,
        trace: Option<&RequestTrace>,
        stage: Stage,
        span: Duration,
    ) {
        let nanos = u64::try_from(span.as_nanos()).unwrap_or(u64::MAX);
        watch.stages().record(stage, nanos);
        if let Some(trace) = trace {
            trace.record(stage, nanos);
        }
    }

    fn serve(
        engine: &ReleaseEngine,
        request: &ReleaseRequest,
    ) -> Result<NoisyRelease, ServiceError> {
        let budget = PrivacyBudget::new(request.epsilon)?;
        let mut rng = StdRng::seed_from_u64(request.seed);
        Ok(engine.release(&*request.query, &request.database, budget, &mut rng)?)
    }

    /// [`ReleaseService::serve`] with the engine and mechanism stages timed
    /// separately. Stage boundaries share single clock reads (dequeue →
    /// engine-in-hand → release-in-hand), since clock reads dominate the
    /// per-request telemetry cost: the engine stage is the cache probe
    /// (plus calibration on a miss), the mechanism stage is RNG setup,
    /// query evaluation and noise sampling. Stages are recorded on success;
    /// a failed release records nothing past its failure point. Same noise
    /// as the untraced path — the RNG sees the same draws.
    fn serve_traced(
        engine: &ReleaseEngine,
        request: &ReleaseRequest,
        telemetry: &ServiceTelemetry,
        trace: Option<&RequestTrace>,
        dequeued: Instant,
    ) -> Result<NoisyRelease, ServiceError> {
        let budget = PrivacyBudget::new(request.epsilon)?;
        let mechanism = engine.mechanism(&*request.query, budget)?;
        let engine_done = Instant::now();
        Self::record_stage(
            telemetry,
            trace,
            Stage::Engine,
            engine_done.duration_since(dequeued),
        );
        let mut rng = StdRng::seed_from_u64(request.seed);
        let release = mechanism.release(&*request.query, &request.database, &mut rng)?;
        Self::record_stage(telemetry, trace, Stage::Mechanism, engine_done.elapsed());
        // The split path samples outside `ReleaseEngine::release`, so the
        // per-release telemetry is recorded here.
        engine.note_release(release.scale);
        Ok(release)
    }

    /// Non-blocking submission: admission control (budget, then queue) and
    /// immediate return of a [`Ticket`].
    ///
    /// # Errors
    /// [`ServiceError::BudgetExhausted`] (budget untouched),
    /// [`ServiceError::QueueFull`] / [`ServiceError::ServiceClosed`] (budget
    /// spend rolled back).
    pub fn try_submit(&self, request: ReleaseRequest) -> Result<Ticket, ServiceError> {
        self.try_submit_traced(request, None)
    }

    /// [`ReleaseService::try_submit`] with a caller-owned request trace: the
    /// admission and queue-wait stages are recorded into `trace` alongside
    /// the registry histograms, and the worker's engine/mechanism stages
    /// accumulate into the same trace. The network front-end threads its
    /// per-request trace through here; the caller remains responsible for
    /// offering the finished trace to a flight recorder.
    ///
    /// # Errors
    /// As for [`ReleaseService::try_submit`].
    pub fn try_submit_traced(
        &self,
        request: ReleaseRequest,
        trace: Option<Arc<RequestTrace>>,
    ) -> Result<Ticket, ServiceError> {
        self.admit(request, trace, |queue, job| {
            queue.try_push(job).map_err(|refused| match refused {
                PushError::Full(_) => ServiceError::QueueFull {
                    capacity: queue.capacity(),
                },
                PushError::Closed(_) => ServiceError::ServiceClosed,
            })
        })
    }

    /// Blocking submission: waits for queue space instead of failing with
    /// [`ServiceError::QueueFull`].
    ///
    /// # Errors
    /// [`ServiceError::BudgetExhausted`] and [`ServiceError::ServiceClosed`].
    pub fn submit(&self, request: ReleaseRequest) -> Result<Ticket, ServiceError> {
        self.admit(request, None, |queue, job| {
            queue.push(job).map_err(|_| ServiceError::ServiceClosed)
        })
    }

    /// Shared admission path: spend the budget, enqueue via `enqueue`, and
    /// roll the spend back when the queue refuses (the refused job — and the
    /// ticket slot it carries — is simply dropped; no worker will ever see
    /// it). Every budget event carries its audit tag — query signature,
    /// engine family, request seed — into an attached ε ledger.
    fn admit(
        &self,
        request: ReleaseRequest,
        trace: Option<Arc<RequestTrace>>,
        enqueue: impl FnOnce(&BoundedQueue<Job>, Job) -> Result<(), ServiceError>,
    ) -> Result<Ticket, ServiceError> {
        // Every job is timestamped on arrival and on acceptance whether or
        // not telemetry is attached — the worker (which already holds a
        // cached telemetry handle) turns the two timestamps into the
        // admission and queue-wait stages and counts the admission, so the
        // warm path here never touches the telemetry slot. Time spent
        // *inside* the enqueue call is part of the queue-wait stage.
        let submitted_at = Instant::now();
        let tag = SpendTag {
            query_sig: query_signature(request.query.name()),
            family: self.engine().kind(),
            seq: request.seed,
        };
        if let Err(refused) = self
            .budget
            .try_spend_tagged(&request.user, request.epsilon, tag)
        {
            // Refusals never reach a worker, so this cold path looks the
            // telemetry up itself.
            let telemetry = self
                .telemetry
                .read()
                .expect("telemetry lock poisoned")
                .clone();
            if let Some(watch) = &telemetry {
                Self::record_stage(
                    watch,
                    trace.as_deref(),
                    Stage::Admission,
                    submitted_at.elapsed(),
                );
                watch.refused().inc();
            }
            return Err(refused);
        }
        let user = request.user.clone();
        let epsilon = request.epsilon;
        let slot = Arc::new(ResponseSlot::new());
        let admitted_at = Instant::now();
        let job = Job {
            request,
            slot: Arc::clone(&slot),
            submitted_at,
            admitted_at,
            trace,
        };
        match enqueue(&self.queue, job) {
            Ok(()) => Ok(Ticket { slot }),
            Err(error) => {
                self.budget.refund_tagged(&user, epsilon, tag);
                let telemetry = self
                    .telemetry
                    .read()
                    .expect("telemetry lock poisoned")
                    .clone();
                if let Some(watch) = &telemetry {
                    watch.refused().inc();
                }
                Err(error)
            }
        }
    }

    /// Convenience: submit (blocking) and wait for the response.
    ///
    /// # Errors
    /// Admission and mechanism errors, as for [`ReleaseService::submit`] and
    /// [`Ticket::wait`].
    pub fn release(&self, request: ReleaseRequest) -> Result<NoisyRelease, ServiceError> {
        self.submit(request)?.wait()
    }

    /// The engine currently behind the service (cache stats live here).
    ///
    /// The returned `Arc` keeps that engine alive across a concurrent
    /// [`ReleaseService::swap_engine`] — like the workers, callers see one
    /// consistent engine, not a moving target.
    pub fn engine(&self) -> Arc<ReleaseEngine> {
        Arc::clone(&self.engine.read().expect("engine lock poisoned"))
    }

    /// Atomically replaces the engine serving future requests, returning the
    /// previous one.
    ///
    /// In-flight requests finish on whichever engine they started with (each
    /// worker clones the engine `Arc` once per request), so a swap is never
    /// observable as a torn calibration — only as a clean before/after. This
    /// is the commit point of the monitor crate's canary recalibration: the
    /// new engine is built and calibrated *off-path*, then installed here in
    /// one pointer swap.
    pub fn swap_engine(&self, engine: Arc<ReleaseEngine>) -> Arc<ReleaseEngine> {
        // The incoming engine inherits the service's instrumentation, and an
        // attached ε ledger records the swap: an auditor replaying the ledger
        // can see exactly which releases were served before and after a
        // recalibration.
        if let Some(watch) = self
            .telemetry
            .read()
            .expect("telemetry lock poisoned")
            .as_ref()
        {
            engine.enable_telemetry(watch.registry());
        }
        if let Some(ledger) = self.budget.ledger() {
            ledger.record(LedgerEventKind::Recalibration, "", 0, engine.kind(), 0.0, 0);
        }
        std::mem::replace(
            &mut *self.engine.write().expect("engine lock poisoned"),
            engine,
        )
    }

    /// Attaches live instrumentation: the engine's cache counters register
    /// against the telemetry's registry, the admission path starts counting
    /// and timing, and workers record queue-wait / engine / mechanism stage
    /// latencies (plus flight-recorder traces when the telemetry carries a
    /// recorder). Replaces any previous telemetry; events recorded before
    /// enabling are not back-filled.
    pub fn enable_telemetry(&self, telemetry: Arc<ServiceTelemetry>) {
        self.engine().enable_telemetry(telemetry.registry());
        *self.telemetry.write().expect("telemetry lock poisoned") = Some(telemetry);
        // Publish *after* the slot is written: a worker that observes the
        // new epoch re-reads the slot under the lock and must find the new
        // handle there.
        self.telemetry_epoch.fetch_add(1, Ordering::Release);
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<Arc<ServiceTelemetry>> {
        self.telemetry
            .read()
            .expect("telemetry lock poisoned")
            .clone()
    }

    /// Attaches the observer that future releases are reported to (replacing
    /// any previous one). Observation is on the worker release path; see
    /// [`ReleaseObserver`] for the cost contract.
    pub fn set_observer(&self, observer: Arc<dyn ReleaseObserver>) {
        *self.observer.write().expect("observer lock poisoned") = Some(observer);
    }

    /// Detaches the current observer, returning the service to the unwatched
    /// (zero-overhead) configuration.
    pub fn clear_observer(&self) {
        *self.observer.write().expect("observer lock poisoned") = None;
    }

    /// One observability snapshot of the whole service: engine cache
    /// counters, queue occupancy, fulfilment count and budget spend (see
    /// [`ServiceStats`] for the cross-field consistency contract).
    pub fn stats(&self) -> ServiceStats {
        let engine = self.engine();
        ServiceStats {
            cache: engine.stats(),
            cached_calibrations: engine.len(),
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            queue_refusals: self.queue.refusals(),
            queue_high_water: self.queue.high_water(),
            served: self.served(),
            users: self.budget.users(),
            spent_epsilon: self.budget.total_spent(),
            // The release front-end never probes a scale index.
            indexed_probe_misses: 0,
            snapshot: self.warm_start.map(|warm| crate::SnapshotInfo {
                age_secs: unix_now().saturating_sub(warm.created_unix_secs),
                entries: warm.entries,
                bytes: warm.bytes,
            }),
            monitor: self
                .observer
                .read()
                .expect("observer lock poisoned")
                .as_ref()
                .map(|observer| observer.monitor_stats()),
            latency: self
                .telemetry
                .read()
                .expect("telemetry lock poisoned")
                .as_ref()
                .map(|watch| watch.stage_latencies()),
        }
    }

    /// The per-user budget ledger.
    pub fn budget(&self) -> &BudgetAccountant {
        &self.budget
    }

    /// Requests fulfilled so far (successfully or not).
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Requests currently queued and not yet picked up by a worker.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Graceful shutdown: refuses new submissions, lets the workers drain
    /// every queued request, and joins the pool.
    pub fn shutdown(mut self) {
        self.queue.close();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for ReleaseService {
    /// Same handshake as [`ReleaseService::shutdown`], for services that are
    /// simply dropped.
    fn drop(&mut self) {
        self.queue.close();
        self.pool.take();
    }
}

impl std::fmt::Debug for ReleaseService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleaseService")
            .field("engine", &self.engine())
            .field("pending", &self.pending())
            .field("served", &self.served())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufferfish_core::engine::MqmApproxCalibrator;
    use pufferfish_core::queries::StateFrequencyQuery;
    use pufferfish_core::MqmApproxOptions;
    use pufferfish_markov::IntervalClassBuilder;

    fn test_engine() -> Arc<ReleaseEngine> {
        let class = IntervalClassBuilder::symmetric(0.4)
            .grid_points(2)
            .build()
            .unwrap();
        ReleaseEngine::shared(MqmApproxCalibrator::new(
            class,
            60,
            MqmApproxOptions::default(),
        ))
    }

    fn request(user: &str, epsilon: f64, seed: u64) -> ReleaseRequest {
        ReleaseRequest {
            user: user.to_string(),
            query: Arc::new(StateFrequencyQuery::new(1, 60)),
            database: (0..60).map(|t| t % 2).collect(),
            epsilon,
            seed,
        }
    }

    #[test]
    fn serves_requests_and_tracks_budget() {
        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(2),
                queue_capacity: 16,
                per_user_epsilon: 1.0,
            },
        )
        .unwrap();

        let release = service.release(request("alice", 0.4, 7)).unwrap();
        assert_eq!(release.values.len(), 1);
        assert!((service.budget().spent("alice") - 0.4).abs() < 1e-12);

        // Same seed, same key: the response is bit-for-bit reproducible and
        // served from the calibration cache.
        let again = service.release(request("alice", 0.4, 7)).unwrap();
        assert_eq!(release.values, again.values);
        let stats = service.engine().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(service.served(), 2);
        service.shutdown();
    }

    #[test]
    fn budget_exhaustion_is_refused_at_admission() {
        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(1),
                queue_capacity: 4,
                per_user_epsilon: 1.0,
            },
        )
        .unwrap();
        service.release(request("bob", 0.6, 1)).unwrap();
        let refused = service.submit(request("bob", 0.6, 2));
        assert!(matches!(refused, Err(ServiceError::BudgetExhausted { .. })));
        // The refused request consumed nothing beyond the first release.
        assert!((service.budget().spent("bob") - 0.6).abs() < 1e-12);
        service.shutdown();
    }

    #[test]
    fn queue_full_rolls_the_spend_back() {
        // A service whose single worker is blocked behind slow jobs will
        // refuse try_submit once the queue is at capacity — and the refused
        // request must not consume budget.
        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(1),
                queue_capacity: 1,
                per_user_epsilon: 100.0,
            },
        )
        .unwrap();
        let mut tickets = Vec::new();
        let mut refusals = 0;
        // Submit aggressively; with a capacity-1 queue some must be refused.
        for seed in 0..200 {
            match service.try_submit(request("carol", 0.1, seed)) {
                Ok(ticket) => tickets.push(ticket),
                Err(ServiceError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    refusals += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let admitted = tickets.len();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        assert_eq!(admitted + refusals, 200);
        // Budget reflects only admitted requests.
        assert!((service.budget().spent("carol") - 0.1 * admitted as f64).abs() < 1e-9);
        assert_eq!(service.served(), admitted as u64);
        service.shutdown();
    }

    #[test]
    fn wait_timeout_bounds_the_wait_and_consumes_once() {
        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(1),
                queue_capacity: 8,
                per_user_epsilon: 10.0,
            },
        )
        .unwrap();
        let ticket = service.submit(request("tim", 0.1, 1)).unwrap();
        // Eventually the worker fulfils it; a generous bounded wait gets the
        // same response a blocking wait would.
        let release = loop {
            match ticket.wait_timeout(std::time::Duration::from_millis(200)) {
                Ok(release) => break release,
                Err(ServiceError::WaitTimeout { .. }) => continue,
                Err(other) => panic!("unexpected error: {other}"),
            }
        };
        assert_eq!(release.values.len(), 1);
        // The response was consumed: waiting again fails fast, never hangs.
        assert!(matches!(
            ticket.wait_timeout(std::time::Duration::ZERO),
            Err(ServiceError::ServiceClosed)
        ));

        // A zero-duration wait on a request stuck behind nothing is a poll:
        // it either succeeds or times out immediately, without blocking.
        let ticket = service.submit(request("tim", 0.1, 2)).unwrap();
        let polled = ticket.wait_timeout(std::time::Duration::ZERO);
        assert!(matches!(
            polled,
            Ok(_) | Err(ServiceError::WaitTimeout { .. })
        ));
        service.shutdown();
    }

    #[test]
    fn stats_surface_queue_refusals_and_high_water() {
        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(1),
                queue_capacity: 1,
                per_user_epsilon: 100.0,
            },
        )
        .unwrap();
        let mut tickets = Vec::new();
        let mut refused = 0u64;
        for seed in 0..100 {
            match service.try_submit(request("hw", 0.1, seed)) {
                Ok(ticket) => tickets.push(ticket),
                Err(ServiceError::QueueFull { .. }) => refused += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.queue_refusals, refused);
        assert!(refused > 0, "capacity-1 queue must refuse some submissions");
        assert_eq!(stats.queue_high_water, 1);
        let rendered = stats.to_string();
        assert!(rendered.contains(&format!("refused {refused}")));
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(2),
                queue_capacity: 32,
                per_user_epsilon: 100.0,
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..20)
            .map(|seed| service.submit(request("dave", 0.1, seed)).unwrap())
            .collect();
        service.shutdown();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }

    struct PanickingQuery;

    impl LipschitzQuery for PanickingQuery {
        fn lipschitz_constant(&self) -> f64 {
            1.0 / 60.0
        }
        fn output_dimension(&self) -> usize {
            1
        }
        fn expected_length(&self) -> usize {
            60
        }
        fn evaluate(&self, _database: &[usize]) -> pufferfish_core::Result<Vec<f64>> {
            panic!("query bug")
        }
        fn name(&self) -> &str {
            "panicking"
        }
    }

    #[test]
    fn worker_panic_does_not_hang_the_ticket() {
        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(2),
                queue_capacity: 8,
                per_user_epsilon: 10.0,
            },
        )
        .unwrap();
        let ticket = service
            .submit(ReleaseRequest {
                user: "p".to_string(),
                query: Arc::new(PanickingQuery),
                database: vec![0; 60],
                epsilon: 0.5,
                seed: 1,
            })
            .unwrap();
        // The worker panics mid-release; the job's drop guard must wake the
        // waiter instead of leaving it blocked forever.
        assert!(matches!(ticket.wait(), Err(ServiceError::ServiceClosed)));
        // The surviving worker keeps serving.
        let release = service.release(request("p", 0.5, 2)).unwrap();
        assert_eq!(release.values.len(), 1);
        // Drop (not shutdown): swallows the dead worker's panic.
        drop(service);
    }

    #[test]
    fn warm_start_restores_the_cache_without_calibrating() {
        let dir = std::env::temp_dir().join(format!(
            "pufferfish-warm-start-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.pfsnap");

        // Cold service: pay the calibration, answer one request, checkpoint.
        let cold = ReleaseService::start(test_engine(), ServiceConfig::default()).unwrap();
        let reference = cold.release(request("alice", 0.4, 11)).unwrap();
        assert_eq!(cold.engine().stats().misses, 1);
        assert!(cold.stats().snapshot.is_none());
        let bytes = cold.save_snapshot(&path).unwrap();
        assert!(bytes > 0);
        cold.shutdown();

        // Warm service: zero calibrations, bitwise-identical response.
        let warm =
            ReleaseService::warm_start(test_engine(), ServiceConfig::default(), &path).unwrap();
        let replay = warm.release(request("alice", 0.4, 11)).unwrap();
        assert_eq!(replay.values, reference.values);
        assert_eq!(replay.scale.to_bits(), reference.scale.to_bits());
        let stats = warm.stats();
        assert_eq!(stats.cache.misses, 0, "warm start must not calibrate");
        let info = stats.snapshot.expect("warm start must report provenance");
        assert_eq!(info.entries, 1);
        assert_eq!(info.bytes, bytes);
        warm.shutdown();

        // A missing file is a typed error, never a silent cold start.
        let missing = ReleaseService::warm_start(
            test_engine(),
            ServiceConfig::default(),
            dir.join("nope.pfsnap"),
        );
        assert!(matches!(
            missing,
            Err(ServiceError::Mechanism(PufferfishError::Snapshot(
                pufferfish_core::SnapshotError::Io(_)
            )))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_traces_stages_and_ledger_audits_bitwise() {
        use crate::audit_ledger;
        use pufferfish_telemetry::{EpsilonLedger, FlightRecorder, Registry};

        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(2),
                queue_capacity: 16,
                per_user_epsilon: 1.0,
            },
        )
        .unwrap();
        let registry = Arc::new(Registry::new());
        // Threshold 0: every request is "slow", so the recorder sees all.
        let recorder = Arc::new(FlightRecorder::new(8, 0));
        let telemetry = Arc::new(ServiceTelemetry::with_recorder(
            Arc::clone(&registry),
            Arc::clone(&recorder),
        ));
        service.enable_telemetry(Arc::clone(&telemetry));
        let ledger = Arc::new(EpsilonLedger::new());
        service.budget().attach_ledger(Arc::clone(&ledger));

        // Two served releases, one budget refusal.
        service.release(request("alice", 0.4, 1)).unwrap();
        service.release(request("alice", 0.4, 2)).unwrap();
        assert!(matches!(
            service.submit(request("alice", 0.4, 3)),
            Err(ServiceError::BudgetExhausted { .. })
        ));

        // Deterministic noise is unchanged by instrumentation: a fresh
        // uninstrumented service answers the same request identically.
        let plain = ReleaseService::start(test_engine(), ServiceConfig::default()).unwrap();
        let reference = plain.release(request("ref", 0.4, 1)).unwrap();
        let traced = service.release(request("bob", 0.4, 1)).unwrap();
        assert_eq!(traced.values, reference.values);
        plain.shutdown();

        // Stage histograms: the worker recorded queue-wait, engine and
        // mechanism for each of the three served releases.
        let text = registry.render_text();
        assert!(text.contains("stage_queue_wait_ns histogram count=3"));
        assert!(text.contains("stage_engine_ns histogram count=3"));
        assert!(text.contains("stage_mechanism_ns histogram count=3"));
        assert!(text.contains("service_admitted_total counter 3"));
        assert!(text.contains("service_refused_total counter 1"));
        // The engine registered its counters against the same registry.
        assert!(text.contains("engine_mqm_approx_cache_hits_total counter 2"));
        assert!(text.contains("engine_mqm_approx_releases_total counter 3"));

        // The flight recorder captured every in-process trace, with the
        // worker stages filled in.
        assert_eq!(recorder.observed(), 3);
        let reports = recorder.reports();
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert!(report.total_ns > 0);
        }

        // Stats surface the stage percentiles and render them.
        let stats = service.stats();
        let latency = stats.latency.expect("telemetry attached");
        assert!(latency.engine_p999_ns >= latency.engine_p50_ns);
        assert!(stats.to_string().contains("queue-wait p50/p99/p999"));

        // The ledger audits bitwise against the live accountant: 3 charges,
        // 1 refusal.
        let report = audit_ledger(&ledger.to_bytes(), service.budget()).unwrap();
        assert_eq!(report.events, 4);
        assert_eq!(
            report.total.to_bits(),
            service.budget().total_spent().to_bits()
        );
        // The charges carry their audit tags.
        let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
        assert_eq!(events[0].family, "mqm-approx");
        assert_eq!(
            events[0].query_sig,
            query_signature(request("alice", 0.4, 1).query.name())
        );
        assert_eq!(events[0].seq, 1);

        // An engine swap is recorded as a recalibration event and the new
        // engine inherits the instrumentation.
        service.swap_engine(test_engine());
        let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
        let last = events.last().unwrap();
        assert_eq!(last.kind, LedgerEventKind::Recalibration);
        assert_eq!(last.family, "mqm-approx");
        service.release(request("carol", 0.4, 9)).unwrap();
        let text = registry.render_text();
        // 2 misses now: one per engine (the swap emptied the cache).
        assert!(text.contains("engine_mqm_approx_cache_misses_total counter 2"));
        // The audit still passes across the swap.
        audit_ledger(&ledger.to_bytes(), service.budget()).unwrap();
        service.shutdown();
    }

    #[test]
    fn mechanism_errors_reach_the_ticket() {
        let service = ReleaseService::start(
            test_engine(),
            ServiceConfig {
                workers: Parallelism::Threads(1),
                queue_capacity: 4,
                per_user_epsilon: 10.0,
            },
        )
        .unwrap();
        // Wrong database length: admission passes, the release itself fails.
        let mut bad = request("erin", 0.5, 3);
        bad.database = vec![0; 10];
        let result = service.release(bad);
        assert!(matches!(result, Err(ServiceError::Mechanism(_))));
        // The conservative budget rule: the failed release stays spent.
        assert!((service.budget().spent("erin") - 0.5).abs() < 1e-12);
        service.shutdown();
    }
}
