//! # pufferfish-service
//!
//! A concurrent serving layer for the Pufferfish privacy mechanisms of Song,
//! Wang & Chaudhuri (SIGMOD 2017). The paper's mechanisms are expensive to
//! *calibrate* and nearly free to *release*; this crate turns that asymmetry
//! into a request/response service that can saturate every core:
//!
//! * [`ReleaseService`] — the front-end: a bounded admission queue feeding a
//!   [`pufferfish_parallel::WorkerPool`], every worker driving one shared,
//!   sharded [`pufferfish_core::ReleaseEngine`] (calibrations are cached and
//!   stampede-coalesced there). Submitters get a [`Ticket`] and wait for
//!   their [`pufferfish_core::NoisyRelease`]; a full queue is explicit
//!   back-pressure, not unbounded growth.
//! * [`BudgetAccountant`] — per-user ε-budget accounting under the paper's
//!   Theorem 4.4 composition (via
//!   [`pufferfish_core::CompositionAccountant`]): spends are admitted
//!   atomically, so concurrent requests can never jointly overdraw a user's
//!   budget, and queue refusals roll their spend back.
//! * [`ServiceStats`] — one observability snapshot (cache counters, queue
//!   occupancy, budget spend) shared by the service, the `pufferfish-query`
//!   front-end and the examples.
//! * [`ContinualRelease`] — a streaming pipeline answering sliding-window
//!   histogram queries over event streams, with the mechanism family (Markov
//!   Quilt vs the GK16 baseline) selectable per stream and the stream budget
//!   enforced release by release.
//! * [`ProgressiveRelease`] — anytime answers over one window: a validated
//!   [`RefinementSchedule`] of coarse-to-fine estimates, each charged
//!   through the accountant and certified with an error bound, with the
//!   final refinement bitwise-identical to the equivalent one-shot release.
//! * [`queue::BoundedQueue`] — the underlying closable MPMC queue, exported
//!   for callers building their own pipelines.
//! * [`ServiceTelemetry`] + [`audit_ledger`] — the serving layer's slice of
//!   the workspace telemetry: per-stage latency histograms and admission
//!   counters ([`ReleaseService::enable_telemetry`]), audit-tagged budget
//!   events into an append-only ε ledger
//!   ([`BudgetAccountant::attach_ledger`]), and an offline audit proving
//!   the ledger replays to the live accountant's spend **bitwise**.
//!
//! Everything is deterministic given request seeds: identical request
//! streams produce identical noisy answers regardless of worker count or
//! scheduling, which is what makes the concurrency testable.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use pufferfish_core::engine::{MqmApproxCalibrator, ReleaseEngine};
//! use pufferfish_core::queries::StateFrequencyQuery;
//! use pufferfish_core::{MqmApproxOptions, Parallelism};
//! use pufferfish_markov::IntervalClassBuilder;
//! use pufferfish_service::{ReleaseRequest, ReleaseService, ServiceConfig};
//!
//! // One sharded engine, shared by every worker.
//! let class = IntervalClassBuilder::symmetric(0.4).grid_points(2).build().unwrap();
//! let engine = ReleaseEngine::shared(MqmApproxCalibrator::new(
//!     class,
//!     60,
//!     MqmApproxOptions::default(),
//! ));
//!
//! let service = ReleaseService::start(
//!     engine,
//!     ServiceConfig {
//!         workers: Parallelism::Threads(2),
//!         queue_capacity: 32,
//!         per_user_epsilon: 1.0,
//!     },
//! )
//! .unwrap();
//!
//! let release = service
//!     .release(ReleaseRequest {
//!         user: "alice".to_string(),
//!         query: Arc::new(StateFrequencyQuery::new(1, 60)),
//!         database: vec![0; 60],
//!         epsilon: 0.5,
//!         seed: 1,
//!     })
//!     .unwrap();
//! assert_eq!(release.values.len(), 1);
//! assert!((service.budget().spent("alice") - 0.5).abs() < 1e-12);
//! service.shutdown();
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod audit;
mod budget;
mod error;
mod observer;
mod progressive;
pub mod queue;
mod service;
mod stats;
mod stream;
mod telemetry;

pub use audit::{audit_ledger, AuditError, AuditReport};
pub use budget::{BudgetAccountant, SpendTag};
pub use error::ServiceError;
pub use observer::ReleaseObserver;
pub use progressive::{ProgressiveRelease, ProgressiveUpdate, RefinementSchedule, RefinementStep};
pub use service::{ReleaseRequest, ReleaseService, ServiceConfig, Ticket};
pub use stats::{MonitorStats, ServiceStats, SnapshotInfo, StageLatencies};
pub use stream::{ContinualRelease, StreamBackend, StreamConfig, WindowRelease};
pub use telemetry::ServiceTelemetry;

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServiceError>;
