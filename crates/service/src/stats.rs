//! The unified observability snapshot for the serving stack.

use pufferfish_core::CacheStats;

/// Provenance of a warm start: what the calibration snapshot the service
/// loaded at construction looked like, and how stale it is now.
///
/// Reported by [`ServiceStats::snapshot`] when the service was built with
/// [`ReleaseService::warm_start`](crate::ReleaseService::warm_start);
/// `None` for cold-started services. `age_secs` is recomputed at every
/// [`stats`](crate::ReleaseService::stats) call, so dashboards can alert on
/// snapshots growing stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotInfo {
    /// Seconds between the snapshot's export and this stats snapshot.
    pub age_secs: u64,
    /// Calibrations the snapshot restored into the engine.
    pub entries: usize,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
}

/// Counters of an attached runtime monitor (see the `pufferfish-monitor`
/// crate): the live sign/MAD noise tests, event-drift windows and canary
/// recalibrations. `None` in [`ServiceStats::monitor`] when no observer is
/// attached — the monitor-off service pays nothing for the field.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MonitorStats {
    /// Sequential sign/MAD noise tests completed so far.
    pub noise_tests: u64,
    /// Noise tests that rejected (miscalibration verdicts).
    pub noise_failures: u64,
    /// Event windows the drift detector has scored.
    pub drift_windows: u64,
    /// The last window's drift score (max bound violation over transition
    /// entries, in units of the detection slack; > 1 means the window
    /// violated the calibrated class bounds).
    pub drift_score: f64,
    /// Whether the drift detector is currently tripped.
    pub drifted: bool,
    /// Canary recalibrations performed (engine swaps).
    pub recalibrations: u64,
}

/// Stage-latency percentiles from an attached telemetry pipeline: how long
/// admitted requests sat in the queue and how long the engine stage (cache
/// probe plus calibration on a miss) took, at p50/p99/p999. `None` in
/// [`ServiceStats::latency`] until
/// [`ReleaseService::enable_telemetry`](crate::ReleaseService::enable_telemetry)
/// — the uninstrumented service records no stage timings at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageLatencies {
    /// Queue-wait 50th percentile, nanoseconds.
    pub queue_wait_p50_ns: u64,
    /// Queue-wait 99th percentile, nanoseconds.
    pub queue_wait_p99_ns: u64,
    /// Queue-wait 99.9th percentile, nanoseconds.
    pub queue_wait_p999_ns: u64,
    /// Engine-stage 50th percentile, nanoseconds.
    pub engine_p50_ns: u64,
    /// Engine-stage 99th percentile, nanoseconds.
    pub engine_p99_ns: u64,
    /// Engine-stage 99.9th percentile, nanoseconds.
    pub engine_p999_ns: u64,
}

/// One self-contained snapshot of a serving front-end's observable state:
/// calibration-cache counters, queue occupancy and budget spend, gathered
/// into a single struct so dashboards, examples and the query layer can log
/// one value instead of poking four substructures.
///
/// Produced by [`ReleaseService::stats`](crate::ReleaseService::stats) (all
/// fields populated) and by `pufferfish-query`'s `QueryService::stats`
/// (which has no admission queue, so the queue fields are zero there).
///
/// Like [`CacheStats`], a snapshot taken while requests are in flight is not
/// a cross-field transaction; quiescent values are exact.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceStats {
    /// Calibration-cache counters (hits, misses, coalesced stampedes),
    /// summed over every engine the front-end drives.
    pub cache: CacheStats,
    /// Distinct calibrations currently held in the cache(s).
    pub cached_calibrations: usize,
    /// Requests admitted but not yet picked up by a worker.
    pub queue_depth: usize,
    /// Capacity of the admission queue (0 when the front-end has none).
    pub queue_capacity: usize,
    /// Submissions the admission queue refused at capacity — every one a
    /// back-pressure event a caller saw (`QueueFull` in process, a `BUSY`
    /// frame over the wire). The signal to watch when tuning
    /// `queue_capacity` and worker count.
    pub queue_refusals: u64,
    /// The deepest the admission queue has ever been. A high-water mark at
    /// `queue_capacity` means traffic has touched the refusal threshold.
    pub queue_high_water: usize,
    /// Requests fulfilled so far (successfully or not).
    pub served: u64,
    /// Users (or streams) with at least one recorded spend.
    pub users: usize,
    /// Composed ε spend summed over all users (each user's Theorem 4.4
    /// guarantee, then summed — an aggregate load signal, not itself a
    /// privacy guarantee).
    pub spent_epsilon: f64,
    /// ε-grid scale-index probes that found an index for the query shape but
    /// got no estimate back (ε outside the grid, or a different query
    /// signature than the index was built for). Every miss silently fell
    /// back to an exact engine probe — cheap schedule search degrading into
    /// full calibrations — so a growing count is the signal to widen the
    /// grid. Zero for front-ends that never probe an index.
    pub indexed_probe_misses: u64,
    /// The warm-start snapshot this front-end loaded, if any (see
    /// [`SnapshotInfo`]).
    pub snapshot: Option<SnapshotInfo>,
    /// Counters of the attached runtime monitor, if any (see
    /// [`MonitorStats`]).
    pub monitor: Option<MonitorStats>,
    /// Queue-wait and engine-stage latency percentiles from the attached
    /// telemetry pipeline, if any (see [`StageLatencies`]).
    pub latency: Option<StageLatencies>,
}

impl ServiceStats {
    /// Total cache lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.cache.hits + self.cache.misses
    }

    /// Fraction of lookups served from the cache (1.0 for an idle service,
    /// where there is nothing to amortise yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            1.0
        } else {
            self.cache.hits as f64 / lookups as f64
        }
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cache {}/{} hit (coalesced {}), {} cached, queue {}/{} \
             (high-water {}, refused {}), served {}, {} users, spent ε = {:.4}",
            self.cache.hits,
            self.lookups(),
            self.cache.coalesced,
            self.cached_calibrations,
            self.queue_depth,
            self.queue_capacity,
            self.queue_high_water,
            self.queue_refusals,
            self.served,
            self.users,
            self.spent_epsilon,
        )?;
        if self.indexed_probe_misses > 0 {
            write!(
                f,
                ", {} indexed-probe misses (exact fallback)",
                self.indexed_probe_misses
            )?;
        }
        if let Some(snapshot) = &self.snapshot {
            write!(
                f,
                ", warm-started from a {}-entry snapshot ({} bytes, {}s old)",
                snapshot.entries, snapshot.bytes, snapshot.age_secs
            )?;
        }
        if let Some(monitor) = &self.monitor {
            write!(
                f,
                ", monitor: {} noise tests ({} failed), {} drift windows \
                 (last score {:.2}{}), {} recalibrations",
                monitor.noise_tests,
                monitor.noise_failures,
                monitor.drift_windows,
                monitor.drift_score,
                if monitor.drifted { ", DRIFTED" } else { "" },
                monitor.recalibrations,
            )?;
        }
        if let Some(latency) = &self.latency {
            write!(
                f,
                ", queue-wait p50/p99/p999 {}/{}/{} ns, engine p50/p99/p999 {}/{}/{} ns",
                latency.queue_wait_p50_ns,
                latency.queue_wait_p99_ns,
                latency.queue_wait_p999_ns,
                latency.engine_p50_ns,
                latency.engine_p99_ns,
                latency.engine_p999_ns,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut stats = ServiceStats::default();
        assert_eq!(stats.lookups(), 0);
        assert_eq!(stats.hit_rate(), 1.0);
        stats.cache = CacheStats {
            hits: 3,
            misses: 1,
            coalesced: 2,
        };
        stats.queue_depth = 4;
        stats.queue_capacity = 16;
        stats.queue_refusals = 9;
        stats.queue_high_water = 12;
        stats.served = 4;
        stats.users = 2;
        stats.spent_epsilon = 1.25;
        assert_eq!(stats.lookups(), 4);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        let rendered = stats.to_string();
        assert!(rendered.contains("3/4 hit"));
        assert!(rendered.contains("queue 4/16"));
        assert!(rendered.contains("high-water 12"));
        assert!(rendered.contains("refused 9"));
        assert!(rendered.contains("2 users"));
        assert!(!rendered.contains("warm-started"));
        // The indexed-probe counter renders only once a miss happened, so
        // index-free front-ends keep their historical one-line form.
        assert!(!rendered.contains("indexed-probe"));
        stats.indexed_probe_misses = 5;
        assert!(stats
            .to_string()
            .contains("5 indexed-probe misses (exact fallback)"));

        stats.snapshot = Some(SnapshotInfo {
            age_secs: 120,
            entries: 7,
            bytes: 1024,
        });
        let rendered = stats.to_string();
        assert!(rendered.contains("7-entry snapshot"));
        assert!(rendered.contains("1024 bytes"));
        assert!(rendered.contains("120s old"));
        assert!(!rendered.contains("monitor:"));

        stats.monitor = Some(MonitorStats {
            noise_tests: 12,
            noise_failures: 1,
            drift_windows: 30,
            drift_score: 1.75,
            drifted: true,
            recalibrations: 2,
        });
        let rendered = stats.to_string();
        assert!(rendered.contains("12 noise tests (1 failed)"));
        assert!(rendered.contains("30 drift windows"));
        assert!(rendered.contains("last score 1.75, DRIFTED"));
        assert!(rendered.contains("2 recalibrations"));
        assert!(!rendered.contains("queue-wait p50"));

        stats.latency = Some(StageLatencies {
            queue_wait_p50_ns: 800,
            queue_wait_p99_ns: 4_000,
            queue_wait_p999_ns: 9_000,
            engine_p50_ns: 1_200,
            engine_p99_ns: 45_000,
            engine_p999_ns: 90_000,
        });
        let rendered = stats.to_string();
        assert!(rendered.contains("queue-wait p50/p99/p999 800/4000/9000 ns"));
        assert!(rendered.contains("engine p50/p99/p999 1200/45000/90000 ns"));
    }
}
