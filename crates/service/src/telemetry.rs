//! Live instrumentation for the serving front-end.
//!
//! A [`ServiceTelemetry`] bundles everything the service records per
//! request: the shared `stage_*_ns` histogram family (the worker's
//! queue-wait / engine / mechanism stages; the net layer registers the same
//! prefix and fills decode / admission / encode), admission counters, the
//! queue-depth gauge, and an optional flight recorder for slow requests.
//! All handles are resolved once at construction — attaching telemetry to a
//! running service adds one relaxed atomic op per recorded event to the hot
//! path, nothing more (see the registry's cost contract).

use std::sync::Arc;

use pufferfish_telemetry::{Counter, FlightRecorder, Gauge, Registry, Stage, StageHistograms};

use crate::stats::StageLatencies;

/// The serving layer's resolved metric handles, shared by the admission
/// path (refusals) and every worker (everything else — each admitted job
/// is counted and staged by the worker that serves it, from timestamps the
/// job carries).
///
/// Metric names: `service_admitted_total`, `service_refused_total` (budget
/// *and* queue refusals — every submission a caller saw fail),
/// `queue_depth`, and the six `stage_*_ns` histograms.
#[derive(Debug)]
pub struct ServiceTelemetry {
    registry: Arc<Registry>,
    stages: StageHistograms,
    admitted: Counter,
    refused: Counter,
    queue_depth: Gauge,
    recorder: Option<Arc<FlightRecorder>>,
}

impl ServiceTelemetry {
    /// Resolves every handle against `registry`, without a flight recorder.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self::build(registry, None)
    }

    /// [`ServiceTelemetry::new`] plus a flight recorder: finished in-process
    /// request traces are offered to it (the network front-end offers its
    /// own traces after the encode stage instead).
    pub fn with_recorder(registry: Arc<Registry>, recorder: Arc<FlightRecorder>) -> Self {
        Self::build(registry, Some(recorder))
    }

    fn build(registry: Arc<Registry>, recorder: Option<Arc<FlightRecorder>>) -> Self {
        let stages = StageHistograms::register(&registry, "stage");
        let admitted = registry.counter("service_admitted_total");
        let refused = registry.counter("service_refused_total");
        let queue_depth = registry.gauge("queue_depth");
        ServiceTelemetry {
            registry,
            stages,
            admitted,
            refused,
            queue_depth,
            recorder,
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared `stage_*_ns` histogram family.
    pub fn stages(&self) -> &StageHistograms {
        &self.stages
    }

    /// Submissions that passed admission (budget and queue).
    pub fn admitted(&self) -> &Counter {
        &self.admitted
    }

    /// Submissions refused at admission — budget exhaustion or a full
    /// queue, both of which a caller observed as an error.
    pub fn refused(&self) -> &Counter {
        &self.refused
    }

    /// Last observed admission-queue depth.
    pub fn queue_depth(&self) -> &Gauge {
        &self.queue_depth
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The queue-wait and engine stage percentiles, reduced for
    /// [`crate::ServiceStats`].
    pub fn stage_latencies(&self) -> StageLatencies {
        let queue_wait = self.stages.handle(Stage::QueueWait).snapshot();
        let engine = self.stages.handle(Stage::Engine).snapshot();
        StageLatencies {
            queue_wait_p50_ns: queue_wait.percentile(50.0),
            queue_wait_p99_ns: queue_wait.percentile(99.0),
            queue_wait_p999_ns: queue_wait.percentile(99.9),
            engine_p50_ns: engine.percentile(50.0),
            engine_p99_ns: engine.percentile(99.0),
            engine_p999_ns: engine.percentile(99.9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_resolve_once_and_share_the_registry() {
        let registry = Arc::new(Registry::new());
        let telemetry = ServiceTelemetry::new(Arc::clone(&registry));
        telemetry.admitted().inc();
        telemetry.refused().inc();
        telemetry.queue_depth().set(5);
        telemetry.stages().record(Stage::QueueWait, 1_000);
        telemetry.stages().record(Stage::Engine, 2_000);
        // Six stage histograms + two counters + one gauge.
        assert_eq!(registry.len(), Stage::COUNT + 3);
        let text = registry.render_text();
        assert!(text.contains("service_admitted_total counter 1"));
        assert!(text.contains("service_refused_total counter 1"));
        assert!(text.contains("queue_depth gauge 5"));
        assert!(text.contains("stage_queue_wait_ns histogram count=1"));
        assert!(telemetry.recorder().is_none());

        let latencies = telemetry.stage_latencies();
        assert!(latencies.queue_wait_p50_ns >= 1_000);
        assert!(latencies.engine_p99_ns >= 2_000);
        assert_eq!(latencies.queue_wait_p50_ns, latencies.queue_wait_p999_ns);
    }

    #[test]
    fn recorder_attaches() {
        let registry = Arc::new(Registry::new());
        let recorder = Arc::new(FlightRecorder::new(4, 0));
        let telemetry = ServiceTelemetry::with_recorder(registry, Arc::clone(&recorder));
        assert!(Arc::ptr_eq(
            telemetry.recorder().expect("recorder attached"),
            &recorder
        ));
    }
}
