//! Offline verification that an ε-spend ledger agrees with the live
//! accountant — **bitwise**.
//!
//! The [`pufferfish_telemetry::EpsilonLedger`] records every budget event in
//! the order the [`BudgetAccountant`](crate::BudgetAccountant) applied it
//! (the accountant logs while holding its user-table lock). Replaying those
//! events through a fresh [`CompositionAccountant`] must therefore land on
//! exactly the same f64 bits as the live ledger — same operations, same
//! order, same floating-point summation. [`audit_ledger`] performs that
//! comparison per user and in aggregate; any disagreement is a typed
//! [`AuditError`], because an audit that "almost matches" is an audit that
//! failed.

use std::collections::BTreeMap;

use pufferfish_core::CompositionAccountant;
use pufferfish_telemetry::{replay_spend, EpsilonLedger, LedgerError};

use crate::BudgetAccountant;

/// Why an audit failed.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The ledger bytes themselves did not decode.
    Ledger(LedgerError),
    /// The replay knows a user the live accountant does not (the converse —
    /// a live user the ledger never charged — is legal: refused-only users
    /// exist in the accountant at spend 0).
    UnknownUser {
        /// The user present in the replay but not the accountant.
        user: String,
    },
    /// One user's replayed composed ε differs from the live value.
    UserMismatch {
        /// The disagreeing user.
        user: String,
        /// The live accountant's composed ε (bits).
        live: u64,
        /// The replay's composed ε (bits).
        replayed: u64,
    },
    /// The summed totals differ.
    TotalMismatch {
        /// `BudgetAccountant::total_spent()` (bits).
        live: u64,
        /// The replay's sum over users in the same order (bits).
        replayed: u64,
    },
}

impl From<LedgerError> for AuditError {
    fn from(error: LedgerError) -> Self {
        AuditError::Ledger(error)
    }
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Ledger(error) => write!(f, "ledger audit failed to decode: {error}"),
            AuditError::UnknownUser { user } => {
                write!(f, "ledger names user {user:?} the accountant never saw")
            }
            AuditError::UserMismatch {
                user,
                live,
                replayed,
            } => write!(
                f,
                "user {user:?} spend mismatch: live {} ({live:#018x}) vs replayed {} \
                 ({replayed:#018x})",
                f64::from_bits(*live),
                f64::from_bits(*replayed)
            ),
            AuditError::TotalMismatch { live, replayed } => write!(
                f,
                "total spend mismatch: live {} ({live:#018x}) vs replayed {} ({replayed:#018x})",
                f64::from_bits(*live),
                f64::from_bits(*replayed)
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// A successful audit: the replayed view that matched the live accountant.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Ledger events replayed.
    pub events: u64,
    /// Per-user composed ε reconstructed from the ledger alone (users the
    /// accountant knows but the ledger never charged appear at 0.0).
    pub per_user: BTreeMap<String, f64>,
    /// The reconstructed total — bitwise equal to
    /// [`BudgetAccountant::total_spent`] at audit time.
    pub total: f64,
}

/// Replays `bytes` and checks the reconstruction against `budget`, bitwise.
///
/// Per user, the replayed spend vector is folded through a fresh
/// [`CompositionAccountant`] in event order and the composed guarantee is
/// compared by [`f64::to_bits`] against the live value; the totals are then
/// summed in the accountant's own (sorted) user order and compared the same
/// way. Users the accountant knows with no surviving charges (refused-only,
/// or fully refunded before their first charge… which cannot happen — fully
/// refunded) must replay to exactly `0.0`.
///
/// # Errors
/// [`AuditError`] naming the first disagreement; [`AuditError::Ledger`]
/// when the bytes themselves are truncated, corrupted, or malformed.
pub fn audit_ledger(bytes: &[u8], budget: &BudgetAccountant) -> Result<AuditReport, AuditError> {
    let events = EpsilonLedger::replay(bytes)?;
    let replayed = replay_spend(&events)?;
    let live = budget.per_user_spent();

    for user in replayed.keys() {
        if !live.contains_key(user) {
            return Err(AuditError::UnknownUser { user: user.clone() });
        }
    }

    let mut per_user = BTreeMap::new();
    for (user, &live_spend) in &live {
        let composed = match replayed.get(user) {
            Some(epsilons) => {
                let mut accountant = CompositionAccountant::new();
                for &epsilon in epsilons {
                    accountant.record(epsilon);
                }
                accountant.guaranteed_epsilon()
            }
            // The accountant knows the user (a refusal created the entry)
            // but no charge survives in the ledger: the live spend must be
            // exactly zero.
            None => 0.0,
        };
        if composed.to_bits() != live_spend.to_bits() {
            return Err(AuditError::UserMismatch {
                user: user.clone(),
                live: live_spend.to_bits(),
                replayed: composed.to_bits(),
            });
        }
        per_user.insert(user.clone(), composed);
    }

    // Totals: same users, same sorted order, same summation — the bits must
    // agree with the accountant's own aggregate.
    let total: f64 = per_user.values().sum();
    let live_total = budget.total_spent();
    if total.to_bits() != live_total.to_bits() {
        return Err(AuditError::TotalMismatch {
            live: live_total.to_bits(),
            replayed: total.to_bits(),
        });
    }

    Ok(AuditReport {
        events: events.len() as u64,
        per_user,
        total,
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use pufferfish_telemetry::{query_signature, LedgerEventKind};

    use super::*;
    use crate::budget::SpendTag;

    fn tagged(seq: u64) -> SpendTag<'static> {
        SpendTag {
            query_sig: query_signature("audit-test"),
            family: "mqm-approx",
            seq,
        }
    }

    #[test]
    fn audit_passes_on_a_faithful_ledger() {
        let budget = BudgetAccountant::new(2.0).unwrap();
        let ledger = Arc::new(pufferfish_telemetry::EpsilonLedger::new());
        budget.attach_ledger(Arc::clone(&ledger));

        budget.try_spend_tagged("t#a", 0.3, tagged(1)).unwrap();
        budget.try_spend_tagged("t#a", 0.3, tagged(2)).unwrap();
        budget.try_spend_tagged("t#b", 0.7, tagged(3)).unwrap();
        // Heterogeneous for b: composed K·max = 1.4, not the 0.8 sum.
        budget.try_spend_tagged("t#b", 0.1, tagged(4)).unwrap();
        // A refusal (creates no spend: 3 × 0.9 = 2.7 > 2.0) and a refund.
        assert!(budget.try_spend_tagged("t#a", 0.9, tagged(5)).is_err());
        assert!(budget.refund_tagged("t#a", 0.3, tagged(2)));
        // A refused-only user: exists live at 0.0, absent from the replay.
        assert!(budget.try_spend_tagged("t#c", 2.5, tagged(6)).is_err());

        let report = audit_ledger(&ledger.to_bytes(), &budget).unwrap();
        assert_eq!(report.events, 7);
        assert_eq!(report.per_user.len(), 3);
        assert_eq!(report.per_user["t#c"], 0.0);
        assert_eq!(report.total.to_bits(), budget.total_spent().to_bits());
    }

    #[test]
    fn a_spend_the_ledger_missed_fails_the_audit() {
        let budget = BudgetAccountant::new(1.0).unwrap();
        let ledger = Arc::new(pufferfish_telemetry::EpsilonLedger::new());
        budget.try_spend("t#a", 0.5).unwrap(); // before attach: unlogged
        budget.attach_ledger(Arc::clone(&ledger));
        budget.try_spend("t#a", 0.25).unwrap();
        assert!(matches!(
            audit_ledger(&ledger.to_bytes(), &budget),
            Err(AuditError::UserMismatch { .. })
        ));
    }

    #[test]
    fn a_charge_for_an_unknown_user_fails_the_audit() {
        let budget = BudgetAccountant::new(1.0).unwrap();
        let ledger = Arc::new(pufferfish_telemetry::EpsilonLedger::new());
        ledger.record(LedgerEventKind::Charge, "ghost", 0, "mqm", 0.5, 1);
        assert!(matches!(
            audit_ledger(&ledger.to_bytes(), &budget),
            Err(AuditError::UnknownUser { .. })
        ));
    }

    #[test]
    fn corrupt_bytes_fail_typed_not_partially() {
        let budget = BudgetAccountant::new(1.0).unwrap();
        let ledger = Arc::new(pufferfish_telemetry::EpsilonLedger::new());
        budget.attach_ledger(Arc::clone(&ledger));
        budget.try_spend("t#a", 0.5).unwrap();
        let mut bytes = ledger.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            audit_ledger(&bytes, &budget),
            Err(AuditError::Ledger(LedgerError::ChecksumMismatch { .. }))
        ));
        bytes.truncate(last.saturating_sub(4));
        assert!(matches!(
            audit_ledger(&bytes, &budget),
            Err(AuditError::Ledger(LedgerError::Truncated { .. }))
        ));
    }
}
