//! Progressive anytime releases: one window of events answered as a
//! coarse-to-fine stream of privatised estimates.
//!
//! A [`RefinementSchedule`] lists the prefixes of a window at which an
//! estimate is published and the per-step ε each estimate pays (the
//! `pufferfish-query` planner searches for ε-optimal schedules; anything
//! satisfying the validation here is runnable). A [`ProgressiveRelease`]
//! drives the schedule over a live event stream: the caller gets a coarse
//! answer as soon as the first prefix fills — long before the window does —
//! and strictly better answers at every later refinement point, each
//! carrying a *certified* error bound from the step's actual Laplace scale
//! ([`pufferfish_core::laplace_error_bound`]).
//!
//! Budget is charged through a [`BudgetAccountant`] **up front**: every
//! scheduled step is admitted (and ledgered) as its own tagged spend before
//! the first event arrives, so a schedule either fits the user's remaining
//! budget whole or is refused whole. Stopping early — [`abort`] or simply
//! dropping the driver — refunds exactly the steps that never released.
//!
//! The headline guarantee is *bitwise equivalence*: the final refinement is
//! produced by the very same [`ContinualRelease`] construction, seeded with
//! the very same raw seed, that a one-shot release of the full window would
//! use — see [`ProgressiveRelease::one_shot`]. Intermediate steps draw
//! their noise from seeds derived per step (a splitmix64 mix of the raw
//! seed and the step index), so they can never perturb the final answer's
//! noise stream. Paying for early answers therefore costs nothing in final
//! accuracy: at equal seed and equal final ε, the progressive pipeline's
//! last answer *is* the one-shot answer, bit for bit.
//!
//! [`abort`]: ProgressiveRelease::abort

use rand::rngs::StdRng;
use rand::SeedableRng;

use pufferfish_core::{laplace_error_bound, CompositionAccountant, NoisyRelease};
use pufferfish_markov::MarkovChainClass;
use pufferfish_telemetry::query_signature;

use crate::budget::{BudgetAccountant, SpendTag};
use crate::stream::{ContinualRelease, StreamBackend, StreamConfig, WindowRelease};
use crate::ServiceError;

/// One scheduled refinement point: release an estimate over the first
/// `prefix` events at privacy parameter `epsilon`, predicted (by the
/// planner) to land within `error_bound` of the true answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementStep {
    /// How many events the estimate covers (the window prefix length).
    pub prefix: usize,
    /// The ε this step's release spends.
    pub epsilon: f64,
    /// The planner's predicted sup-norm error bound for this step, at the
    /// schedule's confidence. Informational: the bound *certified* at
    /// release time is recomputed from the step's actual noise scale.
    pub error_bound: f64,
}

/// A validated anytime-release plan: which window prefixes to answer at,
/// at what per-step ε, at what confidence.
///
/// Validation pins down the invariants every consumer relies on:
///
/// * at least one step, prefixes strictly increasing — the last prefix *is*
///   the window, and the final step answers over the whole of it;
/// * every ε positive, finite and **bitwise identical** across steps.
///   Homogeneity makes Theorem 4.4 composition collapse to the plain sum,
///   so [`total_epsilon`](RefinementSchedule::total_epsilon) (a sum) equals
///   the composed guarantee a [`CompositionAccountant`] reports — exactly,
///   not up to tolerance;
/// * error bounds positive, finite and non-increasing — refinements must
///   not get *worse*;
/// * confidence strictly inside (0, 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementSchedule {
    steps: Vec<RefinementStep>,
    confidence: f64,
}

impl RefinementSchedule {
    /// Validates and builds a schedule.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] naming the violated invariant (see
    /// the type-level list).
    pub fn new(steps: Vec<RefinementStep>, confidence: f64) -> Result<Self, ServiceError> {
        if steps.is_empty() {
            return Err(ServiceError::InvalidConfig(
                "a refinement schedule needs at least one step".to_string(),
            ));
        }
        if !confidence.is_finite() || confidence <= 0.0 || confidence >= 1.0 {
            return Err(ServiceError::InvalidConfig(format!(
                "schedule confidence must lie in (0, 1), got {confidence}"
            )));
        }
        let epsilon_bits = steps[0].epsilon.to_bits();
        let mut previous: Option<&RefinementStep> = None;
        for (i, step) in steps.iter().enumerate() {
            if step.prefix == 0 {
                return Err(ServiceError::InvalidConfig(format!(
                    "schedule step {i} has an empty prefix"
                )));
            }
            if !step.epsilon.is_finite() || step.epsilon <= 0.0 {
                return Err(ServiceError::InvalidConfig(format!(
                    "schedule step {i} has non-positive epsilon {}",
                    step.epsilon
                )));
            }
            if step.epsilon.to_bits() != epsilon_bits {
                return Err(ServiceError::InvalidConfig(format!(
                    "schedule steps must share one epsilon (Theorem 4.4 \
                     composition then equals the plain sum): step {i} has {} \
                     but step 0 has {}",
                    step.epsilon, steps[0].epsilon
                )));
            }
            if !step.error_bound.is_finite() || step.error_bound <= 0.0 {
                return Err(ServiceError::InvalidConfig(format!(
                    "schedule step {i} has non-positive error bound {}",
                    step.error_bound
                )));
            }
            if let Some(prev) = previous {
                if step.prefix <= prev.prefix {
                    return Err(ServiceError::InvalidConfig(format!(
                        "schedule prefixes must strictly increase: step {i} \
                         has {} after {}",
                        step.prefix, prev.prefix
                    )));
                }
                if step.error_bound > prev.error_bound {
                    return Err(ServiceError::InvalidConfig(format!(
                        "refinements must not get worse: step {i} bound {} \
                         exceeds the previous bound {}",
                        step.error_bound, prev.error_bound
                    )));
                }
            }
            previous = Some(step);
        }
        Ok(RefinementSchedule { steps, confidence })
    }

    /// The refinement steps, in release order.
    pub fn steps(&self) -> &[RefinementStep] {
        &self.steps
    }

    /// The window length — the last (and largest) prefix, which the final
    /// step answers over in full.
    pub fn window(&self) -> usize {
        self.steps.last().expect("schedules are never empty").prefix
    }

    /// Total ε the schedule spends across all steps. Because validation
    /// enforces bitwise-equal per-step ε, this sum *is* the Theorem 4.4
    /// composed guarantee, exactly.
    pub fn total_epsilon(&self) -> f64 {
        self.steps.iter().map(|s| s.epsilon).sum()
    }

    /// The final step's ε — what an equivalent one-shot release of the full
    /// window would spend.
    pub fn final_epsilon(&self) -> f64 {
        self.steps
            .last()
            .expect("schedules are never empty")
            .epsilon
    }

    /// The confidence level the error bounds are certified at.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }
}

/// One published refinement: the noisy estimate over a window prefix, with
/// the error bound certified from the release's actual noise scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveUpdate {
    /// 1-based ordinal of this refinement within the schedule.
    pub step: usize,
    /// Total steps in the schedule (`step == total_steps` on the final,
    /// full-window answer).
    pub total_steps: usize,
    /// Events this estimate covers.
    pub prefix: usize,
    /// The ε this step spent.
    pub epsilon: f64,
    /// The noisy release over the prefix (values, true values, scale).
    pub release: NoisyRelease,
    /// Certified sup-norm error bound: with probability at least
    /// [`confidence`](ProgressiveUpdate::confidence), every coordinate of
    /// the estimate lies within this distance of the true answer. Computed
    /// from the *actual* calibrated scale via
    /// [`pufferfish_core::laplace_error_bound`], not the planner's
    /// prediction.
    pub certified_error: f64,
    /// The confidence the certified bound holds at.
    pub confidence: f64,
    /// The driver's composed ε spend after this step (monotone across the
    /// update stream; equals the schedule's total on the final update).
    pub spent_epsilon: f64,
}

impl ProgressiveUpdate {
    /// `true` on the full-window answer — the one that is bitwise-identical
    /// to the equivalent one-shot release.
    pub fn is_final(&self) -> bool {
        self.step == self.total_steps
    }
}

/// Mixes a step index into the stream seed (splitmix64 finalizer), so
/// intermediate refinements draw noise from streams disjoint from the raw
/// seed the final step (and the one-shot comparator) consumes.
fn step_seed(seed: u64, step: usize) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(step as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives a [`RefinementSchedule`] over a live event stream, emitting a
/// [`ProgressiveUpdate`] as each scheduled prefix fills.
///
/// All scheduled steps are charged to `user` through the accountant at
/// [`begin`](ProgressiveRelease::begin) — one tagged ledger event per step
/// — and unconsumed steps are refunded on [`abort`](ProgressiveRelease::abort)
/// or drop. Each step calibrates lazily when its prefix fills (per-prefix
/// calibrations are what make the first coarse answer fast), releases once,
/// and certifies its error bound from the calibrated scale.
///
/// # Example
///
/// ```
/// use pufferfish_markov::IntervalClassBuilder;
/// use pufferfish_service::{
///     BudgetAccountant, ProgressiveRelease, RefinementSchedule, RefinementStep, StreamBackend,
/// };
///
/// let class = IntervalClassBuilder::symmetric(0.45).grid_points(2).build().unwrap();
/// let budget = BudgetAccountant::new(2.0).unwrap();
/// let schedule = RefinementSchedule::new(
///     vec![
///         RefinementStep { prefix: 10, epsilon: 0.5, error_bound: 4.0 },
///         RefinementStep { prefix: 20, epsilon: 0.5, error_bound: 2.0 },
///     ],
///     0.95,
/// )
/// .unwrap();
///
/// let mut driver = ProgressiveRelease::begin(
///     "demo", &class, schedule, StreamBackend::MqmApprox, &budget, "alice", 7,
/// )
/// .unwrap();
/// // Both steps are charged before the first event arrives.
/// assert!((budget.spent("alice") - 1.0).abs() < 1e-12);
///
/// let mut answers = 0;
/// for t in 0..20 {
///     if let Some(update) = driver.push(t % 2).unwrap() {
///         answers += 1;
///         assert!(update.certified_error > 0.0);
///     }
/// }
/// assert_eq!(answers, 2);
/// assert!(driver.is_complete());
/// ```
pub struct ProgressiveRelease<'a> {
    name: String,
    class: &'a MarkovChainClass,
    budget: &'a BudgetAccountant,
    user: String,
    schedule: RefinementSchedule,
    backend: StreamBackend,
    seed: u64,
    query_sig: u64,
    buffer: Vec<usize>,
    next_step: usize,
    accountant: CompositionAccountant,
    settled: bool,
}

impl<'a> ProgressiveRelease<'a> {
    /// Admits the whole schedule against `user`'s budget and returns the
    /// ready driver.
    ///
    /// Every step is charged as its own tagged spend (`seq` = step index),
    /// so an attached ε ledger records one `Charge` per scheduled
    /// refinement. If any step is refused, the steps already charged are
    /// refunded before the error returns — admission is all-or-nothing.
    ///
    /// # Errors
    /// [`ServiceError::BudgetExhausted`] when the schedule does not fit
    /// `user`'s remaining budget (nothing stays charged).
    pub fn begin(
        name: &str,
        class: &'a MarkovChainClass,
        schedule: RefinementSchedule,
        backend: StreamBackend,
        budget: &'a BudgetAccountant,
        user: &str,
        seed: u64,
    ) -> Result<Self, ServiceError> {
        let query_sig = query_signature(name);
        let tag_for = |seq: usize| SpendTag {
            query_sig,
            family: backend.name(),
            seq: seq as u64,
        };
        for (i, step) in schedule.steps().iter().enumerate() {
            if let Err(refusal) = budget.try_spend_tagged(user, step.epsilon, tag_for(i)) {
                // All-or-nothing admission: none of the already-charged
                // steps released anything, so roll every one of them back.
                for (j, charged) in schedule.steps().iter().enumerate().take(i) {
                    budget.refund_tagged(user, charged.epsilon, tag_for(j));
                }
                return Err(refusal);
            }
        }
        Ok(ProgressiveRelease {
            name: name.to_string(),
            class,
            budget,
            user: user.to_string(),
            schedule,
            backend,
            seed,
            query_sig,
            buffer: Vec::new(),
            next_step: 0,
            accountant: CompositionAccountant::new(),
            settled: false,
        })
    }

    /// Ingests one event; returns the refinement when a scheduled prefix
    /// fills. Events past the final prefix are ingested and ignored (the
    /// schedule is complete).
    ///
    /// # Errors
    /// [`ServiceError::Mechanism`] for an out-of-range event (nothing is
    /// ingested) or when the step's backend fails to calibrate or release —
    /// the step then stays unconsumed, so aborting refunds it.
    pub fn push(&mut self, event: usize) -> Result<Option<ProgressiveUpdate>, ServiceError> {
        if event >= self.class.num_states() {
            return Err(ServiceError::Mechanism(
                pufferfish_core::PufferfishError::InvalidDatabase(format!(
                    "progressive event {event} out of range for {} states",
                    self.class.num_states()
                )),
            ));
        }
        self.buffer.push(event);
        if self.next_step >= self.schedule.steps().len()
            || self.buffer.len() != self.schedule.steps()[self.next_step].prefix
        {
            return Ok(None);
        }
        self.refine().map(Some)
    }

    /// Executes the due refinement step over the buffered prefix.
    fn refine(&mut self) -> Result<ProgressiveUpdate, ServiceError> {
        let index = self.next_step;
        let step = self.schedule.steps()[index];
        let total_steps = self.schedule.steps().len();
        let is_final = index + 1 == total_steps;
        // The final step consumes the *raw* seed through the very same
        // stream construction `one_shot` uses — that identity is the
        // bitwise-equivalence guarantee. Intermediate steps use derived
        // seeds so they never touch the final answer's noise stream.
        let seed = if is_final {
            self.seed
        } else {
            step_seed(self.seed, index)
        };
        let window = Self::release_prefix(
            &self.name,
            self.class,
            step,
            self.backend,
            seed,
            &self.buffer,
        )?;
        self.next_step += 1;
        self.accountant.record(step.epsilon);
        if is_final {
            // Complete: nothing left to refund, stop the drop guard.
            self.settled = true;
        }
        let certified_error = laplace_error_bound(
            window.release.scale,
            window.release.values.len(),
            self.schedule.confidence(),
        )?;
        Ok(ProgressiveUpdate {
            step: index + 1,
            total_steps,
            prefix: step.prefix,
            epsilon: step.epsilon,
            release: window.release,
            certified_error,
            confidence: self.schedule.confidence(),
            spent_epsilon: self.accountant.guaranteed_epsilon(),
        })
    }

    /// One refinement step as a tumbling-window stream release: a fresh
    /// [`ContinualRelease`] with `window = slide = prefix` and a stream
    /// budget admitting exactly one release, fed the buffered prefix. This
    /// is the *single* construction both the progressive driver and the
    /// one-shot comparator run, which is what makes their final answers
    /// structurally — and therefore bitwise — equal.
    fn release_prefix(
        name: &str,
        class: &MarkovChainClass,
        step: RefinementStep,
        backend: StreamBackend,
        seed: u64,
        events: &[usize],
    ) -> Result<WindowRelease, ServiceError> {
        let mut stream = ContinualRelease::new(
            name,
            class,
            StreamConfig {
                window: step.prefix,
                slide: step.prefix,
                epsilon_per_release: step.epsilon,
                stream_epsilon: step.epsilon,
                backend,
            },
        )?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut released = None;
        for &event in events {
            released = stream.push(event, &mut rng)?;
        }
        Ok(released.expect("a full tumbling window releases exactly once"))
    }

    /// The one-shot comparator: releases the full window in a single step,
    /// through the identical stream construction and raw `seed` the
    /// driver's final refinement uses. At equal seed and equal final ε the
    /// result is bitwise-identical to the driver's last update.
    ///
    /// This is the verification half of the equivalence claim — it charges
    /// **no** budget; callers releasing for real must account separately.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] when `database` is not exactly the
    /// schedule's window; calibration/release errors as for the driver.
    pub fn one_shot(
        name: &str,
        class: &MarkovChainClass,
        schedule: &RefinementSchedule,
        backend: StreamBackend,
        seed: u64,
        database: &[usize],
    ) -> Result<WindowRelease, ServiceError> {
        let step = *schedule.steps().last().expect("schedules are never empty");
        if database.len() != step.prefix {
            return Err(ServiceError::InvalidConfig(format!(
                "one-shot database has {} events but the schedule's window is {}",
                database.len(),
                step.prefix
            )));
        }
        Self::release_prefix(name, class, step, backend, seed, database)
    }

    /// Stops the release early, refunding every step that has not released
    /// yet; returns how many steps were refunded. Idempotent — dropping
    /// the driver calls this too, so an explicit abort never double-refunds.
    pub fn abort(&mut self) -> usize {
        if self.settled {
            return 0;
        }
        self.settled = true;
        let mut refunded = 0;
        for (i, step) in self
            .schedule
            .steps()
            .iter()
            .enumerate()
            .skip(self.next_step)
        {
            let tag = SpendTag {
                query_sig: self.query_sig,
                family: self.backend.name(),
                seq: i as u64,
            };
            if self.budget.refund_tagged(&self.user, step.epsilon, tag) {
                refunded += 1;
            }
        }
        refunded
    }

    /// The schedule this driver runs.
    pub fn schedule(&self) -> &RefinementSchedule {
        &self.schedule
    }

    /// The mechanism family serving every step.
    pub fn backend(&self) -> StreamBackend {
        self.backend
    }

    /// The budget owner the steps were charged to.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Events ingested so far.
    pub fn events(&self) -> usize {
        self.buffer.len()
    }

    /// Refinement steps released so far.
    pub fn steps_completed(&self) -> usize {
        self.next_step
    }

    /// `true` once the final, full-window refinement has been released.
    pub fn is_complete(&self) -> bool {
        self.next_step == self.schedule.steps().len()
    }

    /// Composed ε actually *consumed* by released steps so far (Theorem
    /// 4.4 guarantee; the charged-but-unreleased remainder is what an abort
    /// refunds).
    pub fn spent_epsilon(&self) -> f64 {
        self.accountant.guaranteed_epsilon()
    }
}

impl Drop for ProgressiveRelease<'_> {
    /// Refunds unconsumed steps — walking away from a driver mid-stream
    /// must not leak charged budget.
    fn drop(&mut self) {
        self.abort();
    }
}

impl std::fmt::Debug for ProgressiveRelease<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressiveRelease")
            .field("name", &self.name)
            .field("user", &self.user)
            .field("backend", &self.backend.name())
            .field("events", &self.buffer.len())
            .field("steps_completed", &self.next_step)
            .field("total_steps", &self.schedule.steps().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufferfish_markov::IntervalClassBuilder;

    fn weak_class() -> MarkovChainClass {
        IntervalClassBuilder::symmetric(0.45)
            .grid_points(2)
            .build()
            .unwrap()
    }

    fn step(prefix: usize, epsilon: f64, error_bound: f64) -> RefinementStep {
        RefinementStep {
            prefix,
            epsilon,
            error_bound,
        }
    }

    fn two_step_schedule() -> RefinementSchedule {
        RefinementSchedule::new(vec![step(8, 0.3, 4.0), step(16, 0.3, 2.0)], 0.95).unwrap()
    }

    #[test]
    fn schedule_validation_and_accessors() {
        let schedule = two_step_schedule();
        assert_eq!(schedule.steps().len(), 2);
        assert_eq!(schedule.window(), 16);
        assert_eq!(schedule.final_epsilon(), 0.3);
        assert!((schedule.total_epsilon() - 0.6).abs() < 1e-15);
        assert_eq!(schedule.confidence(), 0.95);

        // The homogeneous sum is exactly the composed Theorem 4.4 guarantee.
        let mut accountant = CompositionAccountant::new();
        for s in schedule.steps() {
            accountant.record(s.epsilon);
        }
        assert_eq!(accountant.guaranteed_epsilon(), schedule.total_epsilon());

        let invalid = [
            RefinementSchedule::new(vec![], 0.95),
            RefinementSchedule::new(vec![step(8, 0.3, 1.0)], 0.0),
            RefinementSchedule::new(vec![step(8, 0.3, 1.0)], 1.0),
            RefinementSchedule::new(vec![step(8, 0.3, 1.0)], f64::NAN),
            RefinementSchedule::new(vec![step(0, 0.3, 1.0)], 0.95),
            RefinementSchedule::new(vec![step(8, 0.0, 1.0)], 0.95),
            RefinementSchedule::new(vec![step(8, f64::INFINITY, 1.0)], 0.95),
            RefinementSchedule::new(vec![step(8, 0.3, 0.0)], 0.95),
            // Heterogeneous ε breaks the sum-equals-composition identity.
            RefinementSchedule::new(vec![step(8, 0.3, 2.0), step(16, 0.4, 1.0)], 0.95),
            // Prefixes must strictly increase.
            RefinementSchedule::new(vec![step(8, 0.3, 2.0), step(8, 0.3, 1.0)], 0.95),
            RefinementSchedule::new(vec![step(16, 0.3, 2.0), step(8, 0.3, 1.0)], 0.95),
            // Refinements must not get worse.
            RefinementSchedule::new(vec![step(8, 0.3, 1.0), step(16, 0.3, 2.0)], 0.95),
        ];
        for result in invalid {
            assert!(matches!(result, Err(ServiceError::InvalidConfig(_))));
        }
    }

    #[test]
    fn charges_upfront_streams_refinements_and_matches_one_shot_bitwise() {
        let class = weak_class();
        let budget = BudgetAccountant::new(10.0).unwrap();
        let schedule = two_step_schedule();
        let events: Vec<usize> = (0..16).map(|t| (t / 3) % 2).collect();

        let mut driver = ProgressiveRelease::begin(
            "prog",
            &class,
            schedule.clone(),
            StreamBackend::MqmApprox,
            &budget,
            "alice",
            42,
        )
        .unwrap();
        // Both steps charged before any event arrived, as two ledgerable
        // spends.
        assert!((budget.spent("alice") - 0.6).abs() < 1e-12);
        assert_eq!(budget.releases("alice"), 2);
        assert_eq!(driver.spent_epsilon(), 0.0);

        let mut updates = Vec::new();
        for &event in &events {
            if let Some(update) = driver.push(event).unwrap() {
                updates.push(update);
            }
        }
        assert_eq!(updates.len(), 2);
        assert!(driver.is_complete());
        assert_eq!(driver.events(), 16);

        // Coarse first: the prefix answer lands at event 8, the refinement
        // at 16, spend monotone and equal to the schedule sum at the end.
        assert_eq!(updates[0].step, 1);
        assert_eq!(updates[0].prefix, 8);
        assert!(!updates[0].is_final());
        assert_eq!(updates[1].step, 2);
        assert_eq!(updates[1].prefix, 16);
        assert!(updates[1].is_final());
        assert!(updates[0].spent_epsilon < updates[1].spent_epsilon);
        assert_eq!(updates[1].spent_epsilon, schedule.total_epsilon());
        assert_eq!(driver.spent_epsilon(), schedule.total_epsilon());

        // Each update certifies its bound from its actual scale, and the
        // bounds refine (smaller prefix → larger scale → looser bound).
        for update in &updates {
            let expected =
                laplace_error_bound(update.release.scale, update.release.values.len(), 0.95)
                    .unwrap();
            assert_eq!(update.certified_error, expected);
            assert_eq!(update.confidence, 0.95);
        }
        assert!(updates[1].certified_error < updates[0].certified_error);

        // The headline: the final refinement is bitwise the one-shot
        // release at the same seed and final ε.
        let one_shot = ProgressiveRelease::one_shot(
            "prog",
            &class,
            &schedule,
            StreamBackend::MqmApprox,
            42,
            &events,
        )
        .unwrap();
        assert_eq!(updates[1].release, one_shot.release);

        // ...and the intermediate estimate used a different noise stream.
        assert_ne!(updates[0].release.values, one_shot.release.values);

        // Completing the schedule settles the driver: dropping it refunds
        // nothing.
        drop(driver);
        assert!((budget.spent("alice") - 0.6).abs() < 1e-12);

        // Events past the final prefix are ingested but never released.
        let mut full = ProgressiveRelease::begin(
            "prog2",
            &class,
            schedule,
            StreamBackend::MqmApprox,
            &budget,
            "alice",
            42,
        )
        .unwrap();
        for &event in &events {
            full.push(event).unwrap();
        }
        assert!(full.push(0).unwrap().is_none());
        assert_eq!(full.events(), 17);
    }

    #[test]
    fn abort_refunds_exactly_the_unconsumed_steps() {
        let class = weak_class();
        let budget = BudgetAccountant::new(10.0).unwrap();
        let schedule = RefinementSchedule::new(
            vec![step(6, 0.2, 4.0), step(12, 0.2, 2.0), step(24, 0.2, 1.0)],
            0.9,
        )
        .unwrap();

        let mut driver = ProgressiveRelease::begin(
            "abort",
            &class,
            schedule,
            StreamBackend::MqmApprox,
            &budget,
            "bob",
            7,
        )
        .unwrap();
        assert!((budget.spent("bob") - 0.6).abs() < 1e-12);

        // Consume only the first step...
        for t in 0..6 {
            driver.push(t % 2).unwrap();
        }
        assert_eq!(driver.steps_completed(), 1);

        // ...so aborting refunds the two unreleased ones, and only those.
        assert_eq!(driver.abort(), 2);
        assert!((budget.spent("bob") - 0.2).abs() < 1e-12);
        // Idempotent, including through drop.
        assert_eq!(driver.abort(), 0);
        drop(driver);
        assert!((budget.spent("bob") - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dropping_an_unfinished_driver_refunds_through_the_drop_guard() {
        let class = weak_class();
        let budget = BudgetAccountant::new(10.0).unwrap();
        {
            let _driver = ProgressiveRelease::begin(
                "leak",
                &class,
                two_step_schedule(),
                StreamBackend::MqmApprox,
                &budget,
                "carol",
                1,
            )
            .unwrap();
            assert!((budget.spent("carol") - 0.6).abs() < 1e-12);
        }
        assert_eq!(budget.spent("carol"), 0.0);
    }

    #[test]
    fn admission_is_all_or_nothing() {
        let class = weak_class();
        // Admits one 0.3-step but not two.
        let budget = BudgetAccountant::new(0.4).unwrap();
        let refused = ProgressiveRelease::begin(
            "refused",
            &class,
            two_step_schedule(),
            StreamBackend::MqmApprox,
            &budget,
            "dave",
            1,
        );
        assert!(matches!(refused, Err(ServiceError::BudgetExhausted { .. })));
        // The first step's charge was rolled back with the refusal.
        assert_eq!(budget.spent("dave"), 0.0);
        assert_eq!(budget.releases("dave"), 0);
    }

    #[test]
    fn out_of_range_events_are_rejected_without_ingestion() {
        let class = weak_class();
        let budget = BudgetAccountant::new(10.0).unwrap();
        let mut driver = ProgressiveRelease::begin(
            "range",
            &class,
            two_step_schedule(),
            StreamBackend::MqmApprox,
            &budget,
            "erin",
            1,
        )
        .unwrap();
        assert!(matches!(driver.push(5), Err(ServiceError::Mechanism(_))));
        assert_eq!(driver.events(), 0);
        assert!(driver.push(1).unwrap().is_none());
        assert_eq!(driver.events(), 1);
    }

    #[test]
    fn gk16_backend_drives_refinements_too() {
        let class = weak_class();
        let budget = BudgetAccountant::new(10.0).unwrap();
        let schedule = two_step_schedule();
        let events: Vec<usize> = (0..16).map(|t| t % 2).collect();
        let mut driver = ProgressiveRelease::begin(
            "gk",
            &class,
            schedule.clone(),
            StreamBackend::Gk16,
            &budget,
            "frank",
            3,
        )
        .unwrap();
        let mut last = None;
        for &event in &events {
            if let Some(update) = driver.push(event).unwrap() {
                last = Some(update);
            }
        }
        let last = last.unwrap();
        assert!(last.is_final());
        let one_shot =
            ProgressiveRelease::one_shot("gk", &class, &schedule, StreamBackend::Gk16, 3, &events)
                .unwrap();
        assert_eq!(last.release, one_shot.release);

        // The comparator itself validates its database length.
        assert!(matches!(
            ProgressiveRelease::one_shot(
                "gk",
                &class,
                &schedule,
                StreamBackend::Gk16,
                3,
                &events[..8],
            ),
            Err(ServiceError::InvalidConfig(_))
        ));
    }
}
