//! Continual release over event streams: sliding-window queries with
//! per-stream budget accounting.
//!
//! The GK16 baseline descends from the *continual release* line of work, and
//! the paper's cheap-after-calibration property makes the Pufferfish
//! mechanisms a natural fit for the same workload: calibrate once for the
//! window geometry, then privatise every window almost for free. A
//! [`ContinualRelease`] ingests one event at a time and, every `slide`
//! events once the window is full, releases the relative-frequency histogram
//! of the last `window` events through the stream's backend — the Markov
//! Quilt mechanism ([`StreamBackend::MqmApprox`]) or the GK16 influence
//! baseline ([`StreamBackend::Gk16`]), selectable per stream so the two can
//! run side by side over the same events.
//!
//! Every release spends `epsilon_per_release` from the stream's total budget
//! under Theorem 4.4 composition; once the next release no longer fits, the
//! stream keeps ingesting but reports the typed
//! [`ServiceError::StreamBudgetExhausted`] — carrying the stream name and
//! the window boundary the refused release was due at — at each due release
//! point, never panicking and never silently skipping a due window.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::RngCore;

use pufferfish_baselines::Gk16;
use pufferfish_core::queries::RelativeFrequencyHistogram;
use pufferfish_core::{
    CompositionAccountant, Mechanism, MqmApprox, MqmApproxOptions, NoisyRelease, PrivacyBudget,
    PufferfishError,
};
use pufferfish_markov::MarkovChainClass;

use crate::ServiceError;

/// Which mechanism family privatises a stream's windows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StreamBackend {
    /// The approximate Markov Quilt mechanism (Algorithm 4) — applicable to
    /// any mixing chain class, the paper's recommendation for long streams.
    #[default]
    MqmApprox,
    /// The GK16 influence-matrix baseline — only calibrates when local
    /// correlations are weak (spectral norm < 1), mirroring the "N/A"
    /// columns of the paper's tables.
    Gk16,
}

impl StreamBackend {
    /// Short backend name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StreamBackend::MqmApprox => "mqm-approx",
            StreamBackend::Gk16 => "gk16",
        }
    }
}

/// Geometry and budget of one continual-release stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Sliding-window length `W` (events per released query).
    pub window: usize,
    /// Release cadence: a release every `slide` events once the window is
    /// full (`slide = window` gives tumbling windows).
    pub slide: usize,
    /// Privacy parameter of each individual window release.
    pub epsilon_per_release: f64,
    /// Total ε budget of the stream across all releases (Theorem 4.4
    /// composition).
    pub stream_epsilon: f64,
    /// Mechanism family for this stream.
    pub backend: StreamBackend,
}

impl Default for StreamConfig {
    /// A 100-event window sliding by 10, ε = 0.1 per release, total 1.0,
    /// MQMApprox backend.
    fn default() -> Self {
        StreamConfig {
            window: 100,
            slide: 10,
            epsilon_per_release: 0.1,
            stream_epsilon: 1.0,
            backend: StreamBackend::MqmApprox,
        }
    }
}

/// One privatised sliding-window answer.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRelease {
    /// Number of events ingested when this window closed (1-based).
    pub window_end: usize,
    /// The noisy histogram over the window.
    pub release: NoisyRelease,
    /// Composed privacy loss of the stream after this release.
    pub spent_epsilon: f64,
}

/// A continual-release pipeline over one event stream.
///
/// # Example
///
/// ```
/// use pufferfish_markov::IntervalClassBuilder;
/// use pufferfish_service::{ContinualRelease, StreamBackend, StreamConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let class = IntervalClassBuilder::symmetric(0.4).grid_points(2).build().unwrap();
/// let mut stream = ContinualRelease::new(
///     "sensor-17",
///     &class,
///     StreamConfig {
///         window: 20,
///         slide: 10,
///         epsilon_per_release: 0.5,
///         stream_epsilon: 1.0,
///         backend: StreamBackend::MqmApprox,
///     },
/// )
/// .unwrap();
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let mut releases = 0;
/// for t in 0..40 {
///     // Window fills at event 20; releases fire at events 20 and 30, after
///     // which the stream budget (2 × 0.5) is exhausted — event 40's due
///     // release is refused but ingestion continues.
///     match stream.push(t % 2, &mut rng) {
///         Ok(Some(window)) => {
///             releases += 1;
///             assert_eq!(window.release.values.len(), 2);
///         }
///         Ok(None) => {}
///         Err(e) => assert!(stream.is_exhausted(), "unexpected error: {e}"),
///     }
/// }
/// assert_eq!(releases, 2);
/// assert_eq!(stream.spent_epsilon(), 1.0);
/// ```
pub struct ContinualRelease {
    name: String,
    mechanism: Arc<dyn Mechanism>,
    query: RelativeFrequencyHistogram,
    accountant: CompositionAccountant,
    window: VecDeque<usize>,
    config: StreamConfig,
    num_states: usize,
    events: usize,
    next_release_at: usize,
    releases: usize,
}

impl ContinualRelease {
    /// Calibrates the stream's backend for its window geometry and returns
    /// the ready pipeline. Calibration happens exactly once here; every
    /// subsequent window release is a query evaluation plus Laplace noise.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] for a degenerate geometry or budget;
    /// [`ServiceError::Mechanism`] when the backend cannot calibrate for the
    /// class (e.g. GK16 over strongly correlated chains).
    pub fn new(
        name: &str,
        class: &MarkovChainClass,
        config: StreamConfig,
    ) -> Result<Self, ServiceError> {
        if config.window == 0 || config.slide == 0 {
            return Err(ServiceError::InvalidConfig(
                "window and slide must be positive".to_string(),
            ));
        }
        if !config.stream_epsilon.is_finite() || config.stream_epsilon <= 0.0 {
            return Err(ServiceError::InvalidConfig(format!(
                "stream epsilon must be positive and finite, got {}",
                config.stream_epsilon
            )));
        }
        let per_release = PrivacyBudget::new(config.epsilon_per_release).map_err(|_| {
            ServiceError::InvalidConfig(format!(
                "per-release epsilon must be positive and finite, got {}",
                config.epsilon_per_release
            ))
        })?;
        let mechanism: Arc<dyn Mechanism> = match config.backend {
            StreamBackend::MqmApprox => Arc::new(MqmApprox::calibrate(
                class,
                config.window,
                per_release,
                MqmApproxOptions::default(),
            )?),
            StreamBackend::Gk16 => Arc::new(Gk16::calibrate(class, config.window, per_release)?),
        };
        let num_states = class.num_states();
        let query = RelativeFrequencyHistogram::new(num_states, config.window)?;
        Ok(ContinualRelease {
            name: name.to_string(),
            mechanism,
            query,
            accountant: CompositionAccountant::new(),
            window: VecDeque::with_capacity(config.window),
            config,
            num_states,
            events: 0,
            next_release_at: config.window,
            releases: 0,
        })
    }

    /// Ingests one event; returns the window release when one is due.
    ///
    /// Releases are due when the window is full and `slide` events have
    /// passed since the previous release point. An event is *always*
    /// ingested, even when the due release is refused for budget reasons —
    /// the stream stays consistent and the refusal repeats at each due point.
    ///
    /// # Errors
    /// [`ServiceError::StreamBudgetExhausted`] when a due release no longer
    /// fits the stream budget (the event is still ingested);
    /// [`ServiceError::Mechanism`] for out-of-range events or release
    /// failures.
    pub fn push(
        &mut self,
        event: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Option<WindowRelease>, ServiceError> {
        if event >= self.num_states {
            return Err(ServiceError::Mechanism(PufferfishError::InvalidDatabase(
                format!(
                    "stream event {event} out of range for {} states",
                    self.num_states
                ),
            )));
        }
        self.window.push_back(event);
        if self.window.len() > self.config.window {
            self.window.pop_front();
        }
        self.events += 1;
        if self.events < self.next_release_at {
            return Ok(None);
        }
        // A release is due: advance the schedule whether or not the budget
        // admits it, so an exhausted stream reports one refusal per due
        // point (not one per event) and keeps ingesting in between.
        self.next_release_at = self.events + self.config.slide;
        let composed = self
            .accountant
            .guaranteed_epsilon_with(self.config.epsilon_per_release);
        if composed > self.config.stream_epsilon + 1e-12 {
            return Err(ServiceError::StreamBudgetExhausted {
                stream: self.name.clone(),
                window_end: self.events,
                requested: self.config.epsilon_per_release,
                remaining: self.remaining_epsilon(),
            });
        }
        self.accountant.record(self.config.epsilon_per_release);
        let database: Vec<usize> = self.window.iter().copied().collect();
        let release = self.mechanism.release(&self.query, &database, rng)?;
        self.releases += 1;
        Ok(Some(WindowRelease {
            window_end: self.events,
            release,
            spent_epsilon: composed,
        }))
    }

    /// Recalibrates the stream's backend for a new distribution class —
    /// the stream-side commit point of a canary recalibration after drift.
    ///
    /// The window geometry, backend family, per-release ε and (crucially)
    /// the budget accountant all carry over: recalibration changes *what
    /// noise scale future windows pay*, never how much privacy budget has
    /// already been spent or when the next release is due. The window
    /// contents are preserved too, so the next due release answers over the
    /// same events it would have without the swap. Returns `(old_scale,
    /// new_scale)` so callers can log the scale shift the new class implies.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] when `class` has a different number
    /// of states than the stream (the window events would be out of range);
    /// [`ServiceError::Mechanism`] when the backend cannot calibrate for the
    /// new class — the stream then keeps its current calibration.
    pub fn recalibrate(&mut self, class: &MarkovChainClass) -> Result<(f64, f64), ServiceError> {
        if class.num_states() != self.num_states {
            return Err(ServiceError::InvalidConfig(format!(
                "recalibration class has {} states but the stream has {}",
                class.num_states(),
                self.num_states
            )));
        }
        let per_release = PrivacyBudget::new(self.config.epsilon_per_release)
            .expect("per-release epsilon validated at construction");
        let mechanism: Arc<dyn Mechanism> = match self.config.backend {
            StreamBackend::MqmApprox => Arc::new(MqmApprox::calibrate(
                class,
                self.config.window,
                per_release,
                MqmApproxOptions::default(),
            )?),
            StreamBackend::Gk16 => {
                Arc::new(Gk16::calibrate(class, self.config.window, per_release)?)
            }
        };
        let old_scale = self.noise_scale();
        self.mechanism = mechanism;
        Ok((old_scale, self.noise_scale()))
    }

    /// The stream's name (used in budget-exhaustion errors).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backend family serving this stream.
    pub fn backend(&self) -> StreamBackend {
        self.config.backend
    }

    /// The Laplace scale each window release carries — fixed at calibration
    /// and changed only by [`ContinualRelease::recalibrate`].
    pub fn noise_scale(&self) -> f64 {
        self.mechanism.noise_scale_for(&self.query)
    }

    /// Events ingested so far.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Window releases published so far.
    pub fn releases(&self) -> usize {
        self.releases
    }

    /// Composed privacy loss spent so far (Theorem 4.4 guarantee).
    pub fn spent_epsilon(&self) -> f64 {
        self.accountant.guaranteed_epsilon()
    }

    /// Budget still available for future releases.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.config.stream_epsilon - self.spent_epsilon()).max(0.0)
    }

    /// `true` once the next release no longer fits the stream budget.
    pub fn is_exhausted(&self) -> bool {
        self.remaining_epsilon() < self.config.epsilon_per_release - 1e-12
    }
}

impl std::fmt::Debug for ContinualRelease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContinualRelease")
            .field("name", &self.name)
            .field("backend", &self.config.backend.name())
            .field("events", &self.events)
            .field("releases", &self.releases)
            .field("spent_epsilon", &self.spent_epsilon())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufferfish_markov::IntervalClassBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weak_class() -> MarkovChainClass {
        IntervalClassBuilder::symmetric(0.45)
            .grid_points(2)
            .build()
            .unwrap()
    }

    fn config(backend: StreamBackend) -> StreamConfig {
        StreamConfig {
            window: 20,
            slide: 5,
            epsilon_per_release: 0.2,
            stream_epsilon: 1.0,
            backend,
        }
    }

    #[test]
    fn config_validation() {
        let class = weak_class();
        let mut bad = config(StreamBackend::MqmApprox);
        bad.window = 0;
        assert!(ContinualRelease::new("s", &class, bad).is_err());
        let mut bad = config(StreamBackend::MqmApprox);
        bad.slide = 0;
        assert!(ContinualRelease::new("s", &class, bad).is_err());
        let mut bad = config(StreamBackend::MqmApprox);
        bad.epsilon_per_release = -1.0;
        assert!(ContinualRelease::new("s", &class, bad).is_err());
        let mut bad = config(StreamBackend::MqmApprox);
        bad.stream_epsilon = 0.0;
        assert!(ContinualRelease::new("s", &class, bad).is_err());
    }

    #[test]
    fn release_schedule_and_budget() {
        let class = weak_class();
        let mut stream =
            ContinualRelease::new("sched", &class, config(StreamBackend::MqmApprox)).unwrap();
        assert_eq!(stream.backend(), StreamBackend::MqmApprox);
        assert!(stream.noise_scale() > 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut release_points = Vec::new();
        let mut refusals = Vec::new();
        for t in 0..50 {
            match stream.push(t % 2, &mut rng) {
                Ok(Some(window)) => {
                    release_points.push(window.window_end);
                    assert_eq!(window.release.values.len(), 2);
                    assert_eq!(window.release.true_values.iter().sum::<f64>(), 1.0);
                }
                Ok(None) => {}
                Err(ServiceError::StreamBudgetExhausted {
                    stream, window_end, ..
                }) => {
                    assert_eq!(stream, "sched");
                    assert_eq!(window_end, t + 1);
                    refusals.push(t + 1);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        // Window fills at 20; slide 5: due at 20, 25, 30, 35, 40 — the five
        // releases that exactly exhaust 5 × 0.2 = 1.0; 45 and 50 are refused.
        assert_eq!(release_points, vec![20, 25, 30, 35, 40]);
        assert_eq!(refusals, vec![45, 50]);
        assert_eq!(stream.releases(), 5);
        assert_eq!(stream.events(), 50);
        assert!(stream.is_exhausted());
        assert!((stream.spent_epsilon() - 1.0).abs() < 1e-12);
        assert_eq!(stream.remaining_epsilon(), 0.0);
    }

    #[test]
    fn budget_exhaustion_mid_window_is_a_typed_error_not_a_skip() {
        // Regression test: a stream whose budget dies mid-flight must (a)
        // surface the dedicated StreamBudgetExhausted variant — not a panic,
        // not Ok(None) masquerading as "no release due" — (b) report the
        // exact window boundary each refused release was due at, and (c)
        // keep ingesting so the window stays consistent for observers.
        let class = weak_class();
        let mut stream = ContinualRelease::new(
            "exhausted-mid",
            &class,
            StreamConfig {
                window: 10,
                slide: 5,
                epsilon_per_release: 0.4,
                stream_epsilon: 1.0, // admits exactly two 0.4-releases
                backend: StreamBackend::MqmApprox,
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut refused_at = Vec::new();
        for t in 0..30 {
            match stream.push(t % 2, &mut rng) {
                Ok(_) => {}
                Err(ServiceError::StreamBudgetExhausted {
                    stream: name,
                    window_end,
                    requested,
                    remaining,
                }) => {
                    assert_eq!(name, "exhausted-mid");
                    assert_eq!(window_end, t + 1, "boundary must be the due point");
                    assert_eq!(requested, 0.4);
                    assert!(remaining < 0.4);
                    refused_at.push(window_end);
                }
                Err(other) => panic!("wrong error type: {other}"),
            }
        }
        // Releases at 10 and 15 fit (2 × 0.4 = 0.8); every later due point
        // (20, 25, 30) is refused with the typed error — none is skipped.
        assert_eq!(stream.releases(), 2);
        assert_eq!(refused_at, vec![20, 25, 30]);
        // Ingestion never stopped.
        assert_eq!(stream.events(), 30);
        assert!(stream.is_exhausted());
    }

    #[test]
    fn recalibrate_swaps_the_scale_but_keeps_budget_and_schedule() {
        let class = weak_class();
        let mut stream =
            ContinualRelease::new("recal", &class, config(StreamBackend::MqmApprox)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..22 {
            stream.push(t % 2, &mut rng).unwrap();
        }
        assert_eq!(stream.releases(), 1);
        let spent_before = stream.spent_epsilon();

        // A stickier class costs a larger scale; budget/schedule untouched.
        let sticky = IntervalClassBuilder::symmetric(0.2)
            .grid_points(2)
            .build()
            .unwrap();
        let (old_scale, new_scale) = stream.recalibrate(&sticky).unwrap();
        assert!(new_scale > old_scale);
        assert_eq!(stream.noise_scale(), new_scale);
        assert_eq!(stream.spent_epsilon(), spent_before);
        assert_eq!(stream.events(), 22);

        // The next due release fires on schedule at event 25, at the new
        // scale, over the preserved window.
        let mut released = None;
        for t in 22..25 {
            released = stream.push(t % 2, &mut rng).unwrap();
        }
        let window = released.expect("release due at event 25");
        assert_eq!(window.window_end, 25);
        assert_eq!(window.release.scale, new_scale);

        // Wrong state count is a typed config error, stream unchanged.
        let three_state = MarkovChainClass::singleton(
            pufferfish_markov::MarkovChain::new(
                vec![0.4, 0.3, 0.3],
                vec![
                    vec![0.8, 0.1, 0.1],
                    vec![0.1, 0.8, 0.1],
                    vec![0.1, 0.1, 0.8],
                ],
            )
            .unwrap(),
        );
        assert!(matches!(
            stream.recalibrate(&three_state),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert_eq!(stream.noise_scale(), new_scale);
    }

    #[test]
    fn gk16_backend_works_on_weak_correlations() {
        let class = weak_class();
        let mut stream = ContinualRelease::new("gk", &class, config(StreamBackend::Gk16)).unwrap();
        assert_eq!(stream.backend().name(), "gk16");
        let mut rng = StdRng::seed_from_u64(9);
        let mut releases = 0;
        for t in 0..25 {
            if stream.push(t % 2, &mut rng).unwrap().is_some() {
                releases += 1;
            }
        }
        assert_eq!(releases, 2);
    }

    #[test]
    fn gk16_backend_rejects_strong_correlations_at_calibration() {
        // Sticky chains: GK16's influence norm exceeds 1, so stream creation
        // itself fails — MQM over the same class succeeds.
        let sticky = IntervalClassBuilder::symmetric(0.1)
            .grid_points(3)
            .build()
            .unwrap();
        assert!(matches!(
            ContinualRelease::new("na", &sticky, config(StreamBackend::Gk16)),
            Err(ServiceError::Mechanism(_))
        ));
        assert!(ContinualRelease::new("ok", &sticky, config(StreamBackend::MqmApprox)).is_ok());
    }

    #[test]
    fn out_of_range_events_are_rejected_without_ingestion_side_effects() {
        let class = weak_class();
        let mut stream =
            ContinualRelease::new("range", &class, config(StreamBackend::MqmApprox)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(stream.push(7, &mut rng).is_err());
        assert_eq!(stream.events(), 0);
        assert!(stream.push(1, &mut rng).unwrap().is_none());
        assert_eq!(stream.events(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let class = weak_class();
        let run = || {
            let mut stream =
                ContinualRelease::new("det", &class, config(StreamBackend::MqmApprox)).unwrap();
            let mut rng = StdRng::seed_from_u64(42);
            let mut out = Vec::new();
            for t in 0..30 {
                if let Ok(Some(window)) = stream.push((t / 3) % 2, &mut rng) {
                    out.push(window);
                }
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mqm_and_gk16_streams_run_side_by_side() {
        // The per-stream backend selector: identical events, two pipelines.
        let class = weak_class();
        let mut mqm = ContinualRelease::new("m", &class, config(StreamBackend::MqmApprox)).unwrap();
        let mut gk = ContinualRelease::new("g", &class, config(StreamBackend::Gk16)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for t in 0..20 {
            let event = t % 2;
            let a = mqm.push(event, &mut rng).unwrap();
            let b = gk.push(event, &mut rng).unwrap();
            assert_eq!(a.is_some(), b.is_some());
            if let (Some(a), Some(b)) = (a, b) {
                // Same exact histogram, different calibrated noise scales.
                assert_eq!(a.release.true_values, b.release.true_values);
                assert_ne!(a.release.scale, b.release.scale);
            }
        }
    }
}
