//! Per-user ε-budget accounting for the serving layer.
//!
//! Each user owns a [`CompositionAccountant`] tracking the Theorem 4.4
//! composition of their releases; the [`BudgetAccountant`] admits a request
//! only when the *composed* guarantee after the spend would still fit inside
//! the per-user target. Admission check and commit are one atomic step under
//! the accountant's lock, so concurrent requests for the same user can never
//! jointly overdraw the budget — the property the service stress tests
//! hammer.

use std::collections::HashMap;
use std::sync::Mutex;

use pufferfish_core::CompositionAccountant;

use crate::ServiceError;

/// Thread-safe per-user privacy-budget ledger with a common target ε.
///
/// # Example
///
/// ```
/// use pufferfish_service::BudgetAccountant;
///
/// let budget = BudgetAccountant::new(1.0).unwrap();
/// // Two releases of ε = 0.4 fit inside the target of 1.0 …
/// assert!(budget.try_spend("alice", 0.4).is_ok());
/// assert!(budget.try_spend("alice", 0.4).is_ok());
/// // … a third would compose to 1.2 and is refused.
/// assert!(budget.try_spend("alice", 0.4).is_err());
/// // Budgets are per user: bob's ledger is untouched.
/// assert!(budget.try_spend("bob", 0.4).is_ok());
/// ```
#[derive(Debug)]
pub struct BudgetAccountant {
    target_epsilon: f64,
    users: Mutex<HashMap<String, CompositionAccountant>>,
}

impl BudgetAccountant {
    /// Creates a ledger granting every user the same total budget.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] unless `target_epsilon` is positive
    /// and finite.
    pub fn new(target_epsilon: f64) -> Result<Self, ServiceError> {
        if !target_epsilon.is_finite() || target_epsilon <= 0.0 {
            return Err(ServiceError::InvalidConfig(format!(
                "per-user target epsilon must be positive and finite, got {target_epsilon}"
            )));
        }
        Ok(BudgetAccountant {
            target_epsilon,
            users: Mutex::new(HashMap::new()),
        })
    }

    /// The per-user target ε.
    pub fn target_epsilon(&self) -> f64 {
        self.target_epsilon
    }

    /// Atomically checks and records a spend of `epsilon` for `user`.
    ///
    /// The check is against the *composed* guarantee ([Theorem 4.4]: `Σ ε`
    /// for homogeneous budgets, `K · max ε` for heterogeneous ones), not a
    /// naive running sum — a heterogeneous spend can therefore consume more
    /// budget than its own ε, and the accountant refuses it when the
    /// composed loss would exceed the target. Refused spends leave the
    /// ledger untouched. Returns the budget remaining after the spend.
    ///
    /// [Theorem 4.4]: pufferfish_core::CompositionAccountant
    ///
    /// # Errors
    /// [`ServiceError::BudgetExhausted`] when the composed guarantee after
    /// the spend would exceed the target; [`ServiceError::InvalidConfig`]
    /// for a non-positive or non-finite `epsilon`.
    pub fn try_spend(&self, user: &str, epsilon: f64) -> Result<f64, ServiceError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(ServiceError::InvalidConfig(format!(
                "per-release epsilon must be positive and finite, got {epsilon}"
            )));
        }
        let mut users = self.users.lock().expect("budget ledger poisoned");
        let accountant = users.entry(user.to_string()).or_default();
        // Preview the composed guarantee (not a simple running sum under
        // heterogeneous budgets) without cloning the history — this runs
        // under the ledger lock on every admission.
        let composed = accountant.guaranteed_epsilon_with(epsilon);
        if composed > self.target_epsilon + 1e-12 {
            let remaining = (self.target_epsilon - accountant.guaranteed_epsilon()).max(0.0);
            return Err(ServiceError::BudgetExhausted {
                user: user.to_string(),
                requested: epsilon,
                remaining,
            });
        }
        accountant.record(epsilon);
        Ok((self.target_epsilon - composed).max(0.0))
    }

    /// Rolls back one spend of exactly `epsilon` for `user`, returning
    /// whether a matching spend was found.
    ///
    /// Used by the service when a request passes the budget check but is
    /// then refused by the admission queue — the release never happened, so
    /// the spend must not count (see
    /// [`CompositionAccountant::unrecord`] for why removal by value is
    /// sound).
    pub fn refund(&self, user: &str, epsilon: f64) -> bool {
        self.users
            .lock()
            .expect("budget ledger poisoned")
            .get_mut(user)
            .map(|accountant| accountant.unrecord(epsilon))
            .unwrap_or(false)
    }

    /// The composed privacy loss recorded for `user` so far (0 for unknown
    /// users).
    pub fn spent(&self, user: &str) -> f64 {
        self.users
            .lock()
            .expect("budget ledger poisoned")
            .get(user)
            .map(CompositionAccountant::guaranteed_epsilon)
            .unwrap_or(0.0)
    }

    /// Budget remaining for `user` before the target is exceeded.
    pub fn remaining(&self, user: &str) -> f64 {
        (self.target_epsilon - self.spent(user)).max(0.0)
    }

    /// Number of releases recorded for `user`.
    pub fn releases(&self, user: &str) -> usize {
        self.users
            .lock()
            .expect("budget ledger poisoned")
            .get(user)
            .map(CompositionAccountant::releases)
            .unwrap_or(0)
    }

    /// Number of users with at least one recorded (or attempted) spend.
    pub fn users(&self) -> usize {
        self.users.lock().expect("budget ledger poisoned").len()
    }

    /// The composed privacy loss summed over every user — an aggregate load
    /// signal for dashboards (each user's own guarantee is still their
    /// individual [`BudgetAccountant::spent`] value).
    pub fn total_spent(&self) -> f64 {
        self.users
            .lock()
            .expect("budget ledger poisoned")
            .values()
            .map(CompositionAccountant::guaranteed_epsilon)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(BudgetAccountant::new(0.0).is_err());
        assert!(BudgetAccountant::new(f64::NAN).is_err());
        assert!(BudgetAccountant::new(-1.0).is_err());
        let budget = BudgetAccountant::new(2.0).unwrap();
        assert_eq!(budget.target_epsilon(), 2.0);
        assert!(budget.try_spend("u", 0.0).is_err());
        assert!(budget.try_spend("u", f64::INFINITY).is_err());
    }

    #[test]
    fn homogeneous_spends_sum() {
        let budget = BudgetAccountant::new(1.0).unwrap();
        for i in 0..5 {
            let remaining = budget.try_spend("alice", 0.2).unwrap();
            assert!((remaining - (1.0 - 0.2 * (i + 1) as f64)).abs() < 1e-9);
        }
        assert!(matches!(
            budget.try_spend("alice", 0.2),
            Err(ServiceError::BudgetExhausted { .. })
        ));
        assert_eq!(budget.releases("alice"), 5);
        assert!((budget.spent("alice") - 1.0).abs() < 1e-9);
        assert_eq!(budget.remaining("alice"), 0.0);
    }

    #[test]
    fn heterogeneous_spends_use_composition_guarantee() {
        // 0.1 then 0.5: the Theorem 4.4 guarantee is 2 * 0.5 = 1.0, not 0.6.
        let budget = BudgetAccountant::new(1.0).unwrap();
        budget.try_spend("alice", 0.1).unwrap();
        budget.try_spend("alice", 0.5).unwrap();
        assert!((budget.spent("alice") - 1.0).abs() < 1e-9);
        // Even a tiny further spend composes to 3 * 0.5 = 1.5 > 1.0.
        assert!(budget.try_spend("alice", 0.01).is_err());
        // The refused spend did not change the ledger.
        assert_eq!(budget.releases("alice"), 2);
    }

    #[test]
    fn budgets_are_per_user() {
        let budget = BudgetAccountant::new(0.5).unwrap();
        budget.try_spend("alice", 0.5).unwrap();
        assert!(budget.try_spend("alice", 0.5).is_err());
        budget.try_spend("bob", 0.5).unwrap();
        assert_eq!(budget.users(), 2);
        assert_eq!(budget.spent("nobody"), 0.0);
        assert_eq!(budget.remaining("nobody"), 0.5);
        assert_eq!(budget.releases("nobody"), 0);
    }

    #[test]
    fn refund_restores_budget() {
        let budget = BudgetAccountant::new(1.0).unwrap();
        budget.try_spend("alice", 0.6).unwrap();
        assert!(budget.try_spend("alice", 0.6).is_err());
        assert!(budget.refund("alice", 0.6));
        assert_eq!(budget.releases("alice"), 0);
        assert!(budget.try_spend("alice", 0.6).is_ok());
        // Refunds need a matching spend and a known user.
        assert!(!budget.refund("alice", 0.123));
        assert!(!budget.refund("stranger", 0.6));
    }

    #[test]
    fn concurrent_spends_never_overdraw() {
        use std::sync::Arc;

        let budget = Arc::new(BudgetAccountant::new(1.0).unwrap());
        let grants: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let budget = Arc::clone(&budget);
                    scope.spawn(move || {
                        (0..4)
                            .filter(|_| budget.try_spend("shared", 0.1).is_ok())
                            .count()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|w| w.join().unwrap())
                .sum()
        });
        // 32 attempts at 0.1 against a target of 1.0: exactly 10 grants.
        assert_eq!(grants, 10);
        assert!((budget.spent("shared") - 1.0).abs() < 1e-9);
    }
}
