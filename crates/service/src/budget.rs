//! Per-user ε-budget accounting for the serving layer.
//!
//! Each user owns a [`CompositionAccountant`] tracking the Theorem 4.4
//! composition of their releases; the [`BudgetAccountant`] admits a request
//! only when the *composed* guarantee after the spend would still fit inside
//! the per-user target. Admission check and commit are one atomic step under
//! the accountant's lock, so concurrent requests for the same user can never
//! jointly overdraw the budget — the property the service stress tests
//! hammer.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use pufferfish_core::CompositionAccountant;
use pufferfish_telemetry::{EpsilonLedger, LedgerEventKind};

use crate::ServiceError;

/// Audit context a budget event carries into an attached
/// [`EpsilonLedger`]: which query (by signature), which mechanism family,
/// and which request seed/sequence number the spend belongs to.
///
/// The untagged entry points ([`BudgetAccountant::try_spend`],
/// [`BudgetAccountant::refund`]) log with [`SpendTag::default`] — every
/// budget event still reaches the ledger, just without provenance.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpendTag<'a> {
    /// FNV-1a signature of the query
    /// ([`pufferfish_telemetry::query_signature`]).
    pub query_sig: u64,
    /// The mechanism family serving the release.
    pub family: &'a str,
    /// The request's noise seed / wire sequence number.
    pub seq: u64,
}

/// Thread-safe per-user privacy-budget ledger with a common target ε.
///
/// # Example
///
/// ```
/// use pufferfish_service::BudgetAccountant;
///
/// let budget = BudgetAccountant::new(1.0).unwrap();
/// // Two releases of ε = 0.4 fit inside the target of 1.0 …
/// assert!(budget.try_spend("alice", 0.4).is_ok());
/// assert!(budget.try_spend("alice", 0.4).is_ok());
/// // … a third would compose to 1.2 and is refused.
/// assert!(budget.try_spend("alice", 0.4).is_err());
/// // Budgets are per user: bob's ledger is untouched.
/// assert!(budget.try_spend("bob", 0.4).is_ok());
/// ```
#[derive(Debug)]
pub struct BudgetAccountant {
    target_epsilon: f64,
    // BTreeMap, not HashMap: aggregate views (`total_spent`,
    // `per_user_spent`) iterate in a deterministic order, which is what lets
    // an offline ledger replay reproduce the summed f64 *bitwise*.
    users: Mutex<BTreeMap<String, CompositionAccountant>>,
    /// Write-once: the audit log is attached before traffic and can never
    /// be silently swapped mid-history (a replaced ledger could not replay
    /// the events recorded before the swap). Write-once is also what makes
    /// the per-event read one atomic load instead of a lock round-trip.
    ledger: OnceLock<Arc<EpsilonLedger>>,
}

impl BudgetAccountant {
    /// Creates a ledger granting every user the same total budget.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] unless `target_epsilon` is positive
    /// and finite.
    pub fn new(target_epsilon: f64) -> Result<Self, ServiceError> {
        if !target_epsilon.is_finite() || target_epsilon <= 0.0 {
            return Err(ServiceError::InvalidConfig(format!(
                "per-user target epsilon must be positive and finite, got {target_epsilon}"
            )));
        }
        Ok(BudgetAccountant {
            target_epsilon,
            users: Mutex::new(BTreeMap::new()),
            ledger: OnceLock::new(),
        })
    }

    /// The per-user target ε.
    pub fn target_epsilon(&self) -> f64 {
        self.target_epsilon
    }

    /// Attaches an append-only audit ledger. From this point every budget
    /// event — charge, refund, refusal — is recorded *while the user-table
    /// lock is held*, so the ledger's per-user event order is exactly the
    /// order the accountant applied the operations in. That ordering is what
    /// makes [`EpsilonLedger::replay`] reproduce
    /// [`BudgetAccountant::total_spent`] bitwise (f64 summation is
    /// order-sensitive).
    /// The slot is **write-once**: the first attach wins and later calls
    /// return `false` without replacing it, so an audit trail can never be
    /// silently truncated by re-attachment mid-history.
    pub fn attach_ledger(&self, ledger: Arc<EpsilonLedger>) -> bool {
        self.ledger.set(ledger).is_ok()
    }

    /// The attached audit ledger, if any.
    pub fn ledger(&self) -> Option<Arc<EpsilonLedger>> {
        self.ledger.get().cloned()
    }

    /// Records `kind` into the attached ledger (no-op without one). Callers
    /// hold the users mutex, which is what serialises ledger order with
    /// accountant order.
    fn log(&self, kind: LedgerEventKind, user: &str, epsilon: f64, tag: SpendTag<'_>) {
        if let Some(ledger) = self.ledger.get() {
            ledger.record(kind, user, tag.query_sig, tag.family, epsilon, tag.seq);
        }
    }

    /// Atomically checks and records a spend of `epsilon` for `user`.
    ///
    /// The check is against the *composed* guarantee ([Theorem 4.4]: `Σ ε`
    /// for homogeneous budgets, `K · max ε` for heterogeneous ones), not a
    /// naive running sum — a heterogeneous spend can therefore consume more
    /// budget than its own ε, and the accountant refuses it when the
    /// composed loss would exceed the target. Refused spends leave the
    /// ledger untouched. Returns the budget remaining after the spend.
    ///
    /// [Theorem 4.4]: pufferfish_core::CompositionAccountant
    ///
    /// # Errors
    /// [`ServiceError::BudgetExhausted`] when the composed guarantee after
    /// the spend would exceed the target; [`ServiceError::InvalidConfig`]
    /// for a non-positive or non-finite `epsilon`.
    pub fn try_spend(&self, user: &str, epsilon: f64) -> Result<f64, ServiceError> {
        self.try_spend_tagged(user, epsilon, SpendTag::default())
    }

    /// [`BudgetAccountant::try_spend`] carrying audit context: when a ledger
    /// is attached, the admitted charge (or the refusal) is recorded with
    /// the tag's query signature, mechanism family, and sequence number.
    ///
    /// # Errors
    /// As for [`BudgetAccountant::try_spend`].
    pub fn try_spend_tagged(
        &self,
        user: &str,
        epsilon: f64,
        tag: SpendTag<'_>,
    ) -> Result<f64, ServiceError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(ServiceError::InvalidConfig(format!(
                "per-release epsilon must be positive and finite, got {epsilon}"
            )));
        }
        let mut users = self.users.lock().expect("budget ledger poisoned");
        let accountant = users.entry(user.to_string()).or_default();
        // Preview the composed guarantee (not a simple running sum under
        // heterogeneous budgets) without cloning the history — this runs
        // under the ledger lock on every admission.
        let composed = accountant.guaranteed_epsilon_with(epsilon);
        if composed > self.target_epsilon + 1e-12 {
            let remaining = (self.target_epsilon - accountant.guaranteed_epsilon()).max(0.0);
            self.log(LedgerEventKind::Refusal, user, epsilon, tag);
            return Err(ServiceError::BudgetExhausted {
                user: user.to_string(),
                requested: epsilon,
                remaining,
            });
        }
        accountant.record(epsilon);
        self.log(LedgerEventKind::Charge, user, epsilon, tag);
        Ok((self.target_epsilon - composed).max(0.0))
    }

    /// Rolls back one spend of exactly `epsilon` for `user`, returning
    /// whether a matching spend was found.
    ///
    /// Used by the service when a request passes the budget check but is
    /// then refused by the admission queue — the release never happened, so
    /// the spend must not count (see
    /// [`CompositionAccountant::unrecord`] for why removal by value is
    /// sound).
    pub fn refund(&self, user: &str, epsilon: f64) -> bool {
        self.refund_tagged(user, epsilon, SpendTag::default())
    }

    /// [`BudgetAccountant::refund`] carrying audit context: a successful
    /// rollback is recorded as a refund event in the attached ledger (a
    /// failed match records nothing — the accountant did not change).
    pub fn refund_tagged(&self, user: &str, epsilon: f64, tag: SpendTag<'_>) -> bool {
        let mut users = self.users.lock().expect("budget ledger poisoned");
        let refunded = users
            .get_mut(user)
            .map(|accountant| accountant.unrecord(epsilon))
            .unwrap_or(false);
        if refunded {
            self.log(LedgerEventKind::Refund, user, epsilon, tag);
        }
        refunded
    }

    /// The composed privacy loss recorded for `user` so far (0 for unknown
    /// users).
    pub fn spent(&self, user: &str) -> f64 {
        self.users
            .lock()
            .expect("budget ledger poisoned")
            .get(user)
            .map(CompositionAccountant::guaranteed_epsilon)
            .unwrap_or(0.0)
    }

    /// Budget remaining for `user` before the target is exceeded.
    pub fn remaining(&self, user: &str) -> f64 {
        (self.target_epsilon - self.spent(user)).max(0.0)
    }

    /// Number of releases recorded for `user`.
    pub fn releases(&self, user: &str) -> usize {
        self.users
            .lock()
            .expect("budget ledger poisoned")
            .get(user)
            .map(CompositionAccountant::releases)
            .unwrap_or(0)
    }

    /// Number of users with at least one recorded (or attempted) spend.
    pub fn users(&self) -> usize {
        self.users.lock().expect("budget ledger poisoned").len()
    }

    /// The composed privacy loss summed over every user — an aggregate load
    /// signal for dashboards (each user's own guarantee is still their
    /// individual [`BudgetAccountant::spent`] value).
    pub fn total_spent(&self) -> f64 {
        self.users
            .lock()
            .expect("budget ledger poisoned")
            .values()
            .map(CompositionAccountant::guaranteed_epsilon)
            .sum()
    }

    /// Every user's composed privacy loss, keyed by user in sorted order —
    /// the live state an offline ledger replay is audited against.
    pub fn per_user_spent(&self) -> BTreeMap<String, f64> {
        self.users
            .lock()
            .expect("budget ledger poisoned")
            .iter()
            .map(|(user, accountant)| (user.clone(), accountant.guaranteed_epsilon()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(BudgetAccountant::new(0.0).is_err());
        assert!(BudgetAccountant::new(f64::NAN).is_err());
        assert!(BudgetAccountant::new(-1.0).is_err());
        let budget = BudgetAccountant::new(2.0).unwrap();
        assert_eq!(budget.target_epsilon(), 2.0);
        assert!(budget.try_spend("u", 0.0).is_err());
        assert!(budget.try_spend("u", f64::INFINITY).is_err());
    }

    #[test]
    fn homogeneous_spends_sum() {
        let budget = BudgetAccountant::new(1.0).unwrap();
        for i in 0..5 {
            let remaining = budget.try_spend("alice", 0.2).unwrap();
            assert!((remaining - (1.0 - 0.2 * (i + 1) as f64)).abs() < 1e-9);
        }
        assert!(matches!(
            budget.try_spend("alice", 0.2),
            Err(ServiceError::BudgetExhausted { .. })
        ));
        assert_eq!(budget.releases("alice"), 5);
        assert!((budget.spent("alice") - 1.0).abs() < 1e-9);
        assert_eq!(budget.remaining("alice"), 0.0);
    }

    #[test]
    fn heterogeneous_spends_use_composition_guarantee() {
        // 0.1 then 0.5: the Theorem 4.4 guarantee is 2 * 0.5 = 1.0, not 0.6.
        let budget = BudgetAccountant::new(1.0).unwrap();
        budget.try_spend("alice", 0.1).unwrap();
        budget.try_spend("alice", 0.5).unwrap();
        assert!((budget.spent("alice") - 1.0).abs() < 1e-9);
        // Even a tiny further spend composes to 3 * 0.5 = 1.5 > 1.0.
        assert!(budget.try_spend("alice", 0.01).is_err());
        // The refused spend did not change the ledger.
        assert_eq!(budget.releases("alice"), 2);
    }

    #[test]
    fn budgets_are_per_user() {
        let budget = BudgetAccountant::new(0.5).unwrap();
        budget.try_spend("alice", 0.5).unwrap();
        assert!(budget.try_spend("alice", 0.5).is_err());
        budget.try_spend("bob", 0.5).unwrap();
        assert_eq!(budget.users(), 2);
        assert_eq!(budget.spent("nobody"), 0.0);
        assert_eq!(budget.remaining("nobody"), 0.5);
        assert_eq!(budget.releases("nobody"), 0);
    }

    #[test]
    fn refund_restores_budget() {
        let budget = BudgetAccountant::new(1.0).unwrap();
        budget.try_spend("alice", 0.6).unwrap();
        assert!(budget.try_spend("alice", 0.6).is_err());
        assert!(budget.refund("alice", 0.6));
        assert_eq!(budget.releases("alice"), 0);
        assert!(budget.try_spend("alice", 0.6).is_ok());
        // Refunds need a matching spend and a known user.
        assert!(!budget.refund("alice", 0.123));
        assert!(!budget.refund("stranger", 0.6));
    }

    #[test]
    fn concurrent_spends_never_overdraw() {
        use std::sync::Arc;

        let budget = Arc::new(BudgetAccountant::new(1.0).unwrap());
        let grants: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let budget = Arc::clone(&budget);
                    scope.spawn(move || {
                        (0..4)
                            .filter(|_| budget.try_spend("shared", 0.1).is_ok())
                            .count()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|w| w.join().unwrap())
                .sum()
        });
        // 32 attempts at 0.1 against a target of 1.0: exactly 10 grants.
        assert_eq!(grants, 10);
        assert!((budget.spent("shared") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attached_ledger_sees_every_budget_event() {
        use pufferfish_telemetry::query_signature;

        let budget = BudgetAccountant::new(1.0).unwrap();
        let ledger = Arc::new(EpsilonLedger::new());
        budget.attach_ledger(Arc::clone(&ledger));
        assert!(budget.ledger().is_some());

        let tag = SpendTag {
            query_sig: query_signature("state-frequency"),
            family: "mqm-approx",
            seq: 7,
        };
        budget.try_spend_tagged("t#a", 0.6, tag).unwrap();
        // Refused: composed 2 × 0.6 = 1.2 > 1.0.
        assert!(budget.try_spend_tagged("t#a", 0.6, tag).is_err());
        assert!(budget.refund_tagged("t#a", 0.6, tag));
        // A failed refund changes nothing and logs nothing.
        assert!(!budget.refund_tagged("t#a", 0.6, tag));
        // Untagged entry points still log, with a default tag.
        budget.try_spend("t#b", 0.25).unwrap();

        let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
        let kinds: Vec<LedgerEventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LedgerEventKind::Charge,
                LedgerEventKind::Refusal,
                LedgerEventKind::Refund,
                LedgerEventKind::Charge,
            ]
        );
        assert_eq!(events[0].family, "mqm-approx");
        assert_eq!(events[0].seq, 7);
        assert_eq!(events[3].user, "t#b");
        assert_eq!(events[3].family, "");

        let spend = pufferfish_telemetry::replay_spend(&events).unwrap();
        let live = budget.per_user_spent();
        assert_eq!(live.len(), 2);
        for (user, epsilons) in &spend {
            let mut accountant = CompositionAccountant::new();
            for &e in epsilons {
                accountant.record(e);
            }
            assert_eq!(
                accountant.guaranteed_epsilon().to_bits(),
                live[user].to_bits()
            );
        }
    }
}
