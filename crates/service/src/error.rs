//! Error type for the serving layer.

use std::fmt;

use pufferfish_core::PufferfishError;

/// Errors produced by the release service, budget accountant and streaming
/// pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A configuration parameter (target ε, window geometry, queue capacity)
    /// was invalid.
    InvalidConfig(String),
    /// Admitting the request would push the user's composed privacy loss
    /// (Theorem 4.4 accounting) past their target budget.
    BudgetExhausted {
        /// The budget owner (user id or stream name).
        user: String,
        /// The per-release ε the request asked for.
        requested: f64,
        /// Budget still available under the composition guarantee (0 when
        /// fully exhausted).
        remaining: f64,
    },
    /// A continual-release stream's total ε budget could not admit a due
    /// window release. Distinct from [`ServiceError::BudgetExhausted`] so
    /// stream drivers can tell "this stream is done releasing" (ingestion
    /// still continues) from a per-user admission refusal, and can report
    /// *where* in the stream the budget ran out.
    StreamBudgetExhausted {
        /// The stream's name.
        stream: String,
        /// Number of events ingested when the refused release came due —
        /// the window boundary the caller did *not* get a release for.
        window_end: usize,
        /// The per-release ε the due release needed.
        requested: f64,
        /// Budget still available under the composition guarantee (0 when
        /// fully exhausted).
        remaining: f64,
    },
    /// The bounded admission queue was full (back-pressure signal — the
    /// caller should retry, shed the request, or use the blocking submit).
    QueueFull {
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// The service has been shut down and accepts no further requests.
    ServiceClosed,
    /// A bounded wait on a [`Ticket`](crate::Ticket) elapsed before the
    /// worker fulfilled the request. The request is still in flight: the
    /// caller can wait again, or walk away and let the response be dropped.
    WaitTimeout {
        /// How long the caller was prepared to wait.
        waited: std::time::Duration,
    },
    /// Calibration, validation or release failed in the mechanism layer.
    Mechanism(PufferfishError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidConfig(msg) => write!(f, "invalid service config: {msg}"),
            ServiceError::BudgetExhausted {
                user,
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted for '{user}': requested epsilon {requested}, \
                 remaining {remaining}"
            ),
            ServiceError::StreamBudgetExhausted {
                stream,
                window_end,
                requested,
                remaining,
            } => write!(
                f,
                "stream '{stream}' budget exhausted at window ending at event \
                 {window_end}: release needs epsilon {requested}, remaining {remaining}"
            ),
            ServiceError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            ServiceError::ServiceClosed => write!(f, "service is shut down"),
            ServiceError::WaitTimeout { waited } => {
                write!(f, "response not ready within {waited:?}")
            }
            ServiceError::Mechanism(e) => write!(f, "mechanism error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Mechanism(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PufferfishError> for ServiceError {
    fn from(e: PufferfishError) -> Self {
        ServiceError::Mechanism(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        assert!(ServiceError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        let exhausted = ServiceError::BudgetExhausted {
            user: "alice".into(),
            requested: 0.5,
            remaining: 0.1,
        };
        assert!(exhausted.to_string().contains("alice"));
        assert!(exhausted.source().is_none());
        let stream = ServiceError::StreamBudgetExhausted {
            stream: "sensor-1".into(),
            window_end: 45,
            requested: 0.2,
            remaining: 0.0,
        };
        assert!(stream.to_string().contains("sensor-1"));
        assert!(stream.to_string().contains("45"));
        assert!(stream.source().is_none());
        assert!(ServiceError::QueueFull { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(ServiceError::ServiceClosed.to_string().contains("shut"));
        let timeout = ServiceError::WaitTimeout {
            waited: std::time::Duration::from_millis(5),
        };
        assert!(timeout.to_string().contains("not ready"));
        assert!(timeout.source().is_none());
        let wrapped = ServiceError::from(PufferfishError::InvalidEpsilon(0.0));
        assert!(wrapped.to_string().contains("epsilon"));
        assert!(wrapped.source().is_some());
    }
}
