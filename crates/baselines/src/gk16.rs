//! The GK16 baseline: the influence-matrix mechanism of Ghosh & Kleinberg,
//! "Inferential privacy guarantees for differentially private mechanisms"
//! (2016), as used for comparison in Section 5 of the Pufferfish mechanisms
//! paper.
//!
//! No reference implementation of GK16 is publicly available; this
//! re-implementation follows the description the Pufferfish paper relies on:
//!
//! * for every `θ ∈ Θ` an *influence matrix* is computed from the local
//!   (single-step) dependencies between adjacent variables — for a Markov
//!   chain, the max-divergence of the forward transition kernel and of the
//!   time-reversed kernel;
//! * the mechanism **applies only when the spectral norm of the influence
//!   matrix is below 1** for every `θ`;
//! * when it applies, the Laplace noise of the standard DP release is
//!   inflated by `1 / (1 − ‖I‖₂)`.
//!
//! This reproduces the two behaviours the evaluation depends on: GK16 is
//! inapplicable whenever local correlations are strong (the dashed line in
//! Figure 4 and every real-data column of Tables 1 and 3), and its error
//! grows as the spectral norm approaches 1.

use rand::Rng;

use pufferfish_core::queries::LipschitzQuery;
use pufferfish_core::{
    validate_query_length, Laplace, Mechanism, NoisyRelease, PrivacyBudget, PufferfishError, Result,
};
use pufferfish_linalg::Matrix;
use pufferfish_markov::{time_reversal, MarkovChain, MarkovChainClass};

/// Chain lengths up to this size build the explicit `T x T` influence matrix;
/// longer chains use the Toeplitz-limit spectral norm (forward + backward
/// influence), which the explicit norm converges to from below.
const EXPLICIT_NORM_LIMIT: usize = 256;

/// Summary of the influence matrix of one distribution in the class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfluenceMatrixSummary {
    /// Max-divergence influence of `X_t` on `X_{t+1}`.
    pub forward_influence: f64,
    /// Max-divergence influence of `X_{t+1}` on `X_t` (via the time-reversed
    /// kernel).
    pub backward_influence: f64,
    /// Spectral norm of the influence matrix.
    pub spectral_norm: f64,
}

/// A calibrated GK16 mechanism.
#[derive(Debug, Clone)]
pub struct Gk16 {
    epsilon: f64,
    worst_norm: f64,
    summaries: Vec<InfluenceMatrixSummary>,
}

impl Gk16 {
    /// Calibrates GK16 for a class of Markov chains of the given length.
    ///
    /// # Errors
    /// * [`PufferfishError::CannotCalibrate`] when the spectral norm of some
    ///   influence matrix is `>= 1` (the mechanism does not apply — reported
    ///   as "N/A" throughout the paper's tables) or the chains do not mix.
    pub fn calibrate(
        class: &MarkovChainClass,
        length: usize,
        budget: PrivacyBudget,
    ) -> Result<Self> {
        if length == 0 {
            return Err(PufferfishError::InvalidQuery(
                "chain length must be positive".to_string(),
            ));
        }
        let mut worst_norm: f64 = 0.0;
        let mut summaries = Vec::with_capacity(class.len());
        for chain in class.chains() {
            let summary = influence_summary(chain, length)?;
            worst_norm = worst_norm.max(summary.spectral_norm);
            summaries.push(summary);
        }
        if worst_norm >= 1.0 {
            return Err(PufferfishError::CannotCalibrate(format!(
                "GK16 does not apply: influence-matrix spectral norm {worst_norm:.4} >= 1"
            )));
        }
        Ok(Gk16 {
            epsilon: budget.epsilon(),
            worst_norm,
            summaries,
        })
    }

    /// The worst spectral norm over the class.
    pub fn spectral_norm(&self) -> f64 {
        self.worst_norm
    }

    /// Per-distribution influence summaries.
    pub fn summaries(&self) -> &[InfluenceMatrixSummary] {
        &self.summaries
    }

    /// The privacy parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The noise-inflation factor `1 / (1 − ‖I‖₂)`.
    pub fn inflation(&self) -> f64 {
        1.0 / (1.0 - self.worst_norm)
    }

    /// Laplace scale applied per coordinate of `query`.
    pub fn noise_scale_for(&self, query: &dyn LipschitzQuery) -> f64 {
        query.lipschitz_constant() * self.inflation() / self.epsilon
    }

    /// Evaluates and privatises a query.
    ///
    /// # Errors
    /// Query evaluation errors are propagated.
    pub fn release<R: Rng + ?Sized>(
        &self,
        query: &dyn LipschitzQuery,
        database: &[usize],
        rng: &mut R,
    ) -> Result<NoisyRelease> {
        let true_values = query.evaluate(database)?;
        let scale = self.noise_scale_for(query);
        let laplace = Laplace::new(scale)?;
        let mut noise = vec![0.0; true_values.len()];
        laplace.sample_into(&mut noise, rng);
        let values = true_values.iter().zip(&noise).map(|(v, n)| v + n).collect();
        Ok(NoisyRelease {
            values,
            true_values,
            scale,
        })
    }
}

impl Mechanism for Gk16 {
    fn name(&self) -> &'static str {
        "gk16"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn noise_scale_for(&self, query: &dyn LipschitzQuery) -> f64 {
        Gk16::noise_scale_for(self, query)
    }

    fn validate(&self, query: &dyn LipschitzQuery, database: &[usize]) -> Result<()> {
        validate_query_length(query, database)
    }

    /// Release-relevant state: the scale rule `L · inflation / ε` in its
    /// original operation order. The per-distribution influence summaries
    /// are not part of the normal form.
    fn snapshot_state(&self) -> Option<pufferfish_core::snapshot::MechanismState> {
        Some(pufferfish_core::snapshot::MechanismState {
            family: Mechanism::name(self).to_string(),
            epsilon: self.epsilon,
            scale: pufferfish_core::snapshot::ScaleForm::LipschitzRatio {
                numerator: self.inflation(),
                denominator: self.epsilon,
            },
            validation: pufferfish_core::snapshot::ValidationForm::QueryLength,
        })
    }
}

/// Builds the influence summary of a single chain.
fn influence_summary(chain: &MarkovChain, length: usize) -> Result<InfluenceMatrixSummary> {
    let forward = kernel_max_divergence(chain.transition());
    let reversed = time_reversal(chain)?;
    let backward = kernel_max_divergence(reversed.transition());

    let spectral_norm = if forward.is_infinite() || backward.is_infinite() {
        f64::INFINITY
    } else if length <= EXPLICIT_NORM_LIMIT {
        explicit_tridiagonal_norm(forward, backward, length)?
    } else {
        // Toeplitz symbol limit: sup_ω |a e^{iω} + b e^{-iω}| = a + b.
        forward + backward
    };
    Ok(InfluenceMatrixSummary {
        forward_influence: forward,
        backward_influence: backward,
        spectral_norm,
    })
}

/// `max_{x, x', y} log P(y | x) / P(y | x')` for a transition kernel; infinite
/// when some transition probability is zero while another row's is not.
fn kernel_max_divergence(kernel: &Matrix) -> f64 {
    let k = kernel.rows();
    let mut worst: f64 = 0.0;
    for x in 0..k {
        for x_prime in 0..k {
            if x == x_prime {
                continue;
            }
            for y in 0..k {
                let numerator = kernel[(x, y)];
                let denominator = kernel[(x_prime, y)];
                if numerator <= 0.0 {
                    continue;
                }
                if denominator <= 0.0 {
                    return f64::INFINITY;
                }
                worst = worst.max((numerator / denominator).ln());
            }
        }
    }
    worst
}

/// Spectral norm of the `length x length` influence matrix with constant
/// super-diagonal `forward` and sub-diagonal `backward`.
fn explicit_tridiagonal_norm(forward: f64, backward: f64, length: usize) -> Result<f64> {
    if length == 1 {
        return Ok(0.0);
    }
    let mut matrix = Matrix::zeros(length, length);
    for t in 0..length - 1 {
        matrix[(t, t + 1)] = forward;
        matrix[(t + 1, t)] = backward;
    }
    Ok(matrix.spectral_norm()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufferfish_core::queries::StateFrequencyQuery;
    use pufferfish_markov::IntervalClassBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn budget() -> PrivacyBudget {
        PrivacyBudget::new(1.0).unwrap()
    }

    #[test]
    fn weakly_correlated_class_is_supported() {
        // p0, p1 in [0.45, 0.55]: influences are tiny, norm well below 1.
        let class = IntervalClassBuilder::symmetric(0.45)
            .grid_points(3)
            .build()
            .unwrap();
        let gk = Gk16::calibrate(&class, 100, budget()).unwrap();
        assert!(gk.spectral_norm() < 1.0);
        assert!(gk.inflation() >= 1.0);
        assert_eq!(gk.summaries().len(), 9);
        assert_eq!(gk.epsilon(), 1.0);

        let query = StateFrequencyQuery::new(1, 100);
        assert!(gk.noise_scale_for(&query) >= query.lipschitz_constant());
        let mut rng = StdRng::seed_from_u64(11);
        let db: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let release = gk.release(&query, &db, &mut rng).unwrap();
        assert_eq!(release.values.len(), 1);
    }

    #[test]
    fn strongly_correlated_class_is_rejected() {
        // Sticky chains (p in [0.1, 0.9] includes strong correlation): the
        // norm exceeds 1 and GK16 reports N/A.
        let class = IntervalClassBuilder::symmetric(0.1)
            .grid_points(5)
            .build()
            .unwrap();
        assert!(matches!(
            Gk16::calibrate(&class, 100, budget()),
            Err(PufferfishError::CannotCalibrate(_))
        ));
    }

    #[test]
    fn deterministic_transitions_are_rejected() {
        let deterministic =
            MarkovChain::new(vec![0.5, 0.5], vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let class = MarkovChainClass::singleton(deterministic);
        assert!(Gk16::calibrate(&class, 50, budget()).is_err());
    }

    #[test]
    fn norm_grows_with_correlation_strength() {
        let make = |stay: f64| {
            MarkovChainClass::singleton(
                MarkovChain::new(
                    vec![0.5, 0.5],
                    vec![vec![stay, 1.0 - stay], vec![1.0 - stay, stay]],
                )
                .unwrap(),
            )
        };
        let weak = Gk16::calibrate(&make(0.55), 100, budget()).unwrap();
        let stronger = Gk16::calibrate(&make(0.6), 100, budget()).unwrap();
        assert!(stronger.spectral_norm() > weak.spectral_norm());
        assert!(stronger.inflation() > weak.inflation());
    }

    #[test]
    fn toeplitz_limit_close_to_explicit_norm() {
        // The explicit tridiagonal norm converges to forward + backward.
        let explicit = explicit_tridiagonal_norm(0.2, 0.3, 200).unwrap();
        assert!(explicit <= 0.5 + 1e-9);
        assert!(explicit > 0.49, "explicit norm {explicit}");
        assert_eq!(explicit_tridiagonal_norm(0.2, 0.3, 1).unwrap(), 0.0);
    }

    #[test]
    fn long_chain_uses_toeplitz_limit() {
        let class = IntervalClassBuilder::symmetric(0.45)
            .grid_points(2)
            .build()
            .unwrap();
        let short = Gk16::calibrate(&class, 100, budget()).unwrap();
        let long = Gk16::calibrate(&class, 10_000, budget()).unwrap();
        // The limit value upper-bounds the explicit norm and they are close.
        assert!(long.spectral_norm() >= short.spectral_norm() - 1e-9);
        assert!((long.spectral_norm() - short.spectral_norm()).abs() < 0.02);
    }

    #[test]
    fn validation() {
        let class = IntervalClassBuilder::symmetric(0.45).build().unwrap();
        assert!(Gk16::calibrate(&class, 0, budget()).is_err());
    }
}
