//! Baseline mechanisms the paper's evaluation compares against.
//!
//! * [`EntryDp`] — the classical Laplace mechanism for (entry) differential
//!   privacy: noise proportional to the query's Lipschitz constant. Used as
//!   the "DP" row of Table 1 (aggregation across participants) and as the
//!   degenerate no-correlation baseline.
//! * [`GroupDp`] — group differential privacy (Definition 2.2): all records
//!   in a correlated group are protected together, so the noise scales with
//!   the size of the largest group (for a single connected Markov chain,
//!   the whole chain).
//! * [`Gk16`] — the influence-matrix mechanism of Ghosh & Kleinberg
//!   ("Inferential privacy", 2016), re-implemented from the description in
//!   Section 5.1 of the Pufferfish mechanisms paper: it builds a local
//!   influence matrix per distribution, applies only when its spectral norm
//!   is below 1, and inflates the Laplace noise by `1 / (1 − ‖I‖₂)`.
//!
//! All three release queries through the shared [`LipschitzQuery`] interface
//! of `pufferfish-core`, so the experiment harness can swap mechanisms
//! freely.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod entry_dp;
mod gk16;
mod group_dp;

pub use entry_dp::EntryDp;
pub use gk16::{Gk16, InfluenceMatrixSummary};
pub use group_dp::GroupDp;

pub use pufferfish_core::{
    LipschitzQuery, Mechanism, NoisyRelease, PrivacyBudget, PufferfishError,
};

/// Result alias matching `pufferfish-core`.
pub type Result<T> = std::result::Result<T, PufferfishError>;
