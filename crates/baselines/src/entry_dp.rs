//! Entry differential privacy via the Laplace mechanism.

use rand::Rng;

use pufferfish_core::queries::LipschitzQuery;
use pufferfish_core::{
    validate_query_length, Laplace, Mechanism, NoisyRelease, PrivacyBudget, PufferfishError, Result,
};

/// The classical Laplace mechanism: adds `Lap(Δ / ε)` to every coordinate,
/// where `Δ` is an L1 sensitivity.
///
/// Two constructors cover the paper's two uses:
///
/// * [`EntryDp::for_query`] — entry DP / coupled-worlds style protection of a
///   single record of a time series, with `Δ = L` (the query's Lipschitz
///   constant);
/// * [`EntryDp::with_sensitivity`] — protection of one *participant* in an
///   aggregate over `n` participants (the "DP" row of Table 1), where the
///   caller supplies the participant-level sensitivity (e.g. `2/n` for an
///   averaged relative-frequency histogram).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryDp {
    epsilon: f64,
    sensitivity: f64,
}

impl EntryDp {
    /// Calibrates for the supplied L1 sensitivity.
    ///
    /// # Errors
    /// [`PufferfishError::CannotCalibrate`] for a non-positive or non-finite
    /// sensitivity.
    pub fn with_sensitivity(sensitivity: f64, budget: PrivacyBudget) -> Result<Self> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(PufferfishError::CannotCalibrate(format!(
                "sensitivity must be positive and finite, got {sensitivity}"
            )));
        }
        Ok(EntryDp {
            epsilon: budget.epsilon(),
            sensitivity,
        })
    }

    /// Calibrates for entry-level protection of the given query
    /// (`Δ = L`, the query's Lipschitz constant).
    ///
    /// # Errors
    /// Same as [`EntryDp::with_sensitivity`].
    pub fn for_query(query: &dyn LipschitzQuery, budget: PrivacyBudget) -> Result<Self> {
        Self::with_sensitivity(query.lipschitz_constant(), budget)
    }

    /// The Laplace scale `Δ / ε`.
    pub fn noise_scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// The privacy parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Adds calibrated noise to an already-computed vector of values.
    ///
    /// # Errors
    /// Never fails for a valid calibration; kept fallible for interface
    /// symmetry.
    pub fn privatize<R: Rng + ?Sized>(&self, values: &[f64], rng: &mut R) -> Result<NoisyRelease> {
        let laplace = Laplace::new(self.noise_scale())?;
        let mut noise = vec![0.0; values.len()];
        laplace.sample_into(&mut noise, rng);
        let noisy = values.iter().zip(&noise).map(|(v, n)| v + n).collect();
        Ok(NoisyRelease {
            values: noisy,
            true_values: values.to_vec(),
            scale: self.noise_scale(),
        })
    }

    /// Evaluates and privatises a query over a database.
    ///
    /// # Errors
    /// Query evaluation errors are propagated.
    pub fn release<R: Rng + ?Sized>(
        &self,
        query: &dyn LipschitzQuery,
        database: &[usize],
        rng: &mut R,
    ) -> Result<NoisyRelease> {
        let values = query.evaluate(database)?;
        self.privatize(&values, rng)
    }
}

impl Mechanism for EntryDp {
    fn name(&self) -> &'static str {
        "entry-dp"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Entry DP is calibrated to a caller-supplied sensitivity, so the scale
    /// does not rescale by the query's Lipschitz constant.
    fn noise_scale_for(&self, _query: &dyn LipschitzQuery) -> f64 {
        self.noise_scale()
    }

    fn validate(&self, query: &dyn LipschitzQuery, database: &[usize]) -> Result<()> {
        validate_query_length(query, database)
    }

    /// Release-relevant state: the fixed scale `Δ / ε`.
    fn snapshot_state(&self) -> Option<pufferfish_core::snapshot::MechanismState> {
        Some(pufferfish_core::snapshot::MechanismState {
            family: Mechanism::name(self).to_string(),
            epsilon: self.epsilon,
            scale: pufferfish_core::snapshot::ScaleForm::Fixed {
                scale: self.noise_scale(),
            },
            validation: pufferfish_core::snapshot::ValidationForm::QueryLength,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufferfish_core::queries::RelativeFrequencyHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration() {
        let budget = PrivacyBudget::new(2.0).unwrap();
        let dp = EntryDp::with_sensitivity(1.0, budget).unwrap();
        assert!((dp.noise_scale() - 0.5).abs() < 1e-12);
        assert_eq!(dp.epsilon(), 2.0);
        assert!(EntryDp::with_sensitivity(0.0, budget).is_err());
        assert!(EntryDp::with_sensitivity(f64::NAN, budget).is_err());

        let query = RelativeFrequencyHistogram::new(4, 100).unwrap();
        let dp = EntryDp::for_query(&query, budget).unwrap();
        assert!((dp.noise_scale() - 0.02 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn release_noise_magnitude() {
        let budget = PrivacyBudget::new(1.0).unwrap();
        let query = RelativeFrequencyHistogram::new(2, 50).unwrap();
        let dp = EntryDp::for_query(&query, budget).unwrap();
        let database: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0.0;
        let trials = 5_000;
        for _ in 0..trials {
            let release = dp.release(&query, &database, &mut rng).unwrap();
            assert_eq!(release.values.len(), 2);
            total += release.l1_error();
        }
        // Each of 2 bins gets |Lap(0.04)| with mean 0.04: expected L1 error 0.08.
        let mean = total / trials as f64;
        assert!((mean - 0.08).abs() < 0.01, "mean error {mean}");
    }

    #[test]
    fn privatize_preserves_true_values() {
        let dp = EntryDp::with_sensitivity(0.5, PrivacyBudget::new(1.0).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let release = dp.privatize(&[1.0, 2.0, 3.0], &mut rng).unwrap();
        assert_eq!(release.true_values, vec![1.0, 2.0, 3.0]);
        assert_eq!(release.values.len(), 3);
        assert!((release.scale - 0.5).abs() < 1e-12);
    }
}
