//! Group differential privacy (Definition 2.2 of the paper).

use rand::Rng;

use pufferfish_core::queries::LipschitzQuery;
use pufferfish_core::{
    validate_query_length, Laplace, Mechanism, NoisyRelease, PrivacyBudget, PufferfishError, Result,
};

/// The group-DP baseline ("GroupDP" in the experiments): every record in a
/// correlated group must be protected simultaneously, so the Laplace scale is
/// `L · M / ε`, where `M` is the size of the largest group.
///
/// For a single connected Markov chain the whole series is one group
/// (`M = T`), which is why this baseline destroys utility on long chains;
/// when measurement gaps split the data into several shorter chains, `M` is
/// the length of the longest segment — exactly the preprocessing advantage
/// the paper grants it in Section 5.3.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupDp {
    epsilon: f64,
    largest_group: usize,
}

impl GroupDp {
    /// Calibrates for the given largest-group size.
    ///
    /// # Errors
    /// [`PufferfishError::CannotCalibrate`] when `largest_group == 0`.
    pub fn calibrate(largest_group: usize, budget: PrivacyBudget) -> Result<Self> {
        if largest_group == 0 {
            return Err(PufferfishError::CannotCalibrate(
                "largest group must contain at least one record".to_string(),
            ));
        }
        Ok(GroupDp {
            epsilon: budget.epsilon(),
            largest_group,
        })
    }

    /// Calibrates from the segment lengths of a gap-split time series (`M` =
    /// longest segment).
    ///
    /// # Errors
    /// [`PufferfishError::CannotCalibrate`] when there are no segments.
    pub fn from_segments(segment_lengths: &[usize], budget: PrivacyBudget) -> Result<Self> {
        let largest = segment_lengths.iter().copied().max().unwrap_or(0);
        Self::calibrate(largest, budget)
    }

    /// Size of the largest correlated group `M`.
    pub fn largest_group(&self) -> usize {
        self.largest_group
    }

    /// The privacy parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Laplace scale applied per coordinate of `query`: `L · M / ε`.
    pub fn noise_scale_for(&self, query: &dyn LipschitzQuery) -> f64 {
        query.lipschitz_constant() * self.largest_group as f64 / self.epsilon
    }

    /// Evaluates and privatises a query.
    ///
    /// # Errors
    /// Query evaluation errors are propagated.
    pub fn release<R: Rng + ?Sized>(
        &self,
        query: &dyn LipschitzQuery,
        database: &[usize],
        rng: &mut R,
    ) -> Result<NoisyRelease> {
        let true_values = query.evaluate(database)?;
        let scale = self.noise_scale_for(query);
        let laplace = Laplace::new(scale)?;
        let mut noise = vec![0.0; true_values.len()];
        laplace.sample_into(&mut noise, rng);
        let values = true_values.iter().zip(&noise).map(|(v, n)| v + n).collect();
        Ok(NoisyRelease {
            values,
            true_values,
            scale,
        })
    }
}

impl Mechanism for GroupDp {
    fn name(&self) -> &'static str {
        "group-dp"
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn noise_scale_for(&self, query: &dyn LipschitzQuery) -> f64 {
        GroupDp::noise_scale_for(self, query)
    }

    fn validate(&self, query: &dyn LipschitzQuery, database: &[usize]) -> Result<()> {
        validate_query_length(query, database)
    }

    /// Release-relevant state: the scale rule `L · M / ε` in its original
    /// operation order, so restored scales are bitwise-identical.
    fn snapshot_state(&self) -> Option<pufferfish_core::snapshot::MechanismState> {
        Some(pufferfish_core::snapshot::MechanismState {
            family: Mechanism::name(self).to_string(),
            epsilon: self.epsilon,
            scale: pufferfish_core::snapshot::ScaleForm::LipschitzRatio {
                numerator: self.largest_group as f64,
                denominator: self.epsilon,
            },
            validation: pufferfish_core::snapshot::ValidationForm::QueryLength,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufferfish_core::queries::{RelativeFrequencyHistogram, StateFrequencyQuery};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibration_and_scales() {
        let budget = PrivacyBudget::new(1.0).unwrap();
        assert!(GroupDp::calibrate(0, budget).is_err());
        assert!(GroupDp::from_segments(&[], budget).is_err());

        // A single chain of length 100: the histogram (2/T-Lipschitz) gets
        // scale 2/T * T / eps = 2.
        let group = GroupDp::calibrate(100, budget).unwrap();
        assert_eq!(group.largest_group(), 100);
        assert_eq!(group.epsilon(), 1.0);
        let histogram = RelativeFrequencyHistogram::new(2, 100).unwrap();
        assert!((group.noise_scale_for(&histogram) - 2.0).abs() < 1e-12);

        // The scalar frequency query (1/T-Lipschitz) gets scale 1, matching
        // the "GroupDP has error around 1 for epsilon = 1" remark under
        // Figure 4.
        let frequency = StateFrequencyQuery::new(1, 100);
        assert!((group.noise_scale_for(&frequency) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gap_splitting_reduces_noise() {
        let budget = PrivacyBudget::new(1.0).unwrap();
        let whole = GroupDp::calibrate(9_000, budget).unwrap();
        let split = GroupDp::from_segments(&[3_000, 2_500, 3_500], budget).unwrap();
        assert_eq!(split.largest_group(), 3_500);
        let histogram = RelativeFrequencyHistogram::new(4, 9_000).unwrap();
        assert!(split.noise_scale_for(&histogram) < whole.noise_scale_for(&histogram));
    }

    #[test]
    fn release_has_group_scaled_error() {
        let budget = PrivacyBudget::new(1.0).unwrap();
        let group = GroupDp::calibrate(100, budget).unwrap();
        let query = StateFrequencyQuery::new(1, 100);
        let database: Vec<usize> = (0..100).map(|i| (i / 10) % 2).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 5_000;
        let mut total = 0.0;
        for _ in 0..trials {
            total += group
                .release(&query, &database, &mut rng)
                .unwrap()
                .l1_error();
        }
        let mean = total / trials as f64;
        // Mean |Lap(1)| = 1.
        assert!((mean - 1.0).abs() < 0.1, "mean error {mean}");
    }
}
