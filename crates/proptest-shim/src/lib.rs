//! A dependency-free, offline stand-in for the subset of the [`proptest`]
//! API used by this workspace: range and collection strategies, `prop_map` /
//! `prop_flat_map`, the `proptest!` / `prop_compose!` macros and the
//! `prop_assert*` family.
//!
//! The build environment has no crates.io access, so this crate re-implements
//! property tests as a seeded random search: every generated test runs
//! `ProptestConfig::cases` random cases (default 256) from a fixed seed.
//! There is **no shrinking** — a failing case reports the case index and the
//! failed assertion instead. Code written against this shim compiles
//! unchanged against the real proptest.
//!
//! [`proptest`]: https://docs.rs/proptest

#![deny(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

pub use rand::SeedableRng as _SeedableRngForMacros;

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Test-runner configuration (only `cases` is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A boxed strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy backed by a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
    /// Wraps a sampling closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Lengths accepted by [`vec()`]: a fixed size or a range of sizes.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors of `element` samples with length drawn from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The outcome of one property case (used by the generated test bodies).
pub type CaseResult = Result<(), String>;

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds (counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (@config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Stable per-test seed: hash of the test name.
                let seed = {
                    let name = stringify!($name);
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                let mut rng = <$crate::TestRng as $crate::_SeedableRngForMacros>::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: $crate::CaseResult = (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed at case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Declares a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])* $vis:vis fn $name:ident ( $($param:ident : $pty:ty),* $(,)? )
        ( $($arg:ident in $strat:expr),* $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy::new(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn unit_pair()(a in 0.0f64..1.0, b in 0.0f64..1.0) -> (f64, f64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..3.0, n in 1usize..9) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_and_assume(values in collection::vec(0.0f64..10.0, 1..12)) {
            prop_assume!(!values.is_empty());
            prop_assert!(values.iter().all(|v| (0.0..10.0).contains(v)));
            prop_assert_eq!(values.len(), values.len());
        }

        #[test]
        fn composed_and_mapped(pair in unit_pair(), scaled in (0.0f64..1.0).prop_map(|x| x * 10.0)) {
            prop_assert!(pair.0 >= 0.0 && pair.1 < 1.0);
            prop_assert!((0.0..10.0).contains(&scaled));
        }
    }

    #[test]
    fn flat_map_composes() {
        use rand::SeedableRng;
        let strategy = (1usize..4).prop_flat_map(|n| collection::vec(0.0f64..1.0, n));
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = Strategy::sample(&strategy, &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
