//! Mixing-time estimation.
//!
//! Theorem 4.10 of the paper shows that the noise added by MQMApprox is (up
//! to constants) an upper bound on the mixing time of the chains in Θ, so
//! "if Θ consists of rapidly mixing chains, then Algorithm 4 provides both
//! privacy and utility". The harness uses the mixing time to characterise
//! workloads and in the ablation benches.

use pufferfish_linalg::Vector;

use crate::{MarkovChain, MarkovError, Result};

/// Options for [`mixing_time`].
#[derive(Debug, Clone, Copy)]
pub struct MixingTimeOptions {
    /// Total-variation threshold defining the mixing time (classically 1/4).
    pub threshold: f64,
    /// Hard cap on the number of steps simulated before giving up.
    pub max_steps: usize,
}

impl Default for MixingTimeOptions {
    fn default() -> Self {
        MixingTimeOptions {
            threshold: 0.25,
            max_steps: 100_000,
        }
    }
}

/// The (worst-case-start) mixing time
/// `t_mix(δ) = min { t : max_x TV(P^t(x, ·), π) <= δ }`.
///
/// # Errors
/// * [`MarkovError::DoesNotMix`] when the chain is not irreducible/aperiodic
///   or the threshold is not reached within `max_steps`.
pub fn mixing_time(chain: &MarkovChain, options: MixingTimeOptions) -> Result<usize> {
    if !chain.is_irreducible_aperiodic() {
        return Err(MarkovError::DoesNotMix(
            "mixing time requires an irreducible and aperiodic chain".to_string(),
        ));
    }
    let pi = chain.stationary_distribution()?;
    let k = chain.num_states();

    // Row distributions of P^t, evolved in place.
    let mut rows: Vec<Vector> = (0..k)
        .map(|x| {
            let mut e = Vector::zeros(k);
            e[x] = 1.0;
            e
        })
        .collect();

    for t in 0..=options.max_steps {
        let worst_tv = rows
            .iter()
            .map(|row| total_variation(row, &pi))
            .fold(0.0, f64::max);
        if worst_tv <= options.threshold {
            return Ok(t);
        }
        for row in &mut rows {
            *row = chain.step_distribution(row)?;
        }
    }
    Err(MarkovError::DoesNotMix(format!(
        "total variation did not drop below {} within {} steps",
        options.threshold, options.max_steps
    )))
}

fn total_variation(a: &Vector, b: &Vector) -> f64 {
    0.5 * a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_chain_mixes_instantly() {
        let iid = MarkovChain::new(vec![0.3, 0.7], vec![vec![0.3, 0.7], vec![0.3, 0.7]]).unwrap();
        assert_eq!(mixing_time(&iid, MixingTimeOptions::default()).unwrap(), 1);
    }

    #[test]
    fn slow_chain_mixes_slower_than_fast_chain() {
        let slow =
            MarkovChain::new(vec![0.5, 0.5], vec![vec![0.99, 0.01], vec![0.01, 0.99]]).unwrap();
        let fast = MarkovChain::new(vec![0.5, 0.5], vec![vec![0.6, 0.4], vec![0.4, 0.6]]).unwrap();
        let t_slow = mixing_time(&slow, MixingTimeOptions::default()).unwrap();
        let t_fast = mixing_time(&fast, MixingTimeOptions::default()).unwrap();
        assert!(t_slow > t_fast, "{t_slow} vs {t_fast}");
        assert!(t_slow > 10);
        assert!(t_fast <= 5);
    }

    #[test]
    fn tighter_threshold_needs_more_steps() {
        let chain = MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap();
        let loose = mixing_time(
            &chain,
            MixingTimeOptions {
                threshold: 0.25,
                max_steps: 10_000,
            },
        )
        .unwrap();
        let tight = mixing_time(
            &chain,
            MixingTimeOptions {
                threshold: 0.001,
                max_steps: 10_000,
            },
        )
        .unwrap();
        assert!(tight >= loose);
    }

    #[test]
    fn periodic_chain_rejected() {
        let periodic =
            MarkovChain::new(vec![1.0, 0.0], vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(mixing_time(&periodic, MixingTimeOptions::default()).is_err());
    }

    #[test]
    fn step_budget_exhaustion_reported() {
        let slow = MarkovChain::new(
            vec![0.5, 0.5],
            vec![vec![0.9999, 0.0001], vec![0.0001, 0.9999]],
        )
        .unwrap();
        let result = mixing_time(
            &slow,
            MixingTimeOptions {
                threshold: 0.01,
                max_steps: 5,
            },
        );
        assert!(matches!(result, Err(MarkovError::DoesNotMix(_))));
    }
}
