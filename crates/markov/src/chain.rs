//! The core [`MarkovChain`] type.

use pufferfish_linalg::{
    is_probability_vector, is_row_stochastic, solve, Matrix, PowerIterationOptions, Vector,
    PROBABILITY_TOLERANCE,
};

use crate::{MarkovError, Result};

/// A discrete-time, finite-state, time-homogeneous Markov chain.
///
/// A chain is a pair `(q, P)` of an initial distribution `q` over `k` states
/// and a `k x k` row-stochastic transition matrix `P`, exactly the
/// parameterisation used for each `θ ∈ Θ` in Section 4.4 of the paper.
///
/// States are identified with indices `0..k`.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    initial: Vector,
    transition: Matrix,
}

impl MarkovChain {
    /// Builds a chain from an initial distribution and transition matrix given
    /// as plain vectors.
    ///
    /// # Errors
    /// * [`MarkovError::NoStates`] for empty input.
    /// * [`MarkovError::InvalidInitialDistribution`] if `initial` is not a
    ///   probability vector.
    /// * [`MarkovError::InvalidTransitionMatrix`] if `transition` is ragged,
    ///   non-square or not row-stochastic.
    /// * [`MarkovError::DimensionMismatch`] if the two parts disagree on the
    ///   number of states.
    pub fn new(initial: Vec<f64>, transition: Vec<Vec<f64>>) -> Result<Self> {
        if initial.is_empty() || transition.is_empty() {
            return Err(MarkovError::NoStates);
        }
        let matrix = Matrix::from_rows(&transition)
            .map_err(|e| MarkovError::InvalidTransitionMatrix(e.to_string()))?;
        Self::from_parts(Vector::from(initial), matrix)
    }

    /// Builds a chain from already-constructed linalg types.
    ///
    /// # Errors
    /// Same validation as [`MarkovChain::new`].
    pub fn from_parts(initial: Vector, transition: Matrix) -> Result<Self> {
        if initial.is_empty() {
            return Err(MarkovError::NoStates);
        }
        if !transition.is_square() {
            return Err(MarkovError::InvalidTransitionMatrix(format!(
                "transition matrix must be square, got {}x{}",
                transition.rows(),
                transition.cols()
            )));
        }
        if initial.len() != transition.rows() {
            return Err(MarkovError::DimensionMismatch {
                initial: initial.len(),
                transition: transition.rows(),
            });
        }
        if !is_probability_vector(initial.as_slice(), PROBABILITY_TOLERANCE) {
            return Err(MarkovError::InvalidInitialDistribution(format!(
                "entries {:?} are not a probability vector",
                initial.as_slice()
            )));
        }
        if !is_row_stochastic(&transition, PROBABILITY_TOLERANCE) {
            return Err(MarkovError::InvalidTransitionMatrix(
                "rows must be probability vectors".to_string(),
            ));
        }
        Ok(MarkovChain {
            initial,
            transition,
        })
    }

    /// Builds a chain whose initial distribution is the stationary
    /// distribution of `transition`.
    ///
    /// This models data sampled from a process in steady state, such as the
    /// household electricity data of Section 5.3.2, and enables the
    /// `i`-independence optimisation discussed at the end of Section 4.4.1.
    ///
    /// # Errors
    /// Transition-matrix validation errors as in [`MarkovChain::new`], plus
    /// [`MarkovError::DoesNotMix`] if no unique stationary distribution
    /// exists.
    pub fn with_stationary_initial(transition: Vec<Vec<f64>>) -> Result<Self> {
        let k = transition.len();
        if k == 0 {
            return Err(MarkovError::NoStates);
        }
        let uniform = vec![1.0 / k as f64; k];
        let provisional = Self::new(uniform, transition)?;
        let pi = provisional.stationary_distribution()?;
        Self::from_parts(pi, provisional.transition)
    }

    /// Number of states `k`.
    pub fn num_states(&self) -> usize {
        self.initial.len()
    }

    /// The initial distribution `q`.
    pub fn initial(&self) -> &Vector {
        &self.initial
    }

    /// The transition matrix `P`.
    pub fn transition(&self) -> &Matrix {
        &self.transition
    }

    /// `P(X_{t+1} = to | X_t = from)`.
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] when either state index is invalid.
    pub fn transition_prob(&self, from: usize, to: usize) -> Result<f64> {
        self.check_state(from)?;
        self.check_state(to)?;
        Ok(self.transition[(from, to)])
    }

    /// `P(X_1 = state)`.
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] when the state index is invalid.
    pub fn initial_prob(&self, state: usize) -> Result<f64> {
        self.check_state(state)?;
        Ok(self.initial[state])
    }

    /// Pushes a distribution one step through the chain: `d ↦ d^T P`.
    ///
    /// # Errors
    /// [`MarkovError::Linalg`] on dimension mismatch.
    pub fn step_distribution(&self, dist: &Vector) -> Result<Vector> {
        Ok(self.transition.left_mul(dist)?)
    }

    /// The marginal distribution of `X_t` (1-based: `marginal_at(1)` is the
    /// initial distribution), i.e. `q^T P^{t-1}`.
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] when `t == 0`.
    pub fn marginal_at(&self, t: usize) -> Result<Vector> {
        if t == 0 {
            return Err(MarkovError::StateOutOfRange {
                state: 0,
                num_states: self.num_states(),
            });
        }
        let mut dist = self.initial.clone();
        for _ in 1..t {
            dist = self.step_distribution(&dist)?;
        }
        Ok(dist)
    }

    /// The unique stationary distribution `π` with `π^T P = π^T`.
    ///
    /// Solved as a linear system with the normalisation constraint, falling
    /// back to power iteration when the direct solve is degenerate.
    ///
    /// # Errors
    /// [`MarkovError::DoesNotMix`] when no unique stationary distribution can
    /// be determined (reducible or periodic chains).
    pub fn stationary_distribution(&self) -> Result<Vector> {
        let k = self.num_states();
        if k == 1 {
            return Ok(Vector::from(vec![1.0]));
        }
        // Build A = (P^T - I) with the last row replaced by all-ones, b = e_k.
        let pt = self.transition.transpose();
        let mut a = Matrix::zeros(k, k);
        for i in 0..k {
            for j in 0..k {
                a[(i, j)] = pt[(i, j)] - if i == j { 1.0 } else { 0.0 };
            }
        }
        for j in 0..k {
            a[(k - 1, j)] = 1.0;
        }
        let mut b = Vector::zeros(k);
        b[k - 1] = 1.0;

        match solve(&a, &b) {
            Ok(pi) => {
                // Guard against spurious solutions from near-singular systems.
                if pi.as_slice().iter().all(|&x| x >= -1e-8)
                    && (pi.sum() - 1.0).abs() < 1e-6
                    && self.is_stationary(&pi, 1e-6)
                {
                    let clipped: Vec<f64> = pi.as_slice().iter().map(|&x| x.max(0.0)).collect();
                    let total: f64 = clipped.iter().sum();
                    return Ok(clipped.into_iter().map(|x| x / total).collect());
                }
                self.stationary_by_power_iteration()
            }
            Err(_) => self.stationary_by_power_iteration(),
        }
    }

    fn stationary_by_power_iteration(&self) -> Result<Vector> {
        let k = self.num_states();
        let start = Vector::filled(k, 1.0 / k as f64);
        // Smooth the chain slightly to break periodicity: the stationary
        // distribution of (1-d) P + d I equals that of P.
        let damped = {
            let mut m = self.transition.scaled(0.9);
            for i in 0..k {
                m[(i, i)] += 0.1;
            }
            m
        };
        let options = PowerIterationOptions {
            max_iterations: 500_000,
            tolerance: 1e-13,
        };
        let pi = pufferfish_linalg::power_iteration(&damped, &start, options)
            .map_err(|e| MarkovError::DoesNotMix(e.to_string()))?;
        if self.is_stationary(&pi, 1e-6) {
            Ok(pi)
        } else {
            Err(MarkovError::DoesNotMix(
                "power iteration converged to a non-stationary point (chain may be reducible)"
                    .to_string(),
            ))
        }
    }

    /// Returns `true` if `pi` is (approximately) stationary for this chain.
    pub fn is_stationary(&self, pi: &Vector, tol: f64) -> bool {
        match self.transition.left_mul(pi) {
            Ok(next) => next
                .as_slice()
                .iter()
                .zip(pi.as_slice())
                .all(|(a, b)| (a - b).abs() <= tol),
            Err(_) => false,
        }
    }

    /// The minimum stationary probability `π^min` of Equation (6),
    /// for this single chain.
    ///
    /// # Errors
    /// Propagates [`MarkovError::DoesNotMix`] from the stationary computation.
    pub fn pi_min(&self) -> Result<f64> {
        let pi = self.stationary_distribution()?;
        pi.min().ok_or(MarkovError::NoStates)
    }

    /// Checks whether the chain is irreducible and aperiodic (i.e. `P` is
    /// primitive), the condition required by Lemma 4.8.
    ///
    /// Uses Wielandt's bound: `P` is primitive iff `P^(k² − 2k + 2)` has all
    /// entries strictly positive.
    pub fn is_irreducible_aperiodic(&self) -> bool {
        let k = self.num_states();
        if k == 1 {
            return true;
        }
        let exponent = (k * k - 2 * k + 2) as u32;
        match self.transition.pow(exponent) {
            Ok(p) => (0..k).all(|i| p.row(i).iter().all(|&x| x > 0.0)),
            Err(_) => false,
        }
    }

    fn check_state(&self, state: usize) -> Result<()> {
        if state >= self.num_states() {
            Err(MarkovError::StateOutOfRange {
                state,
                num_states: self.num_states(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    /// θ₁ from the running example of Section 4.4.
    pub(crate) fn theta1() -> MarkovChain {
        MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap()
    }

    /// θ₂ from the running example of Section 4.4.
    pub(crate) fn theta2() -> MarkovChain {
        MarkovChain::new(vec![0.9, 0.1], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            MarkovChain::new(vec![], vec![]),
            Err(MarkovError::NoStates)
        ));
        assert!(matches!(
            MarkovChain::new(vec![0.5, 0.6], vec![vec![1.0, 0.0], vec![0.0, 1.0]]),
            Err(MarkovError::InvalidInitialDistribution(_))
        ));
        assert!(matches!(
            MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.2], vec![0.0, 1.0]]),
            Err(MarkovError::InvalidTransitionMatrix(_))
        ));
        assert!(matches!(
            MarkovChain::new(vec![1.0, 0.0], vec![vec![0.5, 0.5]]),
            Err(MarkovError::InvalidTransitionMatrix(_))
        ));
        assert!(matches!(
            MarkovChain::new(vec![1.0], vec![vec![0.5, 0.5], vec![0.5, 0.5]]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            MarkovChain::new(vec![1.0, 0.0], vec![vec![0.5, 0.5], vec![0.5]]),
            Err(MarkovError::InvalidTransitionMatrix(_))
        ));
        let chain = theta1();
        assert_eq!(chain.num_states(), 2);
    }

    #[test]
    fn accessors_and_bounds() {
        let chain = theta1();
        assert!(close(chain.transition_prob(0, 1).unwrap(), 0.1));
        assert!(close(chain.initial_prob(0).unwrap(), 1.0));
        assert!(chain.transition_prob(2, 0).is_err());
        assert!(chain.transition_prob(0, 2).is_err());
        assert!(chain.initial_prob(5).is_err());
        assert_eq!(chain.initial().len(), 2);
        assert_eq!(chain.transition().rows(), 2);
    }

    #[test]
    fn marginals_evolve_correctly() {
        let chain = theta1();
        let m1 = chain.marginal_at(1).unwrap();
        assert!(close(m1[0], 1.0));
        let m2 = chain.marginal_at(2).unwrap();
        assert!(close(m2[0], 0.9));
        assert!(close(m2[1], 0.1));
        let m3 = chain.marginal_at(3).unwrap();
        assert!(close(m3[0], 0.9 * 0.9 + 0.1 * 0.4));
        assert!(chain.marginal_at(0).is_err());
        // Marginals always stay probability vectors.
        let m50 = chain.marginal_at(50).unwrap();
        assert!(close(m50.sum(), 1.0));
    }

    #[test]
    fn stationary_distribution_of_running_example() {
        // Section 4.4: θ₁ has stationary distribution [0.8, 0.2],
        // θ₂ has stationary distribution [0.6, 0.4].
        let pi1 = theta1().stationary_distribution().unwrap();
        assert!(close(pi1[0], 0.8));
        assert!(close(pi1[1], 0.2));
        assert!(close(theta1().pi_min().unwrap(), 0.2));

        let pi2 = theta2().stationary_distribution().unwrap();
        assert!(close(pi2[0], 0.6));
        assert!(close(pi2[1], 0.4));
        assert!(close(theta2().pi_min().unwrap(), 0.4));
    }

    #[test]
    fn stationary_initial_constructor() {
        let chain =
            MarkovChain::with_stationary_initial(vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap();
        assert!(close(chain.initial()[0], 0.8));
        assert!(chain.is_stationary(chain.initial(), 1e-9));
        assert!(MarkovChain::with_stationary_initial(vec![]).is_err());
    }

    #[test]
    fn single_state_chain() {
        let chain = MarkovChain::new(vec![1.0], vec![vec![1.0]]).unwrap();
        assert_eq!(chain.num_states(), 1);
        assert!(close(chain.stationary_distribution().unwrap()[0], 1.0));
        assert!(chain.is_irreducible_aperiodic());
        assert!(close(chain.pi_min().unwrap(), 1.0));
    }

    #[test]
    fn periodic_chain_detected() {
        // Deterministic 2-cycle: irreducible but periodic.
        let chain = MarkovChain::new(vec![1.0, 0.0], vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(!chain.is_irreducible_aperiodic());
        // It still has the unique stationary distribution [0.5, 0.5], found by
        // the damped power iteration fallback or the linear solve.
        let pi = chain.stationary_distribution().unwrap();
        assert!(close(pi[0], 0.5));
    }

    #[test]
    fn reducible_chain_detected() {
        // Two absorbing states: reducible, no unique stationary distribution.
        let chain = MarkovChain::new(vec![0.5, 0.5], vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(!chain.is_irreducible_aperiodic());
    }

    #[test]
    fn aperiodic_irreducible_chain_detected() {
        assert!(theta1().is_irreducible_aperiodic());
        assert!(theta2().is_irreducible_aperiodic());
    }

    #[test]
    fn step_distribution_matches_marginal() {
        let chain = theta2();
        let stepped = chain.step_distribution(chain.initial()).unwrap();
        let m2 = chain.marginal_at(2).unwrap();
        assert!(close(stepped[0], m2[0]));
        assert!(close(stepped[1], m2[1]));
        assert!(chain.step_distribution(&Vector::zeros(3)).is_err());
    }

    prop_compose! {
        /// A random well-behaved binary chain with transition probabilities
        /// bounded away from 0 and 1.
        pub(crate) fn arbitrary_binary_chain()(p0 in 0.05f64..0.95, p1 in 0.05f64..0.95, q0 in 0.0f64..1.0)
            -> MarkovChain {
            MarkovChain::new(
                vec![q0, 1.0 - q0],
                vec![vec![p0, 1.0 - p0], vec![1.0 - p1, p1]],
            )
            .unwrap()
        }
    }

    proptest! {
        /// Stationary distributions are fixed points and probability vectors.
        #[test]
        fn prop_stationary_is_fixed_point(chain in arbitrary_binary_chain()) {
            let pi = chain.stationary_distribution().unwrap();
            prop_assert!(chain.is_stationary(&pi, 1e-7));
            prop_assert!((pi.sum() - 1.0).abs() < 1e-7);
            prop_assert!(pi.as_slice().iter().all(|&x| x >= 0.0));
            prop_assert!(chain.is_irreducible_aperiodic());
        }

        /// Marginals converge towards the stationary distribution.
        #[test]
        fn prop_marginals_converge(chain in arbitrary_binary_chain()) {
            let pi = chain.stationary_distribution().unwrap();
            let late = chain.marginal_at(500).unwrap();
            prop_assert!((late[0] - pi[0]).abs() < 1e-6);
            prop_assert!((late[1] - pi[1]).abs() < 1e-6);
        }
    }
}
