//! Cached transition-matrix powers and chain marginals.
//!
//! The exact max-influence formula (Equation 5 of the paper) evaluates terms
//! of the form `P^b(x, x_{i+b})`, `P^a(x_{i-a}, x)` and `P(X_i = x)` for many
//! different offsets. Computing each power from scratch would make MQMExact
//! quadratic in the quilt width; the paper instead notes (Section 4.4.1) that
//! a dynamic program computing all powers once brings the total cost to
//! `O(T k^3)`. [`TransitionPowers`] is that dynamic program.

use pufferfish_linalg::{Matrix, Vector};

use crate::{MarkovChain, MarkovError, Result};

/// A table of transition-matrix powers `P^0, P^1, …, P^max` together with the
/// chain marginals `P(X_1), …, P(X_T)`.
#[derive(Debug, Clone)]
pub struct TransitionPowers {
    powers: Vec<Matrix>,
    marginals: Vec<Vector>,
}

impl TransitionPowers {
    /// Precomputes powers `P^0..=P^max_power` and the marginals of
    /// `X_1..=X_horizon` for the given chain.
    ///
    /// `max_power` is typically the largest quilt offset that will be probed
    /// (at most `T - 1`), and `horizon` the chain length `T`.
    ///
    /// # Errors
    /// Propagates linear-algebra failures; cannot otherwise fail for a valid
    /// chain.
    pub fn new(chain: &MarkovChain, max_power: usize, horizon: usize) -> Result<Self> {
        let k = chain.num_states();
        let mut powers = Vec::with_capacity(max_power + 1);
        powers.push(Matrix::identity(k));
        for j in 1..=max_power {
            let next = powers[j - 1].matmul(chain.transition())?;
            powers.push(next);
        }

        let mut marginals = Vec::with_capacity(horizon);
        if horizon > 0 {
            marginals.push(chain.initial().clone());
            for t in 1..horizon {
                let next = chain.step_distribution(&marginals[t - 1])?;
                marginals.push(next);
            }
        }
        Ok(TransitionPowers { powers, marginals })
    }

    /// Number of states of the underlying chain.
    pub fn num_states(&self) -> usize {
        self.powers[0].rows()
    }

    /// Largest cached power.
    pub fn max_power(&self) -> usize {
        self.powers.len() - 1
    }

    /// The cached horizon (number of marginals).
    pub fn horizon(&self) -> usize {
        self.marginals.len()
    }

    /// The matrix `P^steps`.
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] if `steps` exceeds the cached maximum
    /// (the error reuses the state/num_states fields for the offending index
    /// and the cache size).
    pub fn power(&self, steps: usize) -> Result<&Matrix> {
        self.powers.get(steps).ok_or(MarkovError::StateOutOfRange {
            state: steps,
            num_states: self.powers.len(),
        })
    }

    /// `P(X_{t+steps} = to | X_t = from)` = `P^steps(from, to)`.
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] for out-of-range indices.
    pub fn step_prob(&self, steps: usize, from: usize, to: usize) -> Result<f64> {
        let k = self.num_states();
        if from >= k || to >= k {
            return Err(MarkovError::StateOutOfRange {
                state: from.max(to),
                num_states: k,
            });
        }
        Ok(self.power(steps)?[(from, to)])
    }

    /// The marginal distribution of `X_t` (1-based).
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] when `t == 0` or `t` exceeds the
    /// cached horizon.
    pub fn marginal(&self, t: usize) -> Result<&Vector> {
        if t == 0 || t > self.marginals.len() {
            return Err(MarkovError::StateOutOfRange {
                state: t,
                num_states: self.marginals.len(),
            });
        }
        Ok(&self.marginals[t - 1])
    }

    /// `P(X_t = state)` (1-based `t`).
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] for invalid `t` or `state`.
    pub fn marginal_prob(&self, t: usize, state: usize) -> Result<f64> {
        let m = self.marginal(t)?;
        if state >= m.len() {
            return Err(MarkovError::StateOutOfRange {
                state,
                num_states: m.len(),
            });
        }
        Ok(m[state])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    fn theta1() -> MarkovChain {
        MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap()
    }

    #[test]
    fn powers_match_direct_computation() {
        let chain = theta1();
        let table = TransitionPowers::new(&chain, 6, 10).unwrap();
        assert_eq!(table.max_power(), 6);
        assert_eq!(table.num_states(), 2);
        assert_eq!(table.horizon(), 10);
        for j in 0..=6 {
            let direct = chain.transition().pow(j as u32).unwrap();
            let cached = table.power(j).unwrap();
            for x in 0..2 {
                for y in 0..2 {
                    assert!(close(direct[(x, y)], cached[(x, y)]));
                }
            }
        }
        assert!(table.power(7).is_err());
    }

    #[test]
    fn marginals_match_chain_marginals() {
        let chain = theta1();
        let table = TransitionPowers::new(&chain, 3, 8).unwrap();
        for t in 1..=8 {
            let direct = chain.marginal_at(t).unwrap();
            let cached = table.marginal(t).unwrap();
            assert!(close(direct[0], cached[0]));
            assert!(close(direct[1], cached[1]));
            assert!(close(
                table.marginal_prob(t, 0).unwrap() + table.marginal_prob(t, 1).unwrap(),
                1.0
            ));
        }
        assert!(table.marginal(0).is_err());
        assert!(table.marginal(9).is_err());
        assert!(table.marginal_prob(1, 2).is_err());
    }

    #[test]
    fn step_probabilities() {
        let chain = theta1();
        let table = TransitionPowers::new(&chain, 2, 2).unwrap();
        assert!(close(table.step_prob(1, 0, 1).unwrap(), 0.1));
        // Two-step 0 -> 0: 0.9*0.9 + 0.1*0.4 = 0.85.
        assert!(close(table.step_prob(2, 0, 0).unwrap(), 0.85));
        assert!(close(table.step_prob(0, 0, 0).unwrap(), 1.0));
        assert!(close(table.step_prob(0, 0, 1).unwrap(), 0.0));
        assert!(table.step_prob(1, 2, 0).is_err());
        assert!(table.step_prob(3, 0, 0).is_err());
    }

    #[test]
    fn zero_horizon_is_allowed() {
        let chain = theta1();
        let table = TransitionPowers::new(&chain, 1, 0).unwrap();
        assert_eq!(table.horizon(), 0);
        assert!(table.marginal(1).is_err());
    }
}
