//! Time reversal and reversibility (Definition 4.7 of the paper).

use pufferfish_linalg::Matrix;

use crate::{MarkovChain, MarkovError, Result};

/// Computes the time-reversal chain `P*` of Definition 4.7:
/// `P*(x, y) π(x) = P(y, x) π(y)`, where `π` is the stationary distribution
/// of the chain.
///
/// The returned chain has the same stationary distribution and its initial
/// distribution is set to `π`.
///
/// # Errors
/// * [`MarkovError::DoesNotMix`] when the stationary distribution cannot be
///   computed or has a zero entry (the reversal is then undefined).
pub fn time_reversal(chain: &MarkovChain) -> Result<MarkovChain> {
    let pi = chain.stationary_distribution()?;
    let k = chain.num_states();
    if pi.as_slice().iter().any(|&x| x <= 0.0) {
        return Err(MarkovError::DoesNotMix(
            "stationary distribution has a zero entry; time reversal is undefined".to_string(),
        ));
    }
    let p = chain.transition();
    let mut reversed = Matrix::zeros(k, k);
    for x in 0..k {
        for y in 0..k {
            reversed[(x, y)] = p[(y, x)] * pi[y] / pi[x];
        }
    }
    MarkovChain::from_parts(pi, reversed)
}

/// Returns `true` when the chain is reversible, i.e. satisfies detailed
/// balance `π(x) P(x, y) = π(y) P(y, x)` for all states (within `tol`).
///
/// Reversible chains admit the tighter MQMApprox bound of Lemma C.1.
///
/// # Errors
/// Propagates stationary-distribution failures.
pub fn is_reversible(chain: &MarkovChain, tol: f64) -> Result<bool> {
    let pi = chain.stationary_distribution()?;
    let p = chain.transition();
    let k = chain.num_states();
    for x in 0..k {
        for y in (x + 1)..k {
            if (pi[x] * p[(x, y)] - pi[y] * p[(y, x)]).abs() > tol {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// The multiplicative reversibilization `P · P*` used by Equation (7): a
/// reversible transition matrix whose spectral gap controls the mixing bound
/// of Lemma 4.8 for non-reversible chains.
///
/// # Errors
/// Propagates the failure modes of [`time_reversal`].
pub fn multiplicative_reversibilization(chain: &MarkovChain) -> Result<Matrix> {
    let reversal = time_reversal(chain)?;
    Ok(chain.transition().matmul(reversal.transition())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pufferfish_linalg::is_row_stochastic;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn theta1() -> MarkovChain {
        MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap()
    }

    fn theta2() -> MarkovChain {
        MarkovChain::new(vec![0.9, 0.1], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap()
    }

    #[test]
    fn running_example_chains_are_self_reversed() {
        // Section 4.4.2 notes that for both θ₁ and θ₂ the time-reversal chain
        // has the same transition matrix as the original chain.
        for chain in [theta1(), theta2()] {
            let reversed = time_reversal(&chain).unwrap();
            let p = chain.transition();
            let p_star = reversed.transition();
            for i in 0..2 {
                for j in 0..2 {
                    assert!(
                        close(p[(i, j)], p_star[(i, j)]),
                        "P and P* differ at ({i},{j})"
                    );
                }
            }
            assert!(is_reversible(&chain, 1e-9).unwrap());
        }
    }

    #[test]
    fn reversal_is_stochastic_and_involutive() {
        // A genuinely non-reversible 3-state chain (cyclic drift).
        let chain = MarkovChain::new(
            vec![1.0, 0.0, 0.0],
            vec![
                vec![0.1, 0.8, 0.1],
                vec![0.1, 0.1, 0.8],
                vec![0.8, 0.1, 0.1],
            ],
        )
        .unwrap();
        assert!(!is_reversible(&chain, 1e-9).unwrap());
        let reversed = time_reversal(&chain).unwrap();
        assert!(is_row_stochastic(reversed.transition(), 1e-9));
        // Reversing twice recovers the original transition matrix.
        let double = time_reversal(&reversed).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(close(
                    double.transition()[(i, j)],
                    chain.transition()[(i, j)]
                ));
            }
        }
        // Reversal preserves the stationary distribution.
        let pi = chain.stationary_distribution().unwrap();
        let pi_rev = reversed.stationary_distribution().unwrap();
        for i in 0..3 {
            assert!(close(pi[i], pi_rev[i]));
        }
    }

    #[test]
    fn reversibilization_is_stochastic_and_reversible() {
        let chain = MarkovChain::new(
            vec![1.0, 0.0, 0.0],
            vec![
                vec![0.1, 0.8, 0.1],
                vec![0.1, 0.1, 0.8],
                vec![0.8, 0.1, 0.1],
            ],
        )
        .unwrap();
        let pp_star = multiplicative_reversibilization(&chain).unwrap();
        assert!(is_row_stochastic(&pp_star, 1e-9));
        // P P* is reversible w.r.t. the stationary distribution of the chain.
        let pi = chain.stationary_distribution().unwrap();
        for x in 0..3 {
            for y in 0..3 {
                assert!(close(pi[x] * pp_star[(x, y)], pi[y] * pp_star[(y, x)]));
            }
        }
    }

    #[test]
    fn reversal_fails_for_reducible_chain() {
        let chain = MarkovChain::new(vec![0.5, 0.5], vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        // Identity chain: every distribution is stationary; the solve finds
        // one of them, but the reversal of the identity chain is the identity,
        // so this either works trivially or fails with DoesNotMix depending on
        // which stationary point is found. Either way it must not panic.
        let _ = time_reversal(&chain);
    }
}
