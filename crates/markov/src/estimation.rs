//! Empirical estimation of Markov chain parameters from observed sequences.
//!
//! The paper's real-data experiments (Section 5.3) build the distribution
//! class Θ from the data itself: "we calculate a single empirical transition
//! matrix Pθ based on the entire group" for the activity data, and use the
//! empirical transition matrix with its stationary distribution as the
//! initial distribution for the electricity data.

use crate::{MarkovChain, MarkovChainClass, MarkovError, Result};

/// Options controlling empirical estimation.
#[derive(Debug, Clone, Copy)]
pub struct EstimationOptions {
    /// Additive (Laplace) smoothing constant added to every transition count.
    ///
    /// A small positive value keeps the estimated chain irreducible and
    /// aperiodic even when some transitions are unobserved, which the
    /// MQMApprox bound requires.
    pub smoothing: f64,
}

impl Default for EstimationOptions {
    fn default() -> Self {
        EstimationOptions { smoothing: 1e-3 }
    }
}

/// Estimates a transition matrix from one or more observed state sequences.
///
/// Each sequence contributes its consecutive pairs; sequences are treated as
/// independent chains (no transition is counted across a sequence boundary),
/// matching the paper's treatment of measurement gaps.
///
/// # Errors
/// * [`MarkovError::NoStates`] when `num_states == 0`.
/// * [`MarkovError::InvalidSequence`] when no transitions are observed at all
///   or a sequence references a state `>= num_states`.
pub fn empirical_transition_matrix(
    sequences: &[Vec<usize>],
    num_states: usize,
    options: EstimationOptions,
) -> Result<Vec<Vec<f64>>> {
    if num_states == 0 {
        return Err(MarkovError::NoStates);
    }
    let mut counts = vec![vec![options.smoothing.max(0.0); num_states]; num_states];
    let mut observed_transitions = 0usize;
    for sequence in sequences {
        for &state in sequence {
            if state >= num_states {
                return Err(MarkovError::InvalidSequence(format!(
                    "state {state} out of range for {num_states} states"
                )));
            }
        }
        for window in sequence.windows(2) {
            counts[window[0]][window[1]] += 1.0;
            observed_transitions += 1;
        }
    }
    if observed_transitions == 0 && options.smoothing <= 0.0 {
        return Err(MarkovError::InvalidSequence(
            "no transitions observed and smoothing is zero".to_string(),
        ));
    }
    let matrix = counts
        .into_iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            if total <= 0.0 {
                // Unreachable rows with zero smoothing: fall back to uniform.
                vec![1.0 / num_states as f64; num_states]
            } else {
                row.into_iter().map(|c| c / total).collect()
            }
        })
        .collect();
    Ok(matrix)
}

/// Estimates the distribution of the first state across sequences, with the
/// same additive smoothing.
///
/// # Errors
/// * [`MarkovError::NoStates`] when `num_states == 0`.
/// * [`MarkovError::InvalidSequence`] when there are no non-empty sequences
///   and smoothing is zero, or a state is out of range.
pub fn empirical_initial_distribution(
    sequences: &[Vec<usize>],
    num_states: usize,
    options: EstimationOptions,
) -> Result<Vec<f64>> {
    if num_states == 0 {
        return Err(MarkovError::NoStates);
    }
    let mut counts = vec![options.smoothing.max(0.0); num_states];
    let mut observed = 0usize;
    for sequence in sequences {
        if let Some(&first) = sequence.first() {
            if first >= num_states {
                return Err(MarkovError::InvalidSequence(format!(
                    "state {first} out of range for {num_states} states"
                )));
            }
            counts[first] += 1.0;
            observed += 1;
        }
    }
    if observed == 0 && options.smoothing <= 0.0 {
        return Err(MarkovError::InvalidSequence(
            "no observations and smoothing is zero".to_string(),
        ));
    }
    let total: f64 = counts.iter().sum();
    Ok(counts.into_iter().map(|c| c / total).collect())
}

/// Convenience: fits a full [`MarkovChain`] (initial distribution and
/// transition matrix) to the observed sequences.
///
/// # Errors
/// Propagates the failures of the two estimation functions and of
/// [`MarkovChain::new`].
pub fn fit_chain(
    sequences: &[Vec<usize>],
    num_states: usize,
    options: EstimationOptions,
) -> Result<MarkovChain> {
    let initial = empirical_initial_distribution(sequences, num_states, options)?;
    let transition = empirical_transition_matrix(sequences, num_states, options)?;
    MarkovChain::new(initial, transition)
}

/// Raw transition counts behind an empirical estimate, kept per source state
/// so interval widths can scale with how often each row was actually
/// observed.
#[derive(Debug, Clone)]
pub struct TransitionCounts {
    counts: Vec<Vec<u64>>,
    row_visits: Vec<u64>,
}

impl TransitionCounts {
    /// Tallies consecutive pairs of the sequences (no counting across
    /// sequence boundaries, matching [`empirical_transition_matrix`]).
    ///
    /// # Errors
    /// * [`MarkovError::NoStates`] when `num_states == 0`.
    /// * [`MarkovError::InvalidSequence`] when a state is out of range.
    pub fn from_sequences(sequences: &[Vec<usize>], num_states: usize) -> Result<Self> {
        if num_states == 0 {
            return Err(MarkovError::NoStates);
        }
        let mut counts = vec![vec![0u64; num_states]; num_states];
        let mut row_visits = vec![0u64; num_states];
        for sequence in sequences {
            for &state in sequence {
                if state >= num_states {
                    return Err(MarkovError::InvalidSequence(format!(
                        "state {state} out of range for {num_states} states"
                    )));
                }
            }
            for window in sequence.windows(2) {
                counts[window[0]][window[1]] += 1;
                row_visits[window[0]] += 1;
            }
        }
        Ok(TransitionCounts { counts, row_visits })
    }

    /// The number of states counted over.
    pub fn num_states(&self) -> usize {
        self.row_visits.len()
    }

    /// Observed `from -> to` transitions.
    pub fn count(&self, from: usize, to: usize) -> u64 {
        self.counts[from][to]
    }

    /// Observed transitions leaving `state` (the row sample size).
    pub fn row_visits(&self, state: usize) -> u64 {
        self.row_visits[state]
    }

    /// The empirical (unsmoothed) transition probability, or `None` for an
    /// unvisited row.
    pub fn empirical(&self, from: usize, to: usize) -> Option<f64> {
        let n = self.row_visits[from];
        (n > 0).then(|| self.counts[from][to] as f64 / n as f64)
    }
}

/// How per-entry confidence intervals around the empirical transition
/// probabilities are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalMethod {
    /// Hoeffding bound: half-width `sqrt(ln(2/α) / 2n)`. Distribution-free
    /// and non-asymptotic — the advertised coverage holds for every sample
    /// size, at the cost of wider intervals.
    Hoeffding,
    /// Wilson score interval at the same per-entry level. Asymptotic but
    /// much tighter for well-visited rows.
    Wilson,
}

/// Options for [`estimate_class`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEstimationOptions {
    /// Smoothing for the point-estimate chain (see [`EstimationOptions`]).
    pub smoothing: f64,
    /// Whole-matrix coverage target in `(0, 1)`; per-entry levels are
    /// Bonferroni-corrected so the *entire* true matrix lies inside the
    /// bounds with at least this probability.
    pub confidence: f64,
    /// Interval construction.
    pub method: IntervalMethod,
}

impl Default for ClassEstimationOptions {
    fn default() -> Self {
        ClassEstimationOptions {
            smoothing: 1e-3,
            confidence: 0.95,
            method: IntervalMethod::Hoeffding,
        }
    }
}

/// A chain fitted from data together with elementwise confidence bounds on
/// its transition matrix, ready to widen into a [`MarkovChainClass`].
#[derive(Debug, Clone)]
pub struct FittedClass {
    chain: MarkovChain,
    lower: Vec<Vec<f64>>,
    upper: Vec<Vec<f64>>,
    row_visits: Vec<u64>,
    confidence: f64,
}

/// Corner chains keep their diagonal this far away from the absorbing
/// boundary so every chain in the widened class stays irreducible and
/// aperiodic (MQMApprox needs a stationary distribution and an eigengap for
/// each class member).
const CORNER_FLOOR: f64 = 1e-3;

impl FittedClass {
    /// The smoothed point-estimate chain.
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Elementwise lower confidence bounds on the transition matrix.
    pub fn lower(&self) -> &[Vec<f64>] {
        &self.lower
    }

    /// Elementwise upper confidence bounds on the transition matrix.
    pub fn upper(&self) -> &[Vec<f64>] {
        &self.upper
    }

    /// Transitions observed out of each state.
    pub fn row_visits(&self) -> &[u64] {
        &self.row_visits
    }

    /// The whole-matrix coverage level the bounds were built for.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The number of states.
    pub fn num_states(&self) -> usize {
        self.row_visits.len()
    }

    /// Whether every entry of `matrix` lies inside the fitted bounds.
    pub fn contains(&self, matrix: &[Vec<f64>]) -> bool {
        matrix.len() == self.lower.len()
            && matrix.iter().enumerate().all(|(i, row)| {
                row.len() == self.lower[i].len()
                    && row.iter().enumerate().all(|(j, &p)| {
                        p >= self.lower[i][j] - 1e-12 && p <= self.upper[i][j] + 1e-12
                    })
            })
    }

    /// Widens the fit into a distribution class: the fitted chain plus
    /// corner chains pushing each state's self-transition to its interval
    /// bounds (per row and all rows at once), closed under all initial
    /// distributions. The corners realise the extreme stickiness the bounds
    /// allow, so worst-case-over-class calibration (π^min, eigengap,
    /// max-influence) pays for the estimation uncertainty; widening can
    /// therefore only increase the calibrated noise scale relative to the
    /// fitted chain alone.
    ///
    /// # Errors
    /// Propagates chain/class construction failures.
    pub fn to_class(&self) -> Result<MarkovChainClass> {
        let k = self.num_states();
        let fitted: Vec<Vec<f64>> = (0..k)
            .map(|i| self.chain.transition().row(i).to_vec())
            .collect();
        let mut chains = vec![self.chain.clone()];
        let corner_row = |i: usize, diag: f64| -> Vec<f64> {
            if k == 1 {
                return vec![1.0];
            }
            let diag = diag.clamp(CORNER_FLOOR, 1.0 - CORNER_FLOOR);
            let off_sum: f64 = (0..k).filter(|&j| j != i).map(|j| fitted[i][j]).sum();
            let mut row = vec![0.0; k];
            row[i] = diag;
            for j in 0..k {
                if j != i {
                    row[j] = if off_sum > 0.0 {
                        (1.0 - diag) * fitted[i][j] / off_sum
                    } else {
                        (1.0 - diag) / (k - 1) as f64
                    };
                }
            }
            row
        };
        let initial = self.chain.initial().as_slice().to_vec();
        let mut push_corner = |rows: Vec<Vec<f64>>| -> Result<()> {
            chains.push(MarkovChain::new(initial.clone(), rows)?);
            Ok(())
        };
        for i in 0..k {
            for bound in [self.upper[i][i], self.lower[i][i]] {
                let mut rows = fitted.clone();
                rows[i] = corner_row(i, bound);
                push_corner(rows)?;
            }
        }
        push_corner((0..k).map(|i| corner_row(i, self.upper[i][i])).collect())?;
        push_corner((0..k).map(|i| corner_row(i, self.lower[i][i])).collect())?;
        MarkovChainClass::with_all_initial_distributions(chains)
    }
}

/// Inverse standard normal CDF (Acklam's rational approximation, relative
/// error below 1.15e-9 on (0, 1)). Only used for Wilson intervals.
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Fits a chain to the sequences and widens the empirical transition matrix
/// into per-entry confidence bounds scaled by each state's visit count.
///
/// The per-entry level is Bonferroni-corrected over all `k²` entries so the
/// whole true matrix is covered with probability at least
/// `options.confidence` (exactly, not asymptotically, under
/// [`IntervalMethod::Hoeffding`]).
///
/// # Errors
/// * [`MarkovError::UnvisitedState`] when some state has no observed
///   outgoing transition — its row sample size is zero, so no finite
///   interval exists. Callers should either extend the log or drop to a
///   hand-specified class for such states.
/// * [`MarkovError::InvalidSequence`] on out-of-range states or when
///   `options.confidence` is outside `(0, 1)`.
/// * [`MarkovError::NoStates`] when `num_states == 0`.
pub fn estimate_class(
    sequences: &[Vec<usize>],
    num_states: usize,
    options: ClassEstimationOptions,
) -> Result<FittedClass> {
    if !(options.confidence > 0.0 && options.confidence < 1.0) {
        return Err(MarkovError::InvalidSequence(format!(
            "confidence must lie in (0, 1), got {}",
            options.confidence
        )));
    }
    let counts = TransitionCounts::from_sequences(sequences, num_states)?;
    if let Some(state) = (0..num_states).find(|&s| counts.row_visits(s) == 0) {
        return Err(MarkovError::UnvisitedState { state });
    }
    let chain = fit_chain(
        sequences,
        num_states,
        EstimationOptions {
            smoothing: options.smoothing,
        },
    )?;
    // Per-entry significance after Bonferroni over the k² simultaneous
    // intervals.
    let alpha = (1.0 - options.confidence) / (num_states * num_states) as f64;
    let mut lower = vec![vec![0.0; num_states]; num_states];
    let mut upper = vec![vec![0.0; num_states]; num_states];
    for i in 0..num_states {
        let n = counts.row_visits(i) as f64;
        for j in 0..num_states {
            let p_hat = counts.empirical(i, j).expect("visited row");
            let (lo, hi) = match options.method {
                IntervalMethod::Hoeffding => {
                    let half = ((2.0 / alpha).ln() / (2.0 * n)).sqrt();
                    (p_hat - half, p_hat + half)
                }
                IntervalMethod::Wilson => {
                    let z = normal_quantile(1.0 - alpha / 2.0);
                    let z2 = z * z;
                    let denom = 1.0 + z2 / n;
                    let centre = (p_hat + z2 / (2.0 * n)) / denom;
                    let half = z * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt() / denom;
                    (centre - half, centre + half)
                }
            };
            lower[i][j] = lo.max(0.0);
            upper[i][j] = hi.min(1.0);
        }
    }
    Ok(FittedClass {
        chain,
        lower,
        upper,
        row_visits: (0..num_states).map(|s| counts.row_visits(s)).collect(),
        confidence: options.confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_trajectory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimation_recovers_generating_chain() {
        let truth = MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let sequences: Vec<Vec<usize>> = (0..20)
            .map(|_| sample_trajectory(&truth, 10_000, &mut rng).unwrap())
            .collect();
        let estimated =
            empirical_transition_matrix(&sequences, 2, EstimationOptions::default()).unwrap();
        assert!((estimated[0][1] - 0.1).abs() < 0.01);
        assert!((estimated[1][0] - 0.4).abs() < 0.02);
        let initial =
            empirical_initial_distribution(&sequences, 2, EstimationOptions::default()).unwrap();
        // All sequences start in state 0 (deterministic initial distribution).
        assert!(initial[0] > 0.99);
    }

    #[test]
    fn smoothing_keeps_unseen_transitions_positive() {
        let sequences = vec![vec![0usize, 0, 0, 0]];
        let estimated =
            empirical_transition_matrix(&sequences, 3, EstimationOptions { smoothing: 0.5 })
                .unwrap();
        for row in &estimated {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p > 0.0));
        }
        let chain = fit_chain(&sequences, 3, EstimationOptions { smoothing: 0.5 }).unwrap();
        assert!(chain.is_irreducible_aperiodic());
    }

    #[test]
    fn zero_smoothing_unreachable_rows_fall_back_to_uniform() {
        let sequences = vec![vec![0usize, 1, 0, 1]];
        let estimated =
            empirical_transition_matrix(&sequences, 3, EstimationOptions { smoothing: 0.0 })
                .unwrap();
        // State 2 was never visited: its row is uniform.
        assert!(estimated[2].iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-12));
        // Observed rows are exact.
        assert!((estimated[0][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            empirical_transition_matrix(&[], 0, EstimationOptions::default()),
            Err(MarkovError::NoStates)
        ));
        assert!(matches!(
            empirical_initial_distribution(&[], 0, EstimationOptions::default()),
            Err(MarkovError::NoStates)
        ));
        assert!(matches!(
            empirical_transition_matrix(&[vec![0, 5]], 2, EstimationOptions::default()),
            Err(MarkovError::InvalidSequence(_))
        ));
        assert!(matches!(
            empirical_initial_distribution(&[vec![9]], 2, EstimationOptions::default()),
            Err(MarkovError::InvalidSequence(_))
        ));
        assert!(matches!(
            empirical_transition_matrix(&[], 2, EstimationOptions { smoothing: 0.0 }),
            Err(MarkovError::InvalidSequence(_))
        ));
        assert!(matches!(
            empirical_initial_distribution(&[], 2, EstimationOptions { smoothing: 0.0 }),
            Err(MarkovError::InvalidSequence(_))
        ));
    }

    #[test]
    fn transition_counts_tally_rows() {
        let sequences = vec![vec![0usize, 1, 1, 0], vec![1usize, 0]];
        let counts = TransitionCounts::from_sequences(&sequences, 2).unwrap();
        assert_eq!(counts.num_states(), 2);
        assert_eq!(counts.count(0, 1), 1);
        assert_eq!(counts.count(1, 1), 1);
        assert_eq!(counts.count(1, 0), 2);
        assert_eq!(counts.row_visits(0), 1);
        assert_eq!(counts.row_visits(1), 3);
        assert!((counts.empirical(1, 0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(TransitionCounts::from_sequences(&sequences, 0).is_err());
        assert!(TransitionCounts::from_sequences(&[vec![0, 7]], 2).is_err());
    }

    #[test]
    fn estimate_class_bounds_cover_the_truth() {
        let truth = MarkovChain::new(vec![0.5, 0.5], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let sequences = vec![sample_trajectory(&truth, 20_000, &mut rng).unwrap()];
        for method in [IntervalMethod::Hoeffding, IntervalMethod::Wilson] {
            let fitted = estimate_class(
                &sequences,
                2,
                ClassEstimationOptions {
                    method,
                    ..ClassEstimationOptions::default()
                },
            )
            .unwrap();
            let rows: Vec<Vec<f64>> = (0..2).map(|i| truth.transition().row(i).to_vec()).collect();
            assert!(fitted.contains(&rows), "{method:?} bounds missed the truth");
            assert!(fitted.confidence() == 0.95);
            assert!(fitted.row_visits().iter().all(|&n| n > 0));
            // Bounds are genuine intervals around the empirical estimate.
            for i in 0..2 {
                for j in 0..2 {
                    assert!(fitted.lower()[i][j] < fitted.upper()[i][j]);
                    assert!(fitted.lower()[i][j] >= 0.0 && fitted.upper()[i][j] <= 1.0);
                }
            }
        }
    }

    #[test]
    fn wilson_intervals_are_tighter_than_hoeffding() {
        let truth = MarkovChain::new(vec![0.5, 0.5], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let sequences = vec![sample_trajectory(&truth, 20_000, &mut rng).unwrap()];
        let hoeffding = estimate_class(&sequences, 2, ClassEstimationOptions::default()).unwrap();
        let wilson = estimate_class(
            &sequences,
            2,
            ClassEstimationOptions {
                method: IntervalMethod::Wilson,
                ..ClassEstimationOptions::default()
            },
        )
        .unwrap();
        // Width for the rare 0->1 transition: Wilson adapts to p(1-p).
        let wh = hoeffding.upper()[0][1] - hoeffding.lower()[0][1];
        let ww = wilson.upper()[0][1] - wilson.lower()[0][1];
        assert!(ww < wh, "Wilson {ww} should beat Hoeffding {wh}");
    }

    #[test]
    fn estimate_class_reports_unvisited_states() {
        let sequences = vec![vec![0usize, 1, 0, 1, 0]];
        let err = estimate_class(&sequences, 3, ClassEstimationOptions::default()).unwrap_err();
        assert_eq!(err, MarkovError::UnvisitedState { state: 2 });
        assert!(estimate_class(
            &sequences,
            2,
            ClassEstimationOptions {
                confidence: 1.5,
                ..ClassEstimationOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn widened_class_contains_fitted_chain_and_valid_corners() {
        let truth = MarkovChain::new(vec![0.5, 0.5], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let sequences = vec![sample_trajectory(&truth, 5_000, &mut rng).unwrap()];
        let fitted = estimate_class(&sequences, 2, ClassEstimationOptions::default()).unwrap();
        let class = fitted.to_class().unwrap();
        assert!(class.allows_all_initial_distributions());
        // fitted + 2 per-row corners x 2 rows + all-hi + all-lo.
        assert_eq!(class.len(), 7);
        for chain in class.chains() {
            assert!(
                chain.is_irreducible_aperiodic(),
                "corner chains must stay usable by MQMApprox"
            );
        }
        assert_eq!(class.chains()[0].transition(), fitted.chain().transition());
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.999) - 3.090232).abs() < 1e-5);
        assert!((normal_quantile(1e-9) + 5.997807).abs() < 1e-4);
    }

    #[test]
    fn sequence_boundaries_do_not_contribute_transitions() {
        // Two sequences ending/starting with different states: the boundary
        // pair (1 -> 0) must not be counted.
        let sequences = vec![vec![0usize, 1], vec![0usize, 1]];
        let estimated =
            empirical_transition_matrix(&sequences, 2, EstimationOptions { smoothing: 0.0 })
                .unwrap();
        assert!((estimated[0][1] - 1.0).abs() < 1e-12);
        // State 1 row had no observations: uniform fallback.
        assert!((estimated[1][0] - 0.5).abs() < 1e-12);
    }
}
