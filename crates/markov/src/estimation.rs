//! Empirical estimation of Markov chain parameters from observed sequences.
//!
//! The paper's real-data experiments (Section 5.3) build the distribution
//! class Θ from the data itself: "we calculate a single empirical transition
//! matrix Pθ based on the entire group" for the activity data, and use the
//! empirical transition matrix with its stationary distribution as the
//! initial distribution for the electricity data.

use crate::{MarkovChain, MarkovError, Result};

/// Options controlling empirical estimation.
#[derive(Debug, Clone, Copy)]
pub struct EstimationOptions {
    /// Additive (Laplace) smoothing constant added to every transition count.
    ///
    /// A small positive value keeps the estimated chain irreducible and
    /// aperiodic even when some transitions are unobserved, which the
    /// MQMApprox bound requires.
    pub smoothing: f64,
}

impl Default for EstimationOptions {
    fn default() -> Self {
        EstimationOptions { smoothing: 1e-3 }
    }
}

/// Estimates a transition matrix from one or more observed state sequences.
///
/// Each sequence contributes its consecutive pairs; sequences are treated as
/// independent chains (no transition is counted across a sequence boundary),
/// matching the paper's treatment of measurement gaps.
///
/// # Errors
/// * [`MarkovError::NoStates`] when `num_states == 0`.
/// * [`MarkovError::InvalidSequence`] when no transitions are observed at all
///   or a sequence references a state `>= num_states`.
pub fn empirical_transition_matrix(
    sequences: &[Vec<usize>],
    num_states: usize,
    options: EstimationOptions,
) -> Result<Vec<Vec<f64>>> {
    if num_states == 0 {
        return Err(MarkovError::NoStates);
    }
    let mut counts = vec![vec![options.smoothing.max(0.0); num_states]; num_states];
    let mut observed_transitions = 0usize;
    for sequence in sequences {
        for &state in sequence {
            if state >= num_states {
                return Err(MarkovError::InvalidSequence(format!(
                    "state {state} out of range for {num_states} states"
                )));
            }
        }
        for window in sequence.windows(2) {
            counts[window[0]][window[1]] += 1.0;
            observed_transitions += 1;
        }
    }
    if observed_transitions == 0 && options.smoothing <= 0.0 {
        return Err(MarkovError::InvalidSequence(
            "no transitions observed and smoothing is zero".to_string(),
        ));
    }
    let matrix = counts
        .into_iter()
        .map(|row| {
            let total: f64 = row.iter().sum();
            if total <= 0.0 {
                // Unreachable rows with zero smoothing: fall back to uniform.
                vec![1.0 / num_states as f64; num_states]
            } else {
                row.into_iter().map(|c| c / total).collect()
            }
        })
        .collect();
    Ok(matrix)
}

/// Estimates the distribution of the first state across sequences, with the
/// same additive smoothing.
///
/// # Errors
/// * [`MarkovError::NoStates`] when `num_states == 0`.
/// * [`MarkovError::InvalidSequence`] when there are no non-empty sequences
///   and smoothing is zero, or a state is out of range.
pub fn empirical_initial_distribution(
    sequences: &[Vec<usize>],
    num_states: usize,
    options: EstimationOptions,
) -> Result<Vec<f64>> {
    if num_states == 0 {
        return Err(MarkovError::NoStates);
    }
    let mut counts = vec![options.smoothing.max(0.0); num_states];
    let mut observed = 0usize;
    for sequence in sequences {
        if let Some(&first) = sequence.first() {
            if first >= num_states {
                return Err(MarkovError::InvalidSequence(format!(
                    "state {first} out of range for {num_states} states"
                )));
            }
            counts[first] += 1.0;
            observed += 1;
        }
    }
    if observed == 0 && options.smoothing <= 0.0 {
        return Err(MarkovError::InvalidSequence(
            "no observations and smoothing is zero".to_string(),
        ));
    }
    let total: f64 = counts.iter().sum();
    Ok(counts.into_iter().map(|c| c / total).collect())
}

/// Convenience: fits a full [`MarkovChain`] (initial distribution and
/// transition matrix) to the observed sequences.
///
/// # Errors
/// Propagates the failures of the two estimation functions and of
/// [`MarkovChain::new`].
pub fn fit_chain(
    sequences: &[Vec<usize>],
    num_states: usize,
    options: EstimationOptions,
) -> Result<MarkovChain> {
    let initial = empirical_initial_distribution(sequences, num_states, options)?;
    let transition = empirical_transition_matrix(sequences, num_states, options)?;
    MarkovChain::new(initial, transition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_trajectory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimation_recovers_generating_chain() {
        let truth = MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let sequences: Vec<Vec<usize>> = (0..20)
            .map(|_| sample_trajectory(&truth, 10_000, &mut rng).unwrap())
            .collect();
        let estimated =
            empirical_transition_matrix(&sequences, 2, EstimationOptions::default()).unwrap();
        assert!((estimated[0][1] - 0.1).abs() < 0.01);
        assert!((estimated[1][0] - 0.4).abs() < 0.02);
        let initial =
            empirical_initial_distribution(&sequences, 2, EstimationOptions::default()).unwrap();
        // All sequences start in state 0 (deterministic initial distribution).
        assert!(initial[0] > 0.99);
    }

    #[test]
    fn smoothing_keeps_unseen_transitions_positive() {
        let sequences = vec![vec![0usize, 0, 0, 0]];
        let estimated =
            empirical_transition_matrix(&sequences, 3, EstimationOptions { smoothing: 0.5 })
                .unwrap();
        for row in &estimated {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p > 0.0));
        }
        let chain = fit_chain(&sequences, 3, EstimationOptions { smoothing: 0.5 }).unwrap();
        assert!(chain.is_irreducible_aperiodic());
    }

    #[test]
    fn zero_smoothing_unreachable_rows_fall_back_to_uniform() {
        let sequences = vec![vec![0usize, 1, 0, 1]];
        let estimated =
            empirical_transition_matrix(&sequences, 3, EstimationOptions { smoothing: 0.0 })
                .unwrap();
        // State 2 was never visited: its row is uniform.
        assert!(estimated[2].iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-12));
        // Observed rows are exact.
        assert!((estimated[0][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            empirical_transition_matrix(&[], 0, EstimationOptions::default()),
            Err(MarkovError::NoStates)
        ));
        assert!(matches!(
            empirical_initial_distribution(&[], 0, EstimationOptions::default()),
            Err(MarkovError::NoStates)
        ));
        assert!(matches!(
            empirical_transition_matrix(&[vec![0, 5]], 2, EstimationOptions::default()),
            Err(MarkovError::InvalidSequence(_))
        ));
        assert!(matches!(
            empirical_initial_distribution(&[vec![9]], 2, EstimationOptions::default()),
            Err(MarkovError::InvalidSequence(_))
        ));
        assert!(matches!(
            empirical_transition_matrix(&[], 2, EstimationOptions { smoothing: 0.0 }),
            Err(MarkovError::InvalidSequence(_))
        ));
        assert!(matches!(
            empirical_initial_distribution(&[], 2, EstimationOptions { smoothing: 0.0 }),
            Err(MarkovError::InvalidSequence(_))
        ));
    }

    #[test]
    fn sequence_boundaries_do_not_contribute_transitions() {
        // Two sequences ending/starting with different states: the boundary
        // pair (1 -> 0) must not be counted.
        let sequences = vec![vec![0usize, 1], vec![0usize, 1]];
        let estimated =
            empirical_transition_matrix(&sequences, 2, EstimationOptions { smoothing: 0.0 })
                .unwrap();
        assert!((estimated[0][1] - 1.0).abs() < 1e-12);
        // State 1 row had no observations: uniform fallback.
        assert!((estimated[1][0] - 0.5).abs() < 1e-12);
    }
}
