//! Error type for the Markov chain substrate.

use std::fmt;

use pufferfish_linalg::LinalgError;

/// Errors produced by Markov chain construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// The chain has no states.
    NoStates,
    /// The initial distribution is not a probability vector.
    InvalidInitialDistribution(String),
    /// The transition matrix is not square or not row-stochastic.
    InvalidTransitionMatrix(String),
    /// The initial distribution and transition matrix disagree on the number
    /// of states.
    DimensionMismatch {
        /// States implied by the initial distribution.
        initial: usize,
        /// States implied by the transition matrix.
        transition: usize,
    },
    /// A state index was out of range.
    StateOutOfRange {
        /// The offending state.
        state: usize,
        /// The number of states in the chain.
        num_states: usize,
    },
    /// An observed sequence referenced a state outside the chain or was too
    /// short for the requested operation.
    InvalidSequence(String),
    /// The requested quantity requires an irreducible/aperiodic chain but the
    /// chain does not mix (for example, the stationary distribution of a
    /// periodic or reducible chain).
    DoesNotMix(String),
    /// A distribution class was empty.
    EmptyClass,
    /// Interval estimation needs at least one observed transition out of
    /// every state, but this state was never visited (as a transition
    /// source) in the supplied sequences.
    UnvisitedState {
        /// The state with zero outgoing observations.
        state: usize,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::NoStates => write!(f, "Markov chain must have at least one state"),
            MarkovError::InvalidInitialDistribution(msg) => {
                write!(f, "invalid initial distribution: {msg}")
            }
            MarkovError::InvalidTransitionMatrix(msg) => {
                write!(f, "invalid transition matrix: {msg}")
            }
            MarkovError::DimensionMismatch {
                initial,
                transition,
            } => write!(
                f,
                "initial distribution has {initial} states but transition matrix has {transition}"
            ),
            MarkovError::StateOutOfRange { state, num_states } => {
                write!(
                    f,
                    "state {state} out of range for a chain with {num_states} states"
                )
            }
            MarkovError::InvalidSequence(msg) => write!(f, "invalid sequence: {msg}"),
            MarkovError::DoesNotMix(msg) => write!(f, "chain does not mix: {msg}"),
            MarkovError::EmptyClass => write!(f, "distribution class is empty"),
            MarkovError::UnvisitedState { state } => write!(
                f,
                "state {state} has no observed outgoing transitions; interval bounds undefined"
            ),
            MarkovError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for MarkovError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarkovError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MarkovError {
    fn from(e: LinalgError) -> Self {
        MarkovError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MarkovError::NoStates.to_string().contains("at least one"));
        assert!(MarkovError::InvalidInitialDistribution("bad".into())
            .to_string()
            .contains("bad"));
        assert!(MarkovError::InvalidTransitionMatrix("bad".into())
            .to_string()
            .contains("bad"));
        assert!(MarkovError::DimensionMismatch {
            initial: 2,
            transition: 3
        }
        .to_string()
        .contains('2'));
        assert!(MarkovError::StateOutOfRange {
            state: 5,
            num_states: 3
        }
        .to_string()
        .contains('5'));
        assert!(MarkovError::InvalidSequence("short".into())
            .to_string()
            .contains("short"));
        assert!(MarkovError::DoesNotMix("periodic".into())
            .to_string()
            .contains("periodic"));
        assert!(MarkovError::EmptyClass.to_string().contains("empty"));
        assert!(MarkovError::UnvisitedState { state: 4 }
            .to_string()
            .contains('4'));
        let e = MarkovError::from(LinalgError::Singular);
        assert!(e.to_string().contains("singular"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(MarkovError::NoStates.source().is_none());
    }
}
