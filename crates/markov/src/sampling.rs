//! Sampling trajectories from Markov chains.

use rand::Rng;

use crate::{MarkovChain, MarkovError, Result};

/// Samples a single trajectory `X_1, …, X_length` from the chain.
///
/// # Errors
/// [`MarkovError::InvalidSequence`] when `length == 0`.
pub fn sample_trajectory<R: Rng + ?Sized>(
    chain: &MarkovChain,
    length: usize,
    rng: &mut R,
) -> Result<Vec<usize>> {
    if length == 0 {
        return Err(MarkovError::InvalidSequence(
            "trajectory length must be at least 1".to_string(),
        ));
    }
    let mut trajectory = Vec::with_capacity(length);
    let first = sample_categorical(chain.initial().as_slice(), rng);
    trajectory.push(first);
    for t in 1..length {
        let prev = trajectory[t - 1];
        let next = sample_categorical(chain.transition().row(prev), rng);
        trajectory.push(next);
    }
    Ok(trajectory)
}

/// Samples `count` independent trajectories of the given length.
///
/// # Errors
/// Same as [`sample_trajectory`].
pub fn sample_trajectories<R: Rng + ?Sized>(
    chain: &MarkovChain,
    count: usize,
    length: usize,
    rng: &mut R,
) -> Result<Vec<Vec<usize>>> {
    (0..count)
        .map(|_| sample_trajectory(chain, length, rng))
        .collect()
}

/// Samples an index from an (approximately normalised) categorical
/// distribution given by `probabilities`.
fn sample_categorical<R: Rng + ?Sized>(probabilities: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (idx, &p) in probabilities.iter().enumerate() {
        acc += p;
        if u < acc {
            return idx;
        }
    }
    probabilities.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn theta1() -> MarkovChain {
        MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap()
    }

    #[test]
    fn trajectory_has_requested_length_and_valid_states() {
        let mut rng = StdRng::seed_from_u64(7);
        let chain = theta1();
        let traj = sample_trajectory(&chain, 250, &mut rng).unwrap();
        assert_eq!(traj.len(), 250);
        assert!(traj.iter().all(|&s| s < 2));
        // Deterministic initial distribution: always starts in state 0.
        assert_eq!(traj[0], 0);
        assert!(sample_trajectory(&chain, 0, &mut rng).is_err());
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let chain = theta1();
        let a = sample_trajectory(&chain, 100, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = sample_trajectory(&chain, 100, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(a, b);
        let c = sample_trajectory(&chain, 100, &mut StdRng::seed_from_u64(43)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn long_run_frequencies_approach_stationary_distribution() {
        let chain = theta1();
        let mut rng = StdRng::seed_from_u64(0);
        let traj = sample_trajectory(&chain, 200_000, &mut rng).unwrap();
        let zeros = traj.iter().filter(|&&s| s == 0).count() as f64 / traj.len() as f64;
        // Stationary distribution is [0.8, 0.2]; a 200k-step trajectory of a
        // fast-mixing chain concentrates tightly around it.
        assert!(
            (zeros - 0.8).abs() < 0.02,
            "frequency of state 0 was {zeros}"
        );
    }

    #[test]
    fn empirical_transitions_match_matrix() {
        let chain = theta1();
        let mut rng = StdRng::seed_from_u64(1);
        let traj = sample_trajectory(&chain, 300_000, &mut rng).unwrap();
        let mut counts = [[0usize; 2]; 2];
        for w in traj.windows(2) {
            counts[w[0]][w[1]] += 1;
        }
        let p01 = counts[0][1] as f64 / (counts[0][0] + counts[0][1]) as f64;
        let p10 = counts[1][0] as f64 / (counts[1][0] + counts[1][1]) as f64;
        assert!((p01 - 0.1).abs() < 0.01, "p01 = {p01}");
        assert!((p10 - 0.4).abs() < 0.02, "p10 = {p10}");
    }

    #[test]
    fn multiple_trajectories() {
        let chain = theta1();
        let mut rng = StdRng::seed_from_u64(3);
        let trajectories = sample_trajectories(&chain, 5, 20, &mut rng).unwrap();
        assert_eq!(trajectories.len(), 5);
        assert!(trajectories.iter().all(|t| t.len() == 20));
        assert!(sample_trajectories(&chain, 2, 0, &mut rng).is_err());
    }

    #[test]
    fn degenerate_distribution_always_picks_last_state_on_rounding() {
        // A distribution that sums to slightly less than 1 still produces a
        // valid index thanks to the fallback.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let idx = sample_categorical(&[0.0, 0.0], &mut rng);
            assert_eq!(idx, 1);
        }
    }
}
