//! Distribution classes Θ over Markov chains.
//!
//! A Pufferfish instantiation specifies a *class* of plausible data
//! distributions rather than a single one. For the Markov chain setting of
//! Section 4.4 each `θ ∈ Θ` is a pair `(q_θ, P_θ)`. Two families matter for
//! the paper's evaluation:
//!
//! * an explicit, finite list of chains (the running example, and the
//!   singleton classes used for the real datasets), and
//! * the interval family of binary chains `Θ = [α, β]`, meaning "all
//!   transition matrices with `p₀, p₁ ∈ [α, β]` and *all* initial
//!   distributions" (Section 5.2). The latter is represented by a finite grid
//!   of transition matrices plus a flag that unlocks the Appendix C.4
//!   optimisation (maximising over the initial distribution in closed form).

use crate::{MarkovChain, MarkovError, Result};

/// Parameters of a two-state chain as used in the synthetic experiments:
/// `p0 = P(X_{t+1}=0 | X_t=0)`, `p1 = P(X_{t+1}=1 | X_t=1)` and
/// `q0 = P(X_1 = 0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryChainParams {
    /// Probability of staying in state 0.
    pub p0: f64,
    /// Probability of staying in state 1.
    pub p1: f64,
    /// Probability that the first state is 0.
    pub q0: f64,
}

impl BinaryChainParams {
    /// Builds the corresponding two-state [`MarkovChain`].
    ///
    /// # Errors
    /// Propagates chain validation errors when any parameter is outside
    /// `[0, 1]`.
    pub fn to_chain(self) -> Result<MarkovChain> {
        MarkovChain::new(
            vec![self.q0, 1.0 - self.q0],
            vec![vec![self.p0, 1.0 - self.p0], vec![1.0 - self.p1, self.p1]],
        )
    }
}

/// A distribution class Θ over Markov chains sharing a state space.
#[derive(Debug, Clone)]
pub struct MarkovChainClass {
    chains: Vec<MarkovChain>,
    all_initial_distributions: bool,
}

impl MarkovChainClass {
    /// A class given by an explicit, finite list of chains (each with its own
    /// initial distribution), e.g. the running example's `Θ = {θ₁, θ₂}`.
    ///
    /// # Errors
    /// * [`MarkovError::EmptyClass`] for an empty list.
    /// * [`MarkovError::DimensionMismatch`] when the chains do not share a
    ///   state space.
    pub fn from_chains(chains: Vec<MarkovChain>) -> Result<Self> {
        Self::validate(&chains)?;
        Ok(MarkovChainClass {
            chains,
            all_initial_distributions: false,
        })
    }

    /// A class of the form `Θ = Δ_k × P`: the given transition matrices with
    /// *all* possible initial distributions (Appendix C.4).
    ///
    /// Each supplied chain's own initial distribution is kept as a
    /// representative (used for sampling and spectral quantities, which do
    /// not depend on the initial distribution).
    ///
    /// # Errors
    /// Same as [`MarkovChainClass::from_chains`].
    pub fn with_all_initial_distributions(chains: Vec<MarkovChain>) -> Result<Self> {
        Self::validate(&chains)?;
        Ok(MarkovChainClass {
            chains,
            all_initial_distributions: true,
        })
    }

    /// The singleton class `{θ}` used for the real-data experiments.
    pub fn singleton(chain: MarkovChain) -> Self {
        MarkovChainClass {
            chains: vec![chain],
            all_initial_distributions: false,
        }
    }

    fn validate(chains: &[MarkovChain]) -> Result<()> {
        if chains.is_empty() {
            return Err(MarkovError::EmptyClass);
        }
        let k = chains[0].num_states();
        for chain in chains {
            if chain.num_states() != k {
                return Err(MarkovError::DimensionMismatch {
                    initial: k,
                    transition: chain.num_states(),
                });
            }
        }
        Ok(())
    }

    /// The chains in the class (representative initial distributions when
    /// [`MarkovChainClass::allows_all_initial_distributions`] is set).
    pub fn chains(&self) -> &[MarkovChain] {
        &self.chains
    }

    /// Alias for [`MarkovChainClass::chains`], used by spectral helpers that
    /// only need per-transition-matrix quantities.
    pub fn representative_chains(&self) -> &[MarkovChain] {
        &self.chains
    }

    /// Whether the class contains every initial distribution for each of its
    /// transition matrices (enables the Appendix C.4 closed-form maximisation
    /// in MQMExact).
    pub fn allows_all_initial_distributions(&self) -> bool {
        self.all_initial_distributions
    }

    /// Number of (representative) chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Always `false`: constructors reject empty classes.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Number of states shared by every chain.
    pub fn num_states(&self) -> usize {
        self.chains[0].num_states()
    }
}

/// Builder for the `Θ = [α, β]` interval family of binary chains used in the
/// synthetic experiments of Section 5.2.
///
/// The class contains all transition matrices with
/// `p₀, p₁ ∈ [alpha, beta]`, discretised on a uniform grid with
/// `grid_points` values per parameter, combined with all initial
/// distributions.
#[derive(Debug, Clone, Copy)]
pub struct IntervalClassBuilder {
    alpha: f64,
    beta: f64,
    grid_points: usize,
}

impl IntervalClassBuilder {
    /// Creates a builder for the interval `[alpha, beta]` with the default
    /// grid resolution (9 points per axis).
    pub fn new(alpha: f64, beta: f64) -> Self {
        IntervalClassBuilder {
            alpha,
            beta,
            grid_points: 9,
        }
    }

    /// Shorthand for the symmetric interval `[alpha, 1 - alpha]` used
    /// throughout Figure 4.
    pub fn symmetric(alpha: f64) -> Self {
        Self::new(alpha, 1.0 - alpha)
    }

    /// Sets the number of grid points per parameter (minimum 1).
    pub fn grid_points(mut self, points: usize) -> Self {
        self.grid_points = points.max(1);
        self
    }

    /// Builds the class.
    ///
    /// # Errors
    /// * [`MarkovError::InvalidTransitionMatrix`] when the interval is not
    ///   contained in `[0, 1]` or `alpha > beta`.
    pub fn build(self) -> Result<MarkovChainClass> {
        if !(0.0..=1.0).contains(&self.alpha)
            || !(0.0..=1.0).contains(&self.beta)
            || self.alpha > self.beta
        {
            return Err(MarkovError::InvalidTransitionMatrix(format!(
                "interval [{}, {}] is not a valid sub-interval of [0, 1]",
                self.alpha, self.beta
            )));
        }
        let grid = self.grid_values();
        let mut chains = Vec::with_capacity(grid.len() * grid.len());
        for &p0 in &grid {
            for &p1 in &grid {
                let params = BinaryChainParams { p0, p1, q0: 0.5 };
                chains.push(params.to_chain()?);
            }
        }
        MarkovChainClass::with_all_initial_distributions(chains)
    }

    /// The grid of parameter values spanning `[alpha, beta]`.
    pub fn grid_values(&self) -> Vec<f64> {
        if self.grid_points == 1 || (self.beta - self.alpha).abs() < 1e-15 {
            return vec![0.5 * (self.alpha + self.beta)];
        }
        (0..self.grid_points)
            .map(|i| {
                self.alpha + (self.beta - self.alpha) * i as f64 / (self.grid_points - 1) as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta1() -> MarkovChain {
        MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap()
    }

    fn theta2() -> MarkovChain {
        MarkovChain::new(vec![0.9, 0.1], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap()
    }

    #[test]
    fn binary_params_round_trip() {
        let params = BinaryChainParams {
            p0: 0.9,
            p1: 0.6,
            q0: 1.0,
        };
        let chain = params.to_chain().unwrap();
        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        assert!(close(chain.transition()[(0, 0)], 0.9));
        assert!(close(chain.transition()[(0, 1)], 0.1));
        assert!(close(chain.transition()[(1, 0)], 0.4));
        assert!(close(chain.transition()[(1, 1)], 0.6));
        assert!(close(chain.initial()[0], 1.0));
        assert!(BinaryChainParams {
            p0: 1.5,
            p1: 0.5,
            q0: 0.5
        }
        .to_chain()
        .is_err());
    }

    #[test]
    fn explicit_class_construction() {
        let class = MarkovChainClass::from_chains(vec![theta1(), theta2()]).unwrap();
        assert_eq!(class.len(), 2);
        assert!(!class.is_empty());
        assert_eq!(class.num_states(), 2);
        assert!(!class.allows_all_initial_distributions());
        assert_eq!(class.chains().len(), class.representative_chains().len());

        assert!(matches!(
            MarkovChainClass::from_chains(vec![]),
            Err(MarkovError::EmptyClass)
        ));

        let three_state = MarkovChain::new(
            vec![1.0, 0.0, 0.0],
            vec![
                vec![0.5, 0.25, 0.25],
                vec![0.25, 0.5, 0.25],
                vec![0.25, 0.25, 0.5],
            ],
        )
        .unwrap();
        assert!(matches!(
            MarkovChainClass::from_chains(vec![theta1(), three_state]),
            Err(MarkovError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn singleton_and_all_initial_variants() {
        let class = MarkovChainClass::singleton(theta1());
        assert_eq!(class.len(), 1);
        assert!(!class.allows_all_initial_distributions());

        let class =
            MarkovChainClass::with_all_initial_distributions(vec![theta1(), theta2()]).unwrap();
        assert!(class.allows_all_initial_distributions());
        assert!(MarkovChainClass::with_all_initial_distributions(vec![]).is_err());
    }

    #[test]
    fn interval_builder_produces_grid() {
        let class = IntervalClassBuilder::symmetric(0.3)
            .grid_points(5)
            .build()
            .unwrap();
        assert_eq!(class.len(), 25);
        assert!(class.allows_all_initial_distributions());
        // All transition entries lie in [0.3, 0.7].
        for chain in class.chains() {
            for i in 0..2 {
                for j in 0..2 {
                    let p = chain.transition()[(i, j)];
                    assert!((0.3 - 1e-12..=0.7 + 1e-12).contains(&p));
                }
            }
        }
    }

    #[test]
    fn interval_builder_edge_cases() {
        // Degenerate interval: a single grid value.
        let class = IntervalClassBuilder::new(0.4, 0.4)
            .grid_points(7)
            .build()
            .unwrap();
        assert_eq!(class.len(), 1);
        let single = IntervalClassBuilder::new(0.2, 0.8).grid_points(1);
        assert_eq!(single.grid_values(), vec![0.5]);
        assert_eq!(single.build().unwrap().len(), 1);

        assert!(IntervalClassBuilder::new(0.8, 0.2).build().is_err());
        assert!(IntervalClassBuilder::new(-0.1, 0.5).build().is_err());
        assert!(IntervalClassBuilder::new(0.5, 1.2).build().is_err());
    }

    #[test]
    fn grid_values_are_evenly_spaced_and_cover_endpoints() {
        let builder = IntervalClassBuilder::new(0.1, 0.9).grid_points(9);
        let grid = builder.grid_values();
        assert_eq!(grid.len(), 9);
        assert!((grid[0] - 0.1).abs() < 1e-12);
        assert!((grid[8] - 0.9).abs() < 1e-12);
        assert!((grid[1] - grid[0] - 0.1).abs() < 1e-12);
    }
}
