//! Spectral quantities of Markov chains and chain classes: the eigengap
//! `g_Θ` (Equations 7 and 14 of the paper) and the minimum stationary
//! probability `π^min_Θ` (Equation 6).
//!
//! These two scalars are all MQMApprox (Algorithm 4) needs from a
//! distribution class, which is what makes it so much cheaper than MQMExact.

use pufferfish_linalg::{symmetric_eigenvalues, Matrix};
use pufferfish_parallel::{try_par_map, Parallelism};

use crate::{multiplicative_reversibilization, MarkovChain, MarkovChainClass, MarkovError, Result};

/// Eigenvalues within this distance of 1 are treated as the unit eigenvalue
/// when computing the gap.
const UNIT_EIGENVALUE_TOLERANCE: f64 = 1e-9;

/// Selects which of the paper's two eigengap definitions to use.
///
/// Equation (14) refines Equation (7): for *reversible* chains the gap can be
/// computed from the spectrum of `P` itself (and doubled), which is cheaper
/// and gives a tighter MQMApprox bound (Lemma C.1); for general chains the
/// spectrum of the multiplicative reversibilization `P·P*` is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReversibilityMode {
    /// Detect reversibility per chain and use the tighter formula when it
    /// applies.
    #[default]
    Auto,
    /// Always use the reversible formula `2 · min { 1 − |λ| : Pθ x = λx }`.
    ///
    /// Only valid when every chain in the class is reversible.
    Reversible,
    /// Always use the general formula on `P·P*` (Equation 7). This is what
    /// the running example of Section 4.4.2 uses.
    General,
}

/// The eigengap of a single chain under the chosen mode.
///
/// # Errors
/// * [`MarkovError::DoesNotMix`] if the chain is not irreducible/aperiodic
///   (its gap would be 0 and MQMApprox does not apply), or if the requested
///   reversible mode is used on a non-reversible chain.
/// * Propagated linear-algebra errors.
pub fn eigengap(chain: &MarkovChain, mode: ReversibilityMode) -> Result<f64> {
    if !chain.is_irreducible_aperiodic() {
        return Err(MarkovError::DoesNotMix(
            "eigengap requires an irreducible and aperiodic chain".to_string(),
        ));
    }
    let reversible = crate::is_reversible(chain, 1e-9)?;
    let use_reversible = match mode {
        ReversibilityMode::Auto => reversible,
        ReversibilityMode::Reversible => {
            if !reversible {
                return Err(MarkovError::DoesNotMix(
                    "reversible eigengap requested for a non-reversible chain".to_string(),
                ));
            }
            true
        }
        ReversibilityMode::General => false,
    };

    let pi = chain.stationary_distribution()?;
    if use_reversible {
        let eigs = symmetrized_spectrum(chain.transition(), pi.as_slice())?;
        Ok(2.0 * smallest_gap(&eigs))
    } else {
        let pp_star = multiplicative_reversibilization(chain)?;
        let eigs = symmetrized_spectrum(&pp_star, pi.as_slice())?;
        Ok(smallest_gap(&eigs))
    }
}

/// Eigenvalues of a transition matrix that is reversible with respect to
/// `pi`, obtained from the symmetric similarity transform
/// `D^{1/2} P D^{-1/2}`.
fn symmetrized_spectrum(p: &Matrix, pi: &[f64]) -> Result<Vec<f64>> {
    let k = p.rows();
    let mut sym = Matrix::zeros(k, k);
    for x in 0..k {
        for y in 0..k {
            if pi[x] <= 0.0 || pi[y] <= 0.0 {
                return Err(MarkovError::DoesNotMix(
                    "stationary distribution has a zero entry".to_string(),
                ));
            }
            sym[(x, y)] = (pi[x] / pi[y]).sqrt() * p[(x, y)];
        }
    }
    Ok(symmetric_eigenvalues(&sym)?)
}

/// `min { 1 - |λ| : |λ| < 1 }` over the provided spectrum. If every
/// eigenvalue has modulus 1 (impossible for primitive chains, but possible
/// for degenerate inputs), returns 1.0: a single-state or i.i.d. chain mixes
/// instantly.
fn smallest_gap(eigenvalues: &[f64]) -> f64 {
    let gap = eigenvalues
        .iter()
        .map(|l| l.abs())
        .filter(|l| *l < 1.0 - UNIT_EIGENVALUE_TOLERANCE)
        .map(|l| 1.0 - l)
        .fold(f64::INFINITY, f64::min);
    if gap.is_finite() {
        gap.clamp(0.0, 1.0)
    } else {
        1.0
    }
}

/// The class-level eigengap `g_Θ = min_θ g_θ` (Equations 7/14).
///
/// # Errors
/// [`MarkovError::EmptyClass`] for an empty class, plus per-chain failures.
pub fn class_eigengap(class: &MarkovChainClass, mode: ReversibilityMode) -> Result<f64> {
    class_eigengap_with(class, mode, Parallelism::default())
}

/// [`class_eigengap`] with an explicit parallelism policy for the per-chain
/// spectral scan — the hot loop for interval-grid classes, whose `g²` chains
/// each require an eigendecomposition.
///
/// Per-chain gaps are computed independently and reduced by `min` in chain
/// order, so every policy yields bitwise-identical results (and the same
/// first error, if any).
///
/// # Errors
/// Same as [`class_eigengap`].
pub fn class_eigengap_with(
    class: &MarkovChainClass,
    mode: ReversibilityMode,
    parallelism: Parallelism,
) -> Result<f64> {
    let chains = class.representative_chains();
    if chains.is_empty() {
        return Err(MarkovError::EmptyClass);
    }
    let gaps = try_par_map(parallelism, chains, |chain| eigengap(chain, mode))?;
    Ok(gaps.into_iter().fold(f64::INFINITY, f64::min))
}

/// The class-level minimum stationary probability `π^min_Θ` (Equation 6).
///
/// # Errors
/// [`MarkovError::EmptyClass`] for an empty class, plus per-chain failures.
pub fn class_pi_min(class: &MarkovChainClass) -> Result<f64> {
    class_pi_min_with(class, Parallelism::default())
}

/// [`class_pi_min`] with an explicit parallelism policy (see
/// [`class_eigengap_with`] for the determinism contract).
///
/// # Errors
/// Same as [`class_pi_min`].
pub fn class_pi_min_with(class: &MarkovChainClass, parallelism: Parallelism) -> Result<f64> {
    let chains = class.representative_chains();
    if chains.is_empty() {
        return Err(MarkovError::EmptyClass);
    }
    let pis = try_par_map(parallelism, chains, |chain| chain.pi_min())?;
    Ok(pis.into_iter().fold(f64::INFINITY, f64::min))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-8
    }

    fn theta1() -> MarkovChain {
        MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap()
    }

    fn theta2() -> MarkovChain {
        MarkovChain::new(vec![0.9, 0.1], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap()
    }

    #[test]
    fn running_example_eigengap_is_075_under_general_mode() {
        // Section 4.4.2: "the eigengap for both Pθ1 P*θ1 and Pθ2 P*θ2 is 0.75,
        // and thus gΘ = 0.75."
        assert!(close(
            eigengap(&theta1(), ReversibilityMode::General).unwrap(),
            0.75
        ));
        assert!(close(
            eigengap(&theta2(), ReversibilityMode::General).unwrap(),
            0.75
        ));
        let class = MarkovChainClass::from_chains(vec![theta1(), theta2()]).unwrap();
        assert!(close(
            class_eigengap(&class, ReversibilityMode::General).unwrap(),
            0.75
        ));
    }

    #[test]
    fn running_example_pi_min() {
        // Section 4.4.2: π^min_{θ1} = 0.2, π^min_{θ2} = 0.4, π^min_Θ = 0.2.
        let class = MarkovChainClass::from_chains(vec![theta1(), theta2()]).unwrap();
        assert!(close(class_pi_min(&class).unwrap(), 0.2));
    }

    #[test]
    fn reversible_mode_doubles_the_p_gap() {
        // θ₁ has eigenvalues {1, 0.5}; the reversible gap is 2·(1−0.5) = 1.0.
        assert!(close(
            eigengap(&theta1(), ReversibilityMode::Reversible).unwrap(),
            1.0
        ));
        // Auto mode detects reversibility and uses the same formula.
        assert!(close(
            eigengap(&theta1(), ReversibilityMode::Auto).unwrap(),
            1.0
        ));
    }

    #[test]
    fn reversible_mode_rejects_non_reversible_chain() {
        let cyclic = MarkovChain::new(
            vec![1.0, 0.0, 0.0],
            vec![
                vec![0.1, 0.8, 0.1],
                vec![0.1, 0.1, 0.8],
                vec![0.8, 0.1, 0.1],
            ],
        )
        .unwrap();
        assert!(eigengap(&cyclic, ReversibilityMode::Reversible).is_err());
        // Auto falls back to the general formula and succeeds.
        let g = eigengap(&cyclic, ReversibilityMode::Auto).unwrap();
        assert!(g > 0.0 && g <= 1.0);
    }

    #[test]
    fn periodic_chain_rejected() {
        let periodic =
            MarkovChain::new(vec![1.0, 0.0], vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(eigengap(&periodic, ReversibilityMode::Auto).is_err());
    }

    #[test]
    fn iid_chain_has_maximal_gap() {
        // Rows identical => next state independent of current => mixes in one
        // step => P P* has the single non-unit eigenvalue 0 => gap 1.
        let iid = MarkovChain::new(vec![0.3, 0.7], vec![vec![0.3, 0.7], vec![0.3, 0.7]]).unwrap();
        assert!(close(
            eigengap(&iid, ReversibilityMode::General).unwrap(),
            1.0
        ));
    }

    #[test]
    fn slow_chain_has_small_gap() {
        let slow =
            MarkovChain::new(vec![0.5, 0.5], vec![vec![0.99, 0.01], vec![0.01, 0.99]]).unwrap();
        let fast = MarkovChain::new(vec![0.5, 0.5], vec![vec![0.6, 0.4], vec![0.4, 0.6]]).unwrap();
        let g_slow = eigengap(&slow, ReversibilityMode::Auto).unwrap();
        let g_fast = eigengap(&fast, ReversibilityMode::Auto).unwrap();
        assert!(g_slow < g_fast);
        assert!(g_slow > 0.0);
    }

    #[test]
    fn class_helpers_reject_empty_class() {
        // `from_chains` itself rejects empty input, which is the only way to
        // construct an empty explicit class, so exercise that path.
        assert!(MarkovChainClass::from_chains(vec![]).is_err());
    }
}
