//! The append-only, checksummed ε-spend audit ledger.
//!
//! Privacy accounting is only trustworthy if it is *auditable*: the
//! [`EpsilonLedger`] records every budget event — charge, refund-on-failure,
//! refusal, recalibration swap — as an append-only binary log, and
//! [`EpsilonLedger::replay`] reconstructs per-user spend from the bytes
//! alone. A replayed ledger must agree **bitwise** with the live accountant
//! (the service crate's audit module enforces this), turning "trust the
//! atomics" into "verify the log".
//!
//! ## Format
//!
//! The codec follows the calibration-snapshot style: little-endian
//! throughout, explicit magic and version, FNV-1a integrity checks — but
//! checksummed *per record*, so corruption is localised to the event it hit
//! and a torn tail write cannot invalidate the whole log:
//!
//! ```text
//! file   := magic version record*
//! magic  := "PFEPSLOG"                    (8 bytes)
//! version:= u32                           (currently 1)
//! record := u32 body_len | body | u64 checksum(body)   (word-folded FNV-1a)
//! body   := u64 index                     (monotonic from 0)
//!         | u8  kind                      (LedgerEventKind discriminant)
//!         | u64 seq                       (request seed / wire seq)
//!         | u64 query_sig                 (FNV-1a of the query name)
//!         | f64 epsilon                   (bit-exact)
//!         | u32 user_len  | user bytes    (UTF-8, "tenant#user")
//!         | u32 family_len| family bytes  (mechanism family)
//! ```
//!
//! Every decode failure is a typed [`LedgerError`] — a truncated or
//! corrupted ledger never yields a silent partial replay.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// The eight magic bytes an ε-ledger starts with.
pub const LEDGER_MAGIC: [u8; 8] = *b"PFEPSLOG";
/// The ledger format version this crate reads and writes.
pub const LEDGER_VERSION: u32 = 1;

/// 64-bit FNV-1a — the same integrity hash the calibration snapshot codec
/// uses: not cryptographic, exactly right for catching truncation and
/// bit-rot.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// FNV-1a signature of a query name — the `query_sig` field budget hooks
/// record, so an auditor can group charges by query without logging the
/// query itself.
#[must_use]
pub fn query_signature(name: &str) -> u64 {
    fnv1a(name.as_bytes())
}

/// The per-record integrity checksum: FNV-1a folded over little-endian
/// 64-bit words (byte-wise over the < 8-byte tail). Record appends sit on
/// the warm admission path, and folding eight bytes per multiply keeps the
/// checksum a rounding error there while still catching truncation and
/// bit-rot; byte-wise FNV-1a's dependent multiply per *byte* was the single
/// most expensive instruction chain in the append.
fn record_checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    for &byte in chunks.remainder() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// What kind of budget event a ledger record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LedgerEventKind {
    /// An admitted spend: the accountant recorded `epsilon` for `user`.
    Charge = 0,
    /// A rollback of one earlier charge (queue refusal after admission, or
    /// execution failure): the accountant removed one spend of exactly
    /// `epsilon`.
    Refund = 1,
    /// A refused spend: the composed guarantee would have exceeded the
    /// target, the accountant was left untouched.
    Refusal = 2,
    /// A canary recalibration installed a new engine (`family` names the new
    /// engine's mechanism family; `epsilon` is 0).
    Recalibration = 3,
}

impl LedgerEventKind {
    fn from_u8(value: u8) -> Option<Self> {
        Some(match value {
            0 => LedgerEventKind::Charge,
            1 => LedgerEventKind::Refund,
            2 => LedgerEventKind::Refusal,
            3 => LedgerEventKind::Recalibration,
            _ => return None,
        })
    }
}

impl std::fmt::Display for LedgerEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LedgerEventKind::Charge => "charge",
            LedgerEventKind::Refund => "refund",
            LedgerEventKind::Refusal => "refusal",
            LedgerEventKind::Recalibration => "recalibration",
        })
    }
}

/// One decoded ledger record.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEvent {
    /// Monotonic event index, 0-based — replay rejects gaps and splices.
    pub index: u64,
    /// The event kind.
    pub kind: LedgerEventKind,
    /// The budget identity (`tenant#user` over the wire).
    pub user: String,
    /// FNV-1a signature of the query name ([`query_signature`]).
    pub query_sig: u64,
    /// The mechanism family serving (or, for a recalibration, replacing)
    /// the engine.
    pub family: String,
    /// The event's ε, bit-exact (0 for recalibrations).
    pub epsilon: f64,
    /// The request's seed / wire sequence number.
    pub seq: u64,
}

/// Typed ledger decode failures. Mirrors the snapshot codec's taxonomy:
/// every malformed input maps to exactly one variant, never a panic, never
/// a silently shortened replay.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The bytes did not start with [`LEDGER_MAGIC`].
    BadMagic {
        /// The bytes found instead (what was available of them).
        found: Vec<u8>,
    },
    /// The header declared a version this crate does not read.
    UnsupportedVersion {
        /// The version found.
        found: u32,
    },
    /// The bytes ended mid-header or mid-record.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// A record's stored checksum does not match its body.
    ChecksumMismatch {
        /// 0-based position of the corrupt record in the file.
        record: u64,
        /// The checksum stored on disk.
        stored: u64,
        /// The checksum computed over the body.
        computed: u64,
    },
    /// A record's body is internally inconsistent (string length past the
    /// body end, unknown event kind, non-monotonic index, a refund with no
    /// matching charge, …).
    Malformed(String),
    /// Filesystem failure while writing the ledger out.
    Io(String),
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::BadMagic { found } => {
                write!(f, "bad ledger magic {found:02x?} (expected \"PFEPSLOG\")")
            }
            LedgerError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported ledger version {found} (reading {LEDGER_VERSION})"
                )
            }
            LedgerError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated ledger: needed {needed} bytes, had {available}"
                )
            }
            LedgerError::ChecksumMismatch {
                record,
                stored,
                computed,
            } => write!(
                f,
                "ledger record {record} checksum mismatch: stored {stored:#018x}, \
                 computed {computed:#018x}"
            ),
            LedgerError::Malformed(msg) => write!(f, "malformed ledger: {msg}"),
            LedgerError::Io(msg) => write!(f, "ledger i/o failure: {msg}"),
        }
    }
}

impl std::error::Error for LedgerError {}

struct LedgerInner {
    bytes: Vec<u8>,
    next_index: u64,
}

/// The append-only ε-spend audit log.
///
/// Appends serialise on one mutex — by design, the accountant calls
/// [`EpsilonLedger::record`] *while holding its own user-table lock*, so the
/// ledger's event order for any user is exactly the order the accountant
/// applied the operations in. That ordering is what makes replay agree with
/// the live accountant **bitwise** (floating-point summation is
/// order-sensitive; same operations in the same order give the same bits).
///
/// # Example
///
/// ```
/// use pufferfish_telemetry::{
///     query_signature, EpsilonLedger, LedgerEventKind,
/// };
///
/// let ledger = EpsilonLedger::new();
/// let sig = query_signature("state-frequency");
/// ledger.record(LedgerEventKind::Charge, "demo#1", sig, "mqm-approx", 0.5, 7);
/// ledger.record(LedgerEventKind::Refusal, "demo#1", sig, "mqm-approx", 0.9, 8);
/// let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
/// assert_eq!(events.len(), 2);
/// assert_eq!(events[0].kind, LedgerEventKind::Charge);
/// assert_eq!(events[0].epsilon.to_bits(), 0.5f64.to_bits());
/// let spend = pufferfish_telemetry::replay_spend(&events).unwrap();
/// assert_eq!(spend["demo#1"], vec![0.5]);
/// ```
pub struct EpsilonLedger {
    inner: Mutex<LedgerInner>,
}

impl Default for EpsilonLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl EpsilonLedger {
    /// Creates an empty ledger (header already encoded).
    #[must_use]
    pub fn new() -> Self {
        let mut bytes = Vec::with_capacity(4096);
        bytes.extend_from_slice(&LEDGER_MAGIC);
        bytes.extend_from_slice(&LEDGER_VERSION.to_le_bytes());
        EpsilonLedger {
            inner: Mutex::new(LedgerInner {
                bytes,
                next_index: 0,
            }),
        }
    }

    /// Appends one event, returning its monotonic index.
    pub fn record(
        &self,
        kind: LedgerEventKind,
        user: &str,
        query_sig: u64,
        family: &str,
        epsilon: f64,
        seq: u64,
    ) -> u64 {
        let mut inner = self.inner.lock().expect("epsilon ledger poisoned");
        let index = inner.next_index;
        inner.next_index += 1;

        // Encode the body straight into the log — no per-event scratch
        // allocation; this sits on the warm serving path, inside the
        // accountant's lock. The checksum is computed over the same
        // in-place slice the length prefix frames.
        let body_len = 41 + user.len() + family.len();
        // The length prefix and every fixed-width field are staged in one
        // stack buffer so the log grows by a few bulk copies rather than a
        // capacity-checked append per field.
        let mut head = [0u8; 41];
        head[0..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        head[4..12].copy_from_slice(&index.to_le_bytes());
        head[12] = kind as u8;
        head[13..21].copy_from_slice(&seq.to_le_bytes());
        head[21..29].copy_from_slice(&query_sig.to_le_bytes());
        head[29..37].copy_from_slice(&epsilon.to_le_bytes());
        head[37..41].copy_from_slice(&(user.len() as u32).to_le_bytes());
        let bytes = &mut inner.bytes;
        bytes.reserve(4 + body_len + 8);
        let body_start = bytes.len() + 4;
        bytes.extend_from_slice(&head);
        bytes.extend_from_slice(user.as_bytes());
        bytes.extend_from_slice(&(family.len() as u32).to_le_bytes());
        bytes.extend_from_slice(family.as_bytes());
        debug_assert_eq!(bytes.len() - body_start, body_len);

        let checksum = record_checksum(&bytes[body_start..]);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        index
    }

    /// Number of events appended so far.
    pub fn events(&self) -> u64 {
        self.inner
            .lock()
            .expect("epsilon ledger poisoned")
            .next_index
    }

    /// The complete encoded ledger (header plus every record) at this
    /// moment.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.inner
            .lock()
            .expect("epsilon ledger poisoned")
            .bytes
            .clone()
    }

    /// Writes the encoded ledger to `path`, returning the bytes written.
    ///
    /// # Errors
    /// [`LedgerError::Io`] on filesystem failure.
    pub fn write_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<u64, LedgerError> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        std::fs::write(path, &bytes)
            .map_err(|e| LedgerError::Io(format!("writing {}: {e}", path.display())))?;
        Ok(bytes.len() as u64)
    }

    /// Decodes every event out of an encoded ledger.
    ///
    /// Validation is exhaustive: magic, version, per-record length against
    /// the remaining bytes (checked *before* slicing), per-record word-folded
    /// FNV-1a checksum, body string lengths, known event kinds, and 0-based
    /// monotonic indices (rejecting spliced or reordered records).
    ///
    /// # Errors
    /// A [`LedgerError`] naming the first problem found — never a silently
    /// shortened event list.
    pub fn replay(bytes: &[u8]) -> Result<Vec<LedgerEvent>, LedgerError> {
        let header_len = LEDGER_MAGIC.len() + 4;
        if bytes.len() < header_len {
            if bytes.len() >= LEDGER_MAGIC.len() && bytes[..LEDGER_MAGIC.len()] != LEDGER_MAGIC {
                return Err(LedgerError::BadMagic {
                    found: bytes[..LEDGER_MAGIC.len()].to_vec(),
                });
            }
            return Err(LedgerError::Truncated {
                needed: header_len,
                available: bytes.len(),
            });
        }
        if bytes[..LEDGER_MAGIC.len()] != LEDGER_MAGIC {
            return Err(LedgerError::BadMagic {
                found: bytes[..LEDGER_MAGIC.len()].to_vec(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
        if version != LEDGER_VERSION {
            return Err(LedgerError::UnsupportedVersion { found: version });
        }

        let mut events = Vec::new();
        let mut pos = header_len;
        let mut record = 0u64;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < 4 {
                return Err(LedgerError::Truncated {
                    needed: pos + 4,
                    available: bytes.len(),
                });
            }
            let body_len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 length bytes"))
                    as usize;
            let record_end = pos + 4 + body_len + 8;
            if record_end > bytes.len() {
                return Err(LedgerError::Truncated {
                    needed: record_end,
                    available: bytes.len(),
                });
            }
            let body = &bytes[pos + 4..pos + 4 + body_len];
            let stored = u64::from_le_bytes(
                bytes[pos + 4 + body_len..record_end]
                    .try_into()
                    .expect("8 checksum bytes"),
            );
            let computed = record_checksum(body);
            if stored != computed {
                return Err(LedgerError::ChecksumMismatch {
                    record,
                    stored,
                    computed,
                });
            }
            let event = decode_body(body, record)?;
            if event.index != record {
                return Err(LedgerError::Malformed(format!(
                    "record {record} carries index {} — spliced or reordered ledger",
                    event.index
                )));
            }
            events.push(event);
            pos = record_end;
            record += 1;
        }
        Ok(events)
    }
}

impl std::fmt::Debug for EpsilonLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpsilonLedger")
            .field("events", &self.events())
            .finish()
    }
}

/// Decodes one record body (already checksum-verified).
fn decode_body(body: &[u8], record: u64) -> Result<LedgerEvent, LedgerError> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], LedgerError> {
        if body.len() - pos < n {
            return Err(LedgerError::Malformed(format!(
                "record {record} body ends early: needed {n} bytes at offset {pos}, \
                 had {}",
                body.len() - pos
            )));
        }
        let slice = &body[pos..pos + n];
        pos += n;
        Ok(slice)
    };

    let index = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let raw_kind = take(1)?[0];
    let kind = LedgerEventKind::from_u8(raw_kind).ok_or_else(|| {
        LedgerError::Malformed(format!("record {record} has unknown event kind {raw_kind}"))
    })?;
    let seq = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let query_sig = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let epsilon = f64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let user_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let user = String::from_utf8(take(user_len)?.to_vec())
        .map_err(|_| LedgerError::Malformed(format!("record {record} user is not UTF-8")))?;
    let family_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let family = String::from_utf8(take(family_len)?.to_vec())
        .map_err(|_| LedgerError::Malformed(format!("record {record} family is not UTF-8")))?;
    if pos != body.len() {
        return Err(LedgerError::Malformed(format!(
            "record {record} has {} trailing body bytes",
            body.len() - pos
        )));
    }
    Ok(LedgerEvent {
        index,
        kind,
        user,
        query_sig,
        family,
        epsilon,
        seq,
    })
}

/// Folds replayed events into per-user spend vectors: a charge pushes its ε,
/// a refund removes the most recent bitwise-equal charge (mirroring the
/// accountant's remove-by-value rollback), refusals and recalibrations
/// change nothing. The vectors come back in event order — exactly the
/// operation sequence the live accountant applied, which is what the service
/// crate's audit folds through a real `CompositionAccountant` for the
/// bitwise comparison.
///
/// # Errors
/// [`LedgerError::Malformed`] on a refund with no matching outstanding
/// charge — an inconsistent ledger, not a quietly ignorable event.
pub fn replay_spend(events: &[LedgerEvent]) -> Result<BTreeMap<String, Vec<f64>>, LedgerError> {
    let mut spend: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for event in events {
        match event.kind {
            LedgerEventKind::Charge => {
                spend
                    .entry(event.user.clone())
                    .or_default()
                    .push(event.epsilon);
            }
            LedgerEventKind::Refund => {
                let removed = spend.get_mut(&event.user).and_then(|epsilons| {
                    epsilons
                        .iter()
                        .rposition(|e| e.to_bits() == event.epsilon.to_bits())
                        .map(|at| epsilons.remove(at))
                });
                if removed.is_none() {
                    return Err(LedgerError::Malformed(format!(
                        "record {} refunds ε={} for {:?} with no matching charge",
                        event.index, event.epsilon, event.user
                    )));
                }
            }
            LedgerEventKind::Refusal | LedgerEventKind::Recalibration => {}
        }
    }
    Ok(spend)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> EpsilonLedger {
        let ledger = EpsilonLedger::new();
        let sig = query_signature("state-frequency");
        ledger.record(LedgerEventKind::Charge, "t#a", sig, "mqm-approx", 0.5, 1);
        ledger.record(LedgerEventKind::Charge, "t#b", sig, "mqm-approx", 0.25, 2);
        ledger.record(LedgerEventKind::Refusal, "t#a", sig, "mqm-approx", 0.9, 3);
        ledger.record(LedgerEventKind::Charge, "t#a", sig, "mqm-approx", 0.125, 4);
        ledger.record(LedgerEventKind::Refund, "t#a", sig, "mqm-approx", 0.5, 1);
        ledger.record(LedgerEventKind::Recalibration, "", 0, "mqm-exact", 0.0, 0);
        ledger
    }

    #[test]
    fn replay_round_trips_every_event_bit_for_bit() {
        let ledger = sample_ledger();
        assert_eq!(ledger.events(), 6);
        let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].user, "t#a");
        assert_eq!(events[0].epsilon.to_bits(), 0.5f64.to_bits());
        assert_eq!(events[0].query_sig, query_signature("state-frequency"));
        assert_eq!(events[2].kind, LedgerEventKind::Refusal);
        assert_eq!(events[4].kind, LedgerEventKind::Refund);
        assert_eq!(events[5].kind, LedgerEventKind::Recalibration);
        assert_eq!(events[5].family, "mqm-exact");
        for (position, event) in events.iter().enumerate() {
            assert_eq!(event.index, position as u64);
        }
    }

    #[test]
    fn replay_spend_folds_charges_refunds_and_ignores_the_rest() {
        let events = EpsilonLedger::replay(&sample_ledger().to_bytes()).unwrap();
        let spend = replay_spend(&events).unwrap();
        // t#a: +0.5, +0.125, -0.5 → just the 0.125 charge outstanding.
        assert_eq!(spend["t#a"], vec![0.125]);
        assert_eq!(spend["t#b"], vec![0.25]);
        assert_eq!(spend.len(), 2);
    }

    #[test]
    fn refund_without_charge_is_a_typed_error() {
        let ledger = EpsilonLedger::new();
        ledger.record(LedgerEventKind::Refund, "t#x", 0, "mqm", 0.5, 1);
        let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
        assert!(matches!(
            replay_spend(&events),
            Err(LedgerError::Malformed(_))
        ));
        // A refund whose ε differs in the last bit must not match either.
        let ledger = EpsilonLedger::new();
        ledger.record(LedgerEventKind::Charge, "t#x", 0, "mqm", 0.5, 1);
        ledger.record(
            LedgerEventKind::Refund,
            "t#x",
            0,
            "mqm",
            f64::from_bits(0.5f64.to_bits() + 1),
            1,
        );
        let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
        assert!(matches!(
            replay_spend(&events),
            Err(LedgerError::Malformed(_))
        ));
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = sample_ledger().to_bytes();
        // Cut everywhere: inside the header, at record boundaries, inside
        // bodies, inside checksums. All must fail typed; boundary cuts where
        // whole records survive must replay exactly that prefix — the only
        // acceptable "partial" outcome, because the bytes really do form a
        // shorter valid ledger.
        let mut boundary_cuts = 0;
        for cut in 0..bytes.len() {
            match EpsilonLedger::replay(&bytes[..cut]) {
                Err(LedgerError::Truncated { .. }) => {}
                Ok(events) => {
                    // Only legal when the cut lands exactly on a record
                    // boundary (a valid shorter ledger).
                    let rebuilt_len = {
                        let ledger = EpsilonLedger::new();
                        let mut len = ledger.to_bytes().len();
                        let all = EpsilonLedger::replay(&bytes).unwrap();
                        for event in &all[..events.len()] {
                            ledger.record(
                                event.kind,
                                &event.user,
                                event.query_sig,
                                &event.family,
                                event.epsilon,
                                event.seq,
                            );
                            len = ledger.to_bytes().len();
                        }
                        len
                    };
                    assert_eq!(cut, rebuilt_len, "unexpected Ok at cut {cut}");
                    boundary_cuts += 1;
                }
                Err(other) => panic!("cut {cut}: unexpected error {other}"),
            }
        }
        // Header end + each of the first 5 record ends land inside 0..len.
        assert_eq!(boundary_cuts, 6);
    }

    #[test]
    fn corruption_is_localised_and_typed() {
        let good = sample_ledger().to_bytes();

        // Flip one byte inside a record body: checksum mismatch, naming the
        // record.
        let mut corrupt = good.clone();
        let flip_at = 12 + 4 + 10; // header + first length prefix + 10 body bytes
        corrupt[flip_at] ^= 0xFF;
        assert!(matches!(
            EpsilonLedger::replay(&corrupt),
            Err(LedgerError::ChecksumMismatch { record: 0, .. })
        ));

        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            EpsilonLedger::replay(&bad_magic),
            Err(LedgerError::BadMagic { .. })
        ));

        // Future version.
        let mut bad_version = good.clone();
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            EpsilonLedger::replay(&bad_version),
            Err(LedgerError::UnsupportedVersion { found: 99 })
        ));

        // An unknown event kind inside an otherwise valid record: rebuild
        // record 0 with kind byte 7 and a recomputed checksum.
        let events = EpsilonLedger::replay(&good).unwrap();
        let body_len = u32::from_le_bytes(good[12..16].try_into().unwrap()) as usize;
        let mut body = good[16..16 + body_len].to_vec();
        body[8] = 7; // the kind byte follows the 8-byte index
        let mut spliced = good[..12].to_vec();
        spliced.extend_from_slice(&(body.len() as u32).to_le_bytes());
        spliced.extend_from_slice(&body);
        spliced.extend_from_slice(&record_checksum(&body).to_le_bytes());
        assert!(events.len() > 1);
        assert!(matches!(
            EpsilonLedger::replay(&spliced),
            Err(LedgerError::Malformed(_))
        ));
    }

    #[test]
    fn spliced_record_order_is_rejected() {
        // Two ledgers' bytes concatenated record-for-record out of order:
        // indices stop being monotonic and replay refuses.
        let a = EpsilonLedger::new();
        a.record(LedgerEventKind::Charge, "t#a", 0, "mqm", 0.5, 1);
        let b = EpsilonLedger::new();
        b.record(LedgerEventKind::Charge, "t#b", 0, "mqm", 0.5, 1);
        b.record(LedgerEventKind::Charge, "t#b", 0, "mqm", 0.25, 2);
        // Append b's *second* record (index 1) after a's only record — a
        // splice that skips index… no wait, a has index 0, b's second has
        // index 1, which would be consistent; splice b's FIRST record
        // (index 0) instead, duplicating index 0.
        let a_bytes = a.to_bytes();
        let b_bytes = b.to_bytes();
        let b_first_end = {
            let body_len = u32::from_le_bytes(b_bytes[12..16].try_into().unwrap()) as usize;
            16 + body_len + 8
        };
        let mut spliced = a_bytes.clone();
        spliced.extend_from_slice(&b_bytes[12..b_first_end]);
        assert!(matches!(
            EpsilonLedger::replay(&spliced),
            Err(LedgerError::Malformed(_))
        ));
    }

    #[test]
    fn empty_ledger_replays_to_no_events() {
        let ledger = EpsilonLedger::new();
        assert_eq!(ledger.events(), 0);
        let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
        assert!(events.is_empty());
        assert!(replay_spend(&events).unwrap().is_empty());
        // And a fully empty byte slice is typed truncation, not Ok(vec![]).
        assert!(matches!(
            EpsilonLedger::replay(&[]),
            Err(LedgerError::Truncated { .. })
        ));
    }

    #[test]
    fn write_to_file_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "pufferfish-ledger-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spend.pfeps");
        let ledger = sample_ledger();
        let written = ledger.write_to_file(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, written);
        assert_eq!(EpsilonLedger::replay(&bytes).unwrap().len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_signature_is_stable_fnv1a() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(query_signature(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(query_signature("a"), query_signature("b"));
        assert_eq!(query_signature("histogram"), query_signature("histogram"));
    }
}
