//! Per-request tracing: RAII stage spans, cross-thread request traces, and
//! a ring-buffer flight recorder for slow requests.
//!
//! A request's life through the serving stack is a fixed pipeline of
//! [`Stage`]s: decode → admission → queue wait → engine → mechanism sample
//! → encode. Each stage is timed by a [`Span`] (an RAII timer that records
//! into the stage's registry histogram on drop) and, optionally, into a
//! per-request [`RequestTrace`] — a small block of atomics that rides the
//! request through the worker pool via the existing ticket plumbing, so no
//! thread-local state can leak between requests that share a worker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::registry::{HistogramHandle, Registry};

/// The pipeline stages a request passes through, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wire-frame decoding on the connection reader.
    Decode,
    /// Admission control: budget spend plus queue push.
    Admission,
    /// Time between admission and a worker picking the request up.
    QueueWait,
    /// Engine lookup: cache probe and (on a miss) calibration.
    Engine,
    /// Mechanism sampling: query evaluation plus Laplace noise.
    Mechanism,
    /// Response encoding and socket write on the connection writer.
    Encode,
    /// Progressive-release refinement: one scheduled refinement step of an
    /// anytime answer stream (calibration + release of a window prefix).
    Progressive,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 7;

    /// Every stage, in pipeline order. [`Stage::Progressive`] sits last:
    /// it is an out-of-band stage (refinements run beside the pipeline, not
    /// inside it), so appending keeps every existing stage index stable.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Decode,
        Stage::Admission,
        Stage::QueueWait,
        Stage::Engine,
        Stage::Mechanism,
        Stage::Encode,
        Stage::Progressive,
    ];

    /// The stage's metric-name segment.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::Engine => "engine",
            Stage::Mechanism => "mechanism",
            Stage::Encode => "encode",
            Stage::Progressive => "progressive",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Decode => 0,
            Stage::Admission => 1,
            Stage::QueueWait => 2,
            Stage::Engine => 3,
            Stage::Mechanism => 4,
            Stage::Encode => 5,
            Stage::Progressive => 6,
        }
    }
}

/// The six per-stage latency histograms of one pipeline, resolved once at
/// construction (see the registry's hot-path contract).
///
/// Two components registering against the same registry and prefix share
/// the same histograms — the service's worker records `queue_wait` /
/// `engine` / `mechanism` and the net layer records `decode` / `admission`
/// / `encode` into one `stage_*_ns` family.
#[derive(Debug, Clone)]
pub struct StageHistograms {
    stages: [HistogramHandle; Stage::COUNT],
}

impl StageHistograms {
    /// Registers (or resolves) the `{prefix}_{stage}_ns` histogram for every
    /// stage.
    pub fn register(registry: &Registry, prefix: &str) -> Self {
        StageHistograms {
            stages: Stage::ALL
                .map(|stage| registry.histogram(&format!("{prefix}_{}_ns", stage.name()))),
        }
    }

    /// Starts an RAII span over `stage`: the elapsed nanoseconds are
    /// recorded into the stage histogram when the span drops.
    #[must_use]
    pub fn enter(&self, stage: Stage) -> Span<'_> {
        self.enter_traced(stage, None)
    }

    /// [`StageHistograms::enter`], additionally recording into `trace` so
    /// the flight recorder can reconstruct this request's breakdown.
    #[must_use]
    pub fn enter_traced<'a>(&'a self, stage: Stage, trace: Option<&'a RequestTrace>) -> Span<'a> {
        Span {
            histogram: &self.stages[stage.index()],
            trace,
            stage,
            start: Instant::now(),
        }
    }

    /// Records an externally measured duration (for stages whose endpoints
    /// live on different threads, like queue wait).
    pub fn record(&self, stage: Stage, nanos: u64) {
        self.stages[stage.index()].record(nanos);
    }

    /// The histogram behind `stage`.
    #[must_use]
    pub fn handle(&self, stage: Stage) -> &HistogramHandle {
        &self.stages[stage.index()]
    }
}

/// An RAII timer over one [`Stage`]: created by
/// [`StageHistograms::enter`], records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    histogram: &'a HistogramHandle,
    trace: Option<&'a RequestTrace>,
    stage: Stage,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record(nanos);
        if let Some(trace) = self.trace {
            trace.record(self.stage, nanos);
        }
    }
}

/// One request's per-stage timing, accumulated across threads.
///
/// The trace is a block of relaxed atomics: the reader thread records
/// decode/admission, a worker records queue-wait/engine/mechanism, and the
/// writer records encode — each into its own slot, so the trace needs no
/// lock and is immune to the thread-local leakage a span stack would risk
/// on a shared worker pool.
#[derive(Debug)]
pub struct RequestTrace {
    seq: u64,
    stages: [AtomicU64; Stage::COUNT],
}

impl RequestTrace {
    /// Creates an empty trace for the request with wire sequence number (or
    /// in-process seed) `seq`.
    #[must_use]
    pub fn new(seq: u64) -> Self {
        RequestTrace {
            seq,
            stages: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The request identifier the trace was created with.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Adds `nanos` to `stage` (accumulating, so a retried stage sums).
    ///
    /// The trace travels *with* its request — connection thread, queue,
    /// worker, response slot — so at any moment one thread owns the
    /// recording side and the hand-offs already synchronize. A plain
    /// load/store pair therefore replaces a locked read-modify-write on
    /// the warm path; concurrent recording to the *same* stage is not a
    /// supported use.
    pub fn record(&self, stage: Stage, nanos: u64) {
        let slot = &self.stages[stage.index()];
        slot.store(
            slot.load(Ordering::Relaxed).saturating_add(nanos),
            Ordering::Relaxed,
        );
    }

    /// The per-stage nanoseconds recorded so far, in [`Stage::ALL`] order.
    pub fn stage_nanos(&self) -> [u64; Stage::COUNT] {
        let mut out = [0u64; Stage::COUNT];
        for (slot, stage) in out.iter_mut().zip(&self.stages) {
            *slot = stage.load(Ordering::Relaxed);
        }
        out
    }

    /// Total nanoseconds across every stage.
    pub fn total_nanos(&self) -> u64 {
        self.stage_nanos()
            .iter()
            .fold(0u64, |sum, &ns| sum.saturating_add(ns))
    }
}

/// One finished trace, frozen for the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceReport {
    /// The request's wire sequence number (or in-process seed).
    pub seq: u64,
    /// Total nanoseconds across every stage.
    pub total_ns: u64,
    /// Per-stage nanoseconds, in [`Stage::ALL`] order.
    pub stages: [u64; Stage::COUNT],
}

impl std::fmt::Display for TraceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seq={} total={}ns", self.seq, self.total_ns)?;
        for (stage, ns) in Stage::ALL.iter().zip(&self.stages) {
            write!(f, " {}={}ns", stage.name(), ns)?;
        }
        Ok(())
    }
}

/// A ring buffer of the last N *slow* requests' stage breakdowns.
///
/// Every finished [`RequestTrace`] is offered via
/// [`FlightRecorder::observe`]; traces whose total meets the threshold are
/// kept (evicting the oldest beyond `capacity`), the rest cost one atomic
/// increment. This answers the question percentiles cannot: *which* stage
/// made this particular slow request slow.
#[derive(Debug)]
pub struct FlightRecorder {
    threshold_ns: u64,
    capacity: usize,
    observed: AtomicU64,
    captured: AtomicU64,
    slow: Mutex<VecDeque<TraceReport>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` traces at or above
    /// `threshold_ns` total (capacity clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize, threshold_ns: u64) -> Self {
        FlightRecorder {
            threshold_ns,
            capacity: capacity.max(1),
            observed: AtomicU64::new(0),
            captured: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    /// Offers one finished trace.
    pub fn observe(&self, trace: &RequestTrace) {
        self.observed.fetch_add(1, Ordering::Relaxed);
        let total_ns = trace.total_nanos();
        if total_ns < self.threshold_ns {
            return;
        }
        self.captured.fetch_add(1, Ordering::Relaxed);
        let report = TraceReport {
            seq: trace.seq(),
            total_ns,
            stages: trace.stage_nanos(),
        };
        let mut slow = self.slow.lock().expect("flight recorder poisoned");
        if slow.len() == self.capacity {
            slow.pop_front();
        }
        slow.push_back(report);
    }

    /// Traces offered so far.
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Traces that met the threshold (including ones since evicted).
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// The retained slow traces, oldest first.
    pub fn reports(&self) -> Vec<TraceReport> {
        self.slow
            .lock()
            .expect("flight recorder poisoned")
            .iter()
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_into_stage_histograms() {
        let registry = Registry::new();
        let stages = StageHistograms::register(&registry, "stage");
        {
            let _span = stages.enter(Stage::Engine);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snapshot = stages.handle(Stage::Engine).snapshot();
        assert_eq!(snapshot.count(), 1);
        assert!(snapshot.max() >= 1_000_000, "max {} < 1ms", snapshot.max());
        // Other stages untouched.
        assert_eq!(stages.handle(Stage::Decode).snapshot().count(), 0);
        // The registry sees all six under the prefix.
        assert_eq!(registry.len(), Stage::COUNT);
        assert!(registry.render_text().contains("stage_engine_ns histogram"));
    }

    #[test]
    fn traced_spans_accumulate_into_the_request_trace() {
        let registry = Registry::new();
        let stages = StageHistograms::register(&registry, "stage");
        let trace = RequestTrace::new(42);
        drop(stages.enter_traced(Stage::Decode, Some(&trace)));
        stages.record(Stage::QueueWait, 500);
        trace.record(Stage::QueueWait, 500);
        trace.record(Stage::QueueWait, 250);
        let nanos = trace.stage_nanos();
        assert_eq!(nanos[Stage::QueueWait.index()], 750);
        assert_eq!(trace.seq(), 42);
        assert_eq!(trace.total_nanos(), nanos.iter().sum::<u64>());
    }

    #[test]
    fn two_registrants_share_one_stage_family() {
        let registry = Registry::new();
        let worker_side = StageHistograms::register(&registry, "stage");
        let net_side = StageHistograms::register(&registry, "stage");
        worker_side.record(Stage::Engine, 100);
        net_side.record(Stage::Engine, 200);
        assert_eq!(worker_side.handle(Stage::Engine).snapshot().count(), 2);
        assert_eq!(registry.len(), Stage::COUNT);
    }

    #[test]
    fn flight_recorder_keeps_only_slow_traces_bounded() {
        let recorder = FlightRecorder::new(3, 1_000);
        for seq in 0..10u64 {
            let trace = RequestTrace::new(seq);
            // Even seqs are fast (below threshold), odd are slow.
            let ns = if seq % 2 == 0 { 10 } else { 2_000 + seq };
            trace.record(Stage::Mechanism, ns);
            recorder.observe(&trace);
        }
        assert_eq!(recorder.observed(), 10);
        assert_eq!(recorder.captured(), 5);
        let reports = recorder.reports();
        // Capacity 3: only the last three slow traces survive (seqs 5, 7, 9).
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![5, 7, 9]
        );
        for report in &reports {
            assert!(report.total_ns >= 1_000);
            let rendered = report.to_string();
            assert!(rendered.contains("mechanism="));
            assert!(rendered.starts_with(&format!("seq={}", report.seq)));
        }
    }

    #[test]
    fn stage_names_cover_the_pipeline_in_order() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "decode",
                "admission",
                "queue_wait",
                "engine",
                "mechanism",
                "encode",
                "progressive"
            ]
        );
        for (position, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), position);
        }
    }
}
