//! Dependency-free observability substrate for the Pufferfish serving
//! stack.
//!
//! Three pieces, each usable alone, designed to thread through every layer
//! of the stack without adding a dependency or a lock to the hot path:
//!
//! - **Metrics registry** ([`Registry`]): a process-wide (or per-test)
//!   registry of named [`Counter`]s, [`Gauge`]s, and log-linear latency
//!   histograms ([`HistogramHandle`] over [`AtomicHistogram`]). Handles are
//!   resolved once at construction and cached, so the per-event cost is a
//!   single relaxed atomic add — the registry mutex is never touched on the
//!   hot path. [`Registry::snapshot`] and [`Registry::render_text`] expose
//!   everything in one stable, sorted pass.
//! - **Request tracing** ([`StageHistograms`], [`Span`], [`RequestTrace`],
//!   [`FlightRecorder`]): RAII spans that time a request stage (decode →
//!   admission → queue wait → engine → mechanism sample → encode) straight
//!   into per-stage histograms, optionally accumulating into a per-request
//!   [`RequestTrace`] carried along the existing ticket plumbing — no
//!   thread-locals. The [`FlightRecorder`] keeps the last N slow requests'
//!   stage breakdowns in a fixed ring for post-hoc "why was that one slow".
//! - **ε-audit ledger** ([`EpsilonLedger`]): an append-only, per-record
//!   FNV-1a-checksummed binary log of every privacy-budget event — charge,
//!   refund, refusal, recalibration — replayable offline to per-user spend
//!   that agrees *bitwise* with the live accountant.
//!
//! The crate is `std`-only and panic-free on untrusted input: every decode
//! failure is a typed [`LedgerError`].

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::module_name_repetitions,
    clippy::missing_panics_doc
)]

mod histogram;
mod ledger;
mod registry;
mod span;

pub use histogram::{AtomicHistogram, LatencyHistogram};
pub use ledger::{
    query_signature, replay_spend, EpsilonLedger, LedgerError, LedgerEvent, LedgerEventKind,
    LEDGER_MAGIC, LEDGER_VERSION,
};
pub use registry::{
    Counter, Gauge, HistogramHandle, HistogramSummary, MetricSample, MetricValue, Registry,
};
pub use span::{FlightRecorder, RequestTrace, Span, Stage, StageHistograms, TraceReport};
