//! The process-wide metrics registry: named counters, gauges and
//! histograms, with handles cached at construction.
//!
//! The design splits the cost asymmetrically. **Registration** (looking a
//! name up in the registry, creating the metric if absent) takes a mutex —
//! it happens once, when a component is constructed. The returned handle is
//! an `Arc` straight to the metric's atomics, so the **hot path** — a
//! request incrementing a counter or recording a latency — is one relaxed
//! atomic add with no lock, no hash lookup, no allocation. Components that
//! instrument themselves are expected to resolve every handle up front and
//! store it, never to call [`Registry::counter`] per request.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{AtomicHistogram, LatencyHistogram};

/// A monotonically increasing counter handle. Cloning is cheap (one `Arc`);
/// all clones address the same underlying atomic.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (queue depth, active connections).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A handle to a registered [`AtomicHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    cell: Arc<AtomicHistogram>,
}

impl HistogramHandle {
    /// Records one sample (conventionally nanoseconds).
    pub fn record(&self, value: u64) {
        self.cell.record(value);
    }

    /// Copies the current state out for percentile queries.
    #[must_use]
    pub fn snapshot(&self) -> LatencyHistogram {
        self.cell.snapshot()
    }
}

/// What a name resolves to inside the registry.
#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<AtomicHistogram>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// The reduced, copyable image of one histogram inside a
/// [`MetricSample`] — the percentiles dashboards and the METRICS wire
/// frame carry, without the 15 KiB bucket array.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact largest recorded sample.
    pub max: u64,
    /// Mean of all samples.
    pub mean: f64,
    /// 50th percentile (bucket upper bound, ≤ ~3% above the true quantile).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSummary {
    /// Reduces a full histogram to the summary form.
    #[must_use]
    pub fn of(histogram: &LatencyHistogram) -> Self {
        HistogramSummary {
            count: histogram.count(),
            max: histogram.max(),
            mean: histogram.mean(),
            p50: histogram.percentile(50.0),
            p99: histogram.percentile(99.0),
            p999: histogram.percentile(99.9),
        }
    }
}

/// One metric's value inside a [`MetricSample`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A last-value-wins gauge.
    Gauge(u64),
    /// A histogram, reduced to its summary statistics.
    Histogram(HistogramSummary),
}

/// One named metric captured by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// The metric's registered name.
    pub name: String,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

impl std::fmt::Display for MetricSample {
    /// One text-exposition line: `name kind value…` — the format the
    /// METRICS wire frame renders and CI greps.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.value {
            MetricValue::Counter(v) => write!(f, "{} counter {v}", self.name),
            MetricValue::Gauge(v) => write!(f, "{} gauge {v}", self.name),
            MetricValue::Histogram(h) => write!(
                f,
                "{} histogram count={} mean={:.1} p50={} p99={} p999={} max={}",
                self.name, h.count, h.mean, h.p50, h.p99, h.p999, h.max
            ),
        }
    }
}

/// A registry of named metrics.
///
/// Names are free-form, but the convention throughout the workspace is
/// `snake_case` with a layer prefix and a unit suffix
/// (`engine_mqm_approx_cache_hits_total`, `stage_queue_wait_ns`).
/// Registration is get-or-create: two components asking for the same name
/// share the same underlying metric — this is how the service's worker
/// stages and the net layer's decode/encode stages land in one
/// `stage_*_ns` histogram family.
///
/// # Example
///
/// ```
/// use pufferfish_telemetry::Registry;
///
/// let registry = Registry::new();
/// let hits = registry.counter("cache_hits_total");
/// let latency = registry.histogram("request_ns");
/// hits.inc();
/// latency.record(1_250);
/// let rendered = registry.render_text();
/// assert!(rendered.contains("cache_hits_total counter 1"));
/// assert!(rendered.contains("request_ns histogram count=1"));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The shared process-wide registry, for components without an obvious
    /// owner to attach to. Created on first use; examples and benches that
    /// want hermetic metrics construct their own [`Registry::new`] instead.
    pub fn global() -> Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
    }

    /// Returns the counter registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric kind — a
    /// programming error (two components disagreeing about a name), caught
    /// loudly at registration time rather than corrupting samples silently.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(cell) => Counter {
                cell: Arc::clone(cell),
            },
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// As for [`Registry::counter`], on a kind clash.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Gauge(cell) => Gauge {
                cell: Arc::clone(cell),
            },
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// As for [`Registry::counter`], on a kind clash.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Arc::new(AtomicHistogram::new())));
        match slot {
            Slot::Histogram(cell) => HistogramHandle {
                cell: Arc::clone(cell),
            },
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("metrics registry poisoned").len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Captures every metric, sorted by name. Values are read relaxed per
    /// metric; like every counter snapshot in the workspace, concurrent
    /// writers make this a per-metric (not cross-metric) consistent view.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let slots = self.slots.lock().expect("metrics registry poisoned");
        slots
            .iter()
            .map(|(name, slot)| MetricSample {
                name: name.clone(),
                value: match slot {
                    Slot::Counter(cell) => MetricValue::Counter(cell.load(Ordering::Relaxed)),
                    Slot::Gauge(cell) => MetricValue::Gauge(cell.load(Ordering::Relaxed)),
                    Slot::Histogram(cell) => {
                        MetricValue::Histogram(HistogramSummary::of(&cell.snapshot()))
                    }
                },
            })
            .collect()
    }

    /// Renders the whole registry as text exposition: one
    /// [`MetricSample`] line per metric, sorted by name, newline-terminated.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for sample in self.snapshot() {
            out.push_str(&sample.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_register_and_read_back() {
        let registry = Registry::new();
        let c = registry.counter("requests_total");
        let g = registry.gauge("queue_depth");
        let h = registry.histogram("latency_ns");
        c.inc();
        c.add(4);
        g.set(17);
        for v in 1..=100u64 {
            h.record(v * 10);
        }
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 17);
        assert_eq!(registry.len(), 3);
        assert!(!registry.is_empty());

        let samples = registry.snapshot();
        // BTreeMap order: latency_ns, queue_depth, requests_total.
        assert_eq!(samples[0].name, "latency_ns");
        assert_eq!(samples[1].name, "queue_depth");
        assert_eq!(samples[2].name, "requests_total");
        assert_eq!(samples[2].value, MetricValue::Counter(5));
        assert_eq!(samples[1].value, MetricValue::Gauge(17));
        let MetricValue::Histogram(summary) = samples[0].value else {
            panic!("latency_ns must be a histogram");
        };
        assert_eq!(summary.count, 100);
        assert_eq!(summary.max, 1000);
        assert!(summary.p50 >= 500 && summary.p50 <= 520);
    }

    #[test]
    fn registration_is_get_or_create_sharing_one_metric() {
        let registry = Registry::new();
        let a = registry.counter("shared_total");
        let b = registry.counter("shared_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(registry.len(), 1);
        // Same for histograms: two registrants, one metric.
        let h1 = registry.histogram("shared_ns");
        let h2 = registry.histogram("shared_ns");
        h1.record(1);
        h2.record(2);
        assert_eq!(h1.snapshot().count(), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_clash_panics_at_registration() {
        let registry = Registry::new();
        registry.counter("clash");
        registry.gauge("clash");
    }

    #[test]
    fn render_text_is_one_greppable_line_per_metric() {
        let registry = Registry::new();
        registry.counter("hits_total").add(42);
        registry.gauge("depth").set(3);
        registry.histogram("ns").record(100);
        let text = registry.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "hits_total counter 42");
        assert_eq!(lines[0], "depth gauge 3");
        assert!(lines[2].starts_with("ns histogram count=1 "));
        assert!(lines[2].contains("max=100"));
    }

    #[test]
    fn global_registry_is_one_instance() {
        let a = Registry::global();
        let b = Registry::global();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_handle_use_is_lossless() {
        let registry = Registry::new();
        let counter = registry.counter("contended_total");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
    }
}
