//! Fixed-bucket, HDR-style latency histograms — a single-threaded
//! [`LatencyHistogram`] and its lock-free counterpart [`AtomicHistogram`].
//!
//! The closed-loop load harness needs tail percentiles (p99, p999) over
//! millions of samples without keeping them all, and without pulling in a
//! histogram crate. This is the standard log-linear layout: values below 32
//! are exact; above, each power-of-two octave is split into 32 linear
//! sub-buckets, bounding relative quantisation error by `1/32 ≈ 3.1%` —
//! plenty for latency reporting, at a flat 15 KiB per histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Total buckets: 32 exact values plus one octave of 32 sub-buckets for
/// every exponent in `SUB_BITS..=63` — covering the full `u64` range.
const BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS) as u64 * SUB_COUNT) as usize;

/// A mergeable log-linear histogram of `u64` samples (conventionally
/// nanoseconds), with ≤ ~3% relative error on reported percentiles.
///
/// # Example
///
/// ```
/// use pufferfish_telemetry::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((480..=530).contains(&p50), "p50 was {p50}");
/// assert_eq!(h.max(), 1000);
/// assert_eq!(h.count(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB_COUNT {
            return value as usize;
        }
        let exponent = value.ilog2();
        let sub = (value >> (exponent - SUB_BITS)) - SUB_COUNT;
        (SUB_COUNT as usize) + (exponent - SUB_BITS) as usize * SUB_COUNT as usize + sub as usize
    }

    /// Upper bound of the bucket at `index` — what percentiles report, so a
    /// reported quantile never understates the true one.
    fn bucket_upper(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_COUNT {
            return index;
        }
        let octave = (index - SUB_COUNT) / SUB_COUNT;
        let sub = (index - SUB_COUNT) % SUB_COUNT;
        // The very top sub-bucket's upper bound is 2^64 - 1; go through u128
        // so the shift cannot overflow.
        let upper = u128::from(SUB_COUNT + sub + 1) << octave;
        u64::try_from(upper - 1).unwrap_or(u64::MAX)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The value at percentile `p` (0–100), as the upper bound of the bucket
    /// holding that rank — within ~3% above the true quantile. Returns 0 on
    /// an empty histogram; `p = 100` reports the exact maximum.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }
}

/// The lock-free sibling of [`LatencyHistogram`]: the exact same log-linear
/// bucket layout, but every field is an atomic so any number of threads can
/// [`record`](AtomicHistogram::record) concurrently — one relaxed
/// `fetch_add` per field, no locks, no CAS loops.
///
/// Readers take a [`snapshot`](AtomicHistogram::snapshot) into an ordinary
/// [`LatencyHistogram`] for percentile queries. Like the engine's cache
/// counters, a snapshot taken while writers are active is not a cross-field
/// transaction (the bucket counts may momentarily disagree with the sample
/// sum by in-flight increments); quiescent values are exact.
///
/// # Example
///
/// ```
/// use pufferfish_telemetry::AtomicHistogram;
///
/// let h = AtomicHistogram::new();
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         scope.spawn(|| {
///             for v in 1..=250u64 {
///                 h.record(v);
///             }
///         });
///     }
/// });
/// let snapshot = h.snapshot();
/// assert_eq!(snapshot.count(), 1000);
/// assert_eq!(snapshot.max(), 250);
/// ```
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    /// Wrapping sum of samples. `u64` nanoseconds wrap after ~584 years of
    /// accumulated latency; the mean is meaningless long before that matters.
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: two relaxed atomic adds plus a load-guarded
    /// maximum update, no locks — cheap enough to sit on the per-request
    /// hot path. There is no separate sample counter: the count *is* the
    /// sum of the buckets, recomputed on the (cold) read side instead of
    /// paid on every record.
    pub fn record(&self, value: u64) {
        self.buckets[LatencyHistogram::index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        // After warm-up a new maximum is rare: a plain load guards the
        // atomic read-modify-write so the common case pays no locked
        // instruction. Racing writers both fall through to `fetch_max`,
        // which keeps the larger value.
        if value > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples (the sum over every bucket).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Copies the current state into a [`LatencyHistogram`] for percentile
    /// queries and merging.
    pub fn snapshot(&self) -> LatencyHistogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        LatencyHistogram {
            count: buckets.iter().sum(),
            buckets,
            sum: u128::from(self.sum.load(Ordering::Relaxed)),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), 31);
        assert_eq!(h.percentile(25.0), 0);
        assert_eq!(h.percentile(50.0), 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn relative_error_is_bounded_across_magnitudes() {
        for &value in &[100u64, 1_000, 50_000, 1_000_000, 123_456_789] {
            let upper = LatencyHistogram::bucket_upper(LatencyHistogram::index(value));
            assert!(upper >= value, "upper {upper} below sample {value}");
            let err = (upper - value) as f64 / value as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "error {err} at {value}");
        }
    }

    #[test]
    fn percentiles_track_a_uniform_distribution() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(p, expected) in &[(50.0, 50_000u64), (95.0, 95_000), (99.0, 99_000)] {
            let got = h.percentile(p);
            let err = (got as f64 - expected as f64).abs() / expected as f64;
            assert!(err < 0.04, "p{p} was {got}, expected ≈{expected}");
        }
        assert_eq!(h.percentile(100.0), 100_000);
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn merge_is_the_same_as_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..10_000u64 {
            let sample = v.wrapping_mul(2_654_435_761) % 1_000_000;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            whole.record(sample);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn extreme_values_do_not_overflow_the_layout() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        h.record(1 << 62);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
        // The lowest sample is 2^62; its bucket upper bound must not
        // undershoot it.
        assert!(h.percentile(1.0) >= 1 << 62);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean().to_bits(), 0.0_f64.to_bits());
    }

    #[test]
    fn atomic_histogram_snapshot_matches_sequential_recording() {
        let atomic = AtomicHistogram::new();
        let mut reference = LatencyHistogram::new();
        for v in 0..50_000u64 {
            let sample = v.wrapping_mul(2_654_435_761) % 10_000_000;
            atomic.record(sample);
            reference.record(sample);
        }
        let snapshot = atomic.snapshot();
        assert_eq!(snapshot.count(), reference.count());
        assert_eq!(snapshot.max(), reference.max());
        assert_eq!(snapshot.mean().to_bits(), reference.mean().to_bits());
        for p in [1.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(snapshot.percentile(p), reference.percentile(p));
        }
    }

    #[test]
    fn atomic_histogram_concurrent_records_all_land() {
        let h = AtomicHistogram::new();
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(worker * 1_000 + (i % 997));
                    }
                });
            }
        });
        let snapshot = h.snapshot();
        assert_eq!(snapshot.count(), 80_000);
        assert_eq!(snapshot.max(), 7_000 + 996);
    }
}
