//! Deterministic shared-memory parallelism for the Pufferfish calibration
//! loops.
//!
//! The mechanisms' hot paths are embarrassingly parallel enumerations — the
//! ∞-Wasserstein sweep over secret pairs × scenarios, the per-θ and per-node
//! quilt searches of MQMExact/MQMApprox, the spectral scans over chain-class
//! grids. This crate provides a rayon-style `par_map` built on
//! [`std::thread::scope`] (the build environment has no crates.io access, so
//! rayon itself cannot be a dependency; the API is deliberately shaped so a
//! rayon backend could be swapped in).
//!
//! **Determinism contract:** every combinator returns results in input
//! order, so a caller that folds the returned vector serially observes
//! *bitwise-identical* results to a fully serial run — the property the
//! calibration conformance tests assert. Parallelism only changes wall-clock
//! time, never output.
//!
//! For *serving* workloads — threads that outlive any single enumeration and
//! drain a queue until shutdown — the crate additionally provides
//! [`WorkerPool`], the long-lived counterpart to [`par_run`] used by the
//! `pufferfish-service` front-end.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod morsel;
mod pool;

pub use morsel::{morsel_run, morsels, try_morsel_run, Morsel};
pub use pool::WorkerPool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// How a calibration loop should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded reference execution.
    Serial,
    /// Use every available core (the default).
    #[default]
    Auto,
    /// Use exactly this many worker threads (values are clamped to ≥ 1).
    Threads(usize),
}

impl Parallelism {
    /// The number of worker threads this policy yields for `items` units of
    /// work (never more threads than items, never zero).
    pub fn effective_threads(self, items: usize) -> usize {
        let requested = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
        };
        requested.min(items.max(1))
    }

    /// `true` when this policy may use more than one thread for `items`
    /// units of work.
    pub fn is_parallel(self, items: usize) -> bool {
        self.effective_threads(items) > 1
    }
}

/// Runs `f(0), f(1), …, f(n-1)` under the given policy and returns the
/// results **in index order**.
///
/// Work is distributed dynamically (atomic work counter), so heterogeneous
/// per-item costs — long quilt searches next to trivial ones — still balance
/// across workers. Each worker accumulates `(index, value)` pairs privately
/// and the results are stitched back into index order after the scope joins,
/// which is what makes the output (and therefore any serial fold over it)
/// independent of the schedule.
///
/// # Panics
/// Propagates panics from `f`.
pub fn par_run<R, F>(policy: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = policy.effective_threads(n);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let next = AtomicUsize::new(0);

    thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        local.push((index, f(index)));
                    }
                    local
                })
            })
            .collect();
        for worker in workers {
            let local = worker.join().expect("parallel worker panicked");
            for (index, value) in local {
                results[index] = Some(value);
            }
        }
    });

    results
        .into_iter()
        .map(|slot| slot.expect("parallel worker filled every slot"))
        .collect()
}

/// Maps `f` over `items` under the given policy, preserving input order.
pub fn par_map<T, R, F>(policy: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_run(policy, items.len(), |i| f(&items[i]))
}

/// Maps a fallible `f` over `items`, short-circuiting on the **first** error
/// in input order (matching what the serial loop would have reported, even
/// when a later item errors first in wall-clock time).
pub fn try_par_map<T, R, E, F>(policy: Parallelism, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    par_run(policy, items.len(), |i| f(&items[i]))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_every_policy() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for policy in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(1),
            Parallelism::Threads(3),
            Parallelism::Threads(64),
        ] {
            assert_eq!(par_map(policy, &items, |&x| x * x), expected);
        }
    }

    #[test]
    fn float_folds_are_bitwise_identical_across_policies() {
        // The calibration loops fold max() over the mapped values; max is
        // order-insensitive, but we assert the stronger property that the
        // mapped vectors themselves are identical.
        let items: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e3).collect();
        let serial = par_map(Parallelism::Serial, &items, |&x| (x.abs() + 1.0).ln());
        let parallel = par_map(Parallelism::Threads(7), &items, |&x| (x.abs() + 1.0).ln());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn try_map_reports_first_error_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let result = try_par_map(Parallelism::Threads(8), &items, |&x| {
            if x % 7 == 3 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(result, Err(3));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Parallelism::Auto, &empty, |&x| x).is_empty());
        assert_eq!(par_map(Parallelism::Auto, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn effective_threads_bounds() {
        assert_eq!(Parallelism::Serial.effective_threads(100), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(100), 1);
        assert_eq!(Parallelism::Threads(4).effective_threads(2), 2);
        assert!(Parallelism::Auto.effective_threads(1_000) >= 1);
        assert!(!Parallelism::Serial.is_parallel(100));
    }
}
