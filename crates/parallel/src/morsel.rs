//! Morsel-driven work-stealing execution.
//!
//! [`par_run`](crate::par_run) hands out *single items* from one shared
//! atomic counter. That is the right shape when items are uniform, but a
//! query executor's work units are wildly skewed — one giant group-by cell
//! next to dozens of tiny ones — and per-item dispatch on a shared counter
//! costs a contended RMW per window. The morsel scheduler (HoneyComb-style)
//! fixes both:
//!
//! * the work unit is a [`Morsel`] — a contiguous **index range** over a
//!   flat domain of `total` items — so dispatch cost is amortised over a
//!   whole cache-friendly chunk;
//! * morsels are dealt into **per-worker deques** up front (contiguous
//!   blocks, preserving locality); a worker pops from the *front* of its own
//!   deque and, when empty, **steals** from the *back* of a victim's, so a
//!   straggler morsel never strands the work queued behind it.
//!
//! **Determinism contract:** identical to the rest of this crate. Each
//! worker tags every result with its morsel index and the results are
//! stitched back into index order after the scope joins, so the returned
//! vector — and therefore any serial fold over it — is **bitwise-identical**
//! on any thread count and any steal schedule. Stealing changes wall-clock
//! time, never output.
//!
//! Like [`par_run`], execution uses [`std::thread::scope`] so closures may
//! borrow from the caller; the long-lived [`WorkerPool`](crate::WorkerPool)
//! shape (detached `'static` threads) is deliberately not used here — a
//! morsel run is one bounded enumeration, not a service.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::Parallelism;

/// One unit of schedulable work: a contiguous index range `start..end` over
/// the run's flat domain, plus its position in the overall schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Position of this morsel in schedule order (results are assembled by
    /// this index, which is what makes output schedule-independent).
    pub index: usize,
    /// First item covered (inclusive).
    pub start: usize,
    /// One past the last item covered (exclusive).
    pub end: usize,
}

impl Morsel {
    /// Number of items this morsel covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the morsel covers no items (never produced by
    /// [`morsels`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `total` items into `⌈total / size⌉` morsels of at most `size`
/// items each (`size` is clamped to ≥ 1), in domain order.
pub fn morsels(total: usize, size: usize) -> Vec<Morsel> {
    let size = size.max(1);
    (0..total)
        .step_by(size)
        .enumerate()
        .map(|(index, start)| Morsel {
            index,
            start,
            end: (start + size).min(total),
        })
        .collect()
}

/// Runs `f` over every morsel of `total` items under the given policy and
/// returns the results **in morsel order**.
///
/// Morsels are dealt to per-worker deques as contiguous blocks: with `w`
/// workers and `m` morsels, worker `k` initially owns morsels
/// `[k·⌈m/w⌉, (k+1)·⌈m/w⌉)`. A worker drains its own deque front-to-back and
/// steals from the back of the next non-empty victim's deque (scanning
/// round-robin from its own index) once its deque is empty, so an
/// adversarially slow early morsel cannot serialise the morsels dealt behind
/// it. No new work is ever produced mid-run, so workers exit when every
/// deque is empty.
///
/// # Panics
/// Propagates the first panic raised by `f` on any worker.
pub fn morsel_run<R, F>(policy: Parallelism, total: usize, morsel_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Morsel) -> R + Sync,
{
    let schedule = morsels(total, morsel_size);
    let threads = policy.effective_threads(schedule.len());
    if threads <= 1 || schedule.len() <= 1 {
        return schedule.into_iter().map(f).collect();
    }

    // Deal contiguous blocks of morsels, one deque per worker.
    let per_worker = schedule.len().div_ceil(threads);
    let deques: Vec<Mutex<VecDeque<Morsel>>> = schedule
        .chunks(per_worker)
        .map(|block| Mutex::new(block.iter().copied().collect()))
        .collect();
    let workers = deques.len(); // ≤ threads; every deque starts non-empty

    let mut results: Vec<Option<R>> = Vec::with_capacity(schedule.len());
    results.resize_with(schedule.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let f = &f;
                let deques = &deques;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        // Own work first (front), then steal (back), scanning
                        // victims round-robin starting after ourselves.
                        let next = (0..workers).find_map(|offset| {
                            let victim = (me + offset) % workers;
                            let mut deque = deques[victim].lock().expect("morsel deque poisoned");
                            if victim == me {
                                deque.pop_front()
                            } else {
                                deque.pop_back()
                            }
                        });
                        match next {
                            Some(morsel) => local.push((morsel.index, f(morsel))),
                            None => break,
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (index, value) in local {
                        results[index] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    results
        .into_iter()
        .map(|slot| slot.expect("every morsel was executed exactly once"))
        .collect()
}

/// Maps a fallible `f` over every morsel, reporting the **first** error in
/// morsel order — matching what a serial front-to-back run would have
/// reported, even when a later morsel errors first in wall-clock time.
///
/// # Errors
/// The error of the lowest-indexed failing morsel.
///
/// # Panics
/// Propagates the first panic raised by `f` on any worker.
pub fn try_morsel_run<R, E, F>(
    policy: Parallelism,
    total: usize,
    morsel_size: usize,
    f: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(Morsel) -> Result<R, E> + Sync,
{
    morsel_run(policy, total, morsel_size, f)
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn morsel_partition_covers_the_domain_exactly_once() {
        for (total, size) in [(0, 4), (1, 4), (7, 3), (8, 4), (9, 4), (5, 100), (6, 0)] {
            let schedule = morsels(total, size);
            let mut covered = Vec::new();
            for (i, morsel) in schedule.iter().enumerate() {
                assert_eq!(morsel.index, i);
                assert!(!morsel.is_empty());
                assert!(morsel.len() <= size.max(1));
                covered.extend(morsel.start..morsel.end);
            }
            assert_eq!(covered, (0..total).collect::<Vec<_>>());
        }
        assert!(morsels(0, 8).is_empty());
    }

    #[test]
    fn results_come_back_in_morsel_order_for_every_policy_and_size() {
        for policy in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(3),
            Parallelism::Threads(16),
        ] {
            for size in [1, 2, 5, 64] {
                let sums = morsel_run(policy, 100, size, |m| {
                    (m.start..m.end).map(|i| i * i).sum::<usize>()
                });
                let total: usize = sums.iter().sum();
                assert_eq!(total, (0..100).map(|i| i * i).sum::<usize>());
                assert_eq!(sums.len(), morsels(100, size).len());
            }
        }
    }

    #[test]
    fn stolen_schedules_are_bitwise_identical_to_serial() {
        let serial = morsel_run(Parallelism::Serial, 500, 7, |m| {
            (m.start..m.end)
                .map(|i| ((i as f64).sin() + 1.5).ln())
                .collect::<Vec<f64>>()
        });
        let stolen = morsel_run(Parallelism::Threads(5), 500, 7, |m| {
            (m.start..m.end)
                .map(|i| ((i as f64).sin() + 1.5).ln())
                .collect::<Vec<f64>>()
        });
        for (a, b) in serial.iter().flatten().zip(stolen.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn slow_first_morsel_is_routed_around_by_stealing() {
        // 8 morsels, 2 workers: worker 0 initially owns morsels 0..4,
        // worker 1 owns 4..8. Morsel 0 blocks its worker long enough that
        // the other worker must finish its own block and steal morsels
        // 1..4; they therefore run on a different thread than morsel 0.
        let owners: Mutex<HashMap<usize, ThreadId>> = Mutex::new(HashMap::new());
        morsel_run(Parallelism::Threads(2), 8, 1, |m| {
            if m.index == 0 {
                std::thread::sleep(Duration::from_millis(400));
            }
            owners
                .lock()
                .unwrap()
                .insert(m.index, std::thread::current().id());
        });
        let owners = owners.into_inner().unwrap();
        assert_eq!(owners.len(), 8);
        let slow_thread = owners[&0];
        for index in 1..8 {
            assert_ne!(
                owners[&index], slow_thread,
                "morsel {index} was serialised behind the slow morsel"
            );
        }
    }

    #[test]
    fn every_morsel_runs_exactly_once_under_contention() {
        let runs = AtomicUsize::new(0);
        let results = morsel_run(Parallelism::Threads(8), 257, 3, |m| {
            runs.fetch_add(1, Ordering::SeqCst);
            m.index
        });
        assert_eq!(runs.load(Ordering::SeqCst), morsels(257, 3).len());
        assert_eq!(results, (0..results.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_morsel_inputs() {
        let empty: Vec<usize> = morsel_run(Parallelism::Threads(4), 0, 8, |m| m.len());
        assert!(empty.is_empty());
        let single = morsel_run(Parallelism::Threads(4), 5, 8, |m| (m.start, m.end));
        assert_eq!(single, vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "morsel 3 panicked deliberately")]
    fn worker_panics_propagate_to_the_caller() {
        morsel_run(Parallelism::Threads(4), 16, 2, |m| {
            assert_ne!(m.index, 3, "morsel 3 panicked deliberately");
        });
    }

    #[test]
    fn try_run_reports_the_first_error_in_morsel_order() {
        let result = try_morsel_run(Parallelism::Threads(8), 90, 3, |m| {
            if m.index % 7 == 4 {
                Err(m.index)
            } else {
                Ok(m.index)
            }
        });
        assert_eq!(result, Err(4));
        let ok: Result<Vec<usize>, usize> =
            try_morsel_run(Parallelism::Threads(2), 10, 3, |m| Ok(m.index));
        assert_eq!(ok.unwrap(), vec![0, 1, 2, 3]);
    }
}
