//! A small fixed-size pool of long-lived, named worker threads.
//!
//! [`par_run`](crate::par_run) and friends are the right tool for *bounded*
//! calibration loops: they spawn scoped threads, run one enumeration, and
//! join. A serving front-end needs the opposite shape — threads that start
//! once and keep draining a queue until the service shuts down. [`WorkerPool`]
//! provides exactly that: `n` named threads each running the same worker
//! closure (typically a `loop { queue.pop() … }`), joined explicitly via
//! [`WorkerPool::join`] or implicitly on drop.
//!
//! Termination is cooperative: the pool never interrupts a worker; the
//! closure is expected to return when its work source reports closure (the
//! bounded queue in `pufferfish-service` returns `None` from `pop` once
//! closed and drained).

use std::thread::{self, JoinHandle};

use crate::Parallelism;

/// A fixed-size set of named OS threads all running the same worker closure.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use pufferfish_parallel::{Parallelism, WorkerPool};
///
/// let counter = Arc::new(AtomicUsize::new(0));
/// let seen = Arc::clone(&counter);
/// let pool = WorkerPool::spawn(Parallelism::Threads(3), "demo", move |worker| {
///     // Each worker runs once to completion; real services loop on a queue.
///     seen.fetch_add(worker + 1, Ordering::SeqCst);
/// });
/// assert_eq!(pool.len(), 3);
/// pool.join();
/// assert_eq!(counter.load(Ordering::SeqCst), 1 + 2 + 3);
/// ```
pub struct WorkerPool {
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns the pool: one thread per `policy.effective_threads(usize::MAX)`
    /// (i.e. `Serial` → 1, `Auto` → all cores, `Threads(n)` → n), each named
    /// `{name}-{index}` and running `worker(index)` to completion.
    ///
    /// The closure is shared across threads, so captured state must be
    /// `Send + Sync` (share mutable state through `Arc`s of synchronised
    /// types, exactly like [`par_run`](crate::par_run) callbacks).
    pub fn spawn<F>(policy: Parallelism, name: &str, worker: F) -> Self
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let threads = policy.effective_threads(usize::MAX);
        let worker = std::sync::Arc::new(worker);
        let workers = (0..threads)
            .map(|index| {
                let worker = std::sync::Arc::clone(&worker);
                thread::Builder::new()
                    .name(format!("{name}-{index}"))
                    .spawn(move || worker(index))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool { workers }
    }

    /// Number of worker threads in the pool.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// `true` when the pool has no workers (cannot happen for pools built by
    /// [`WorkerPool::spawn`], which always yields at least one thread).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Blocks until every worker closure has returned.
    ///
    /// # Panics
    /// Propagates a panic from any worker thread.
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    /// Joins any still-running workers; shut the work source down first or
    /// the drop will block forever. Unlike [`WorkerPool::join`], worker
    /// panics are swallowed here — this drop may itself run during
    /// unwinding, where a second panic would abort the process.
    fn drop(&mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn every_worker_runs_with_its_index() {
        let mask = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&mask);
        let pool = WorkerPool::spawn(Parallelism::Threads(4), "test", move |worker| {
            seen.fetch_or(1 << worker, Ordering::SeqCst);
        });
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_empty());
        pool.join();
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn serial_policy_yields_one_worker() {
        let pool = WorkerPool::spawn(Parallelism::Serial, "single", |_| {});
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn drop_swallows_worker_panics() {
        let pool = WorkerPool::spawn(Parallelism::Threads(2), "panicky", |worker| {
            assert_ne!(worker, 0, "worker 0 panics deliberately");
        });
        // Must join both workers without re-panicking.
        drop(pool);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn explicit_join_propagates_worker_panics() {
        WorkerPool::spawn(Parallelism::Threads(2), "panicky", |worker| {
            assert_ne!(worker, 0, "worker 0 panics deliberately");
        })
        .join();
    }

    #[test]
    fn drop_joins_workers() {
        let count = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&count);
        {
            let _pool = WorkerPool::spawn(Parallelism::Threads(2), "dropped", move |_| {
                seen.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Drop returned only after both workers completed.
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
