//! A dependency-free, offline stand-in for the subset of the [`rand` 0.8]
//! API used by this workspace: [`RngCore`], [`Rng`], [`SeedableRng`] and
//! [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same trait surface backed by a xoshiro256++ generator seeded through
//! SplitMix64 (the reference seeding procedure). Code written against it
//! compiles unchanged against the real `rand` crate; the streams differ, but
//! every consumer in this workspace only relies on determinism for a fixed
//! seed, never on a specific stream.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of raw 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an rng's "standard" distribution
/// (`[0, 1)` for floats, the full range for integers, fair coin for bool).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                start + (end - start) * u
            }
        }
    };
}
impl_float_range!(f64);
impl_float_range!(f32);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Creates an rng from a 64-bit seed (via SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>().to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_interval_and_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&y));
            let k = rng.gen_range(30..60);
            assert!((30..60).contains(&k));
            let m: usize = rng.gen_range(0..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let through_generic = sample(&mut rng);
        assert!((0.0..1.0).contains(&through_generic));
    }
}
