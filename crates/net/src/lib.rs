//! # pufferfish-net
//!
//! A dependency-free TCP front-end for the Pufferfish serving stack of
//! Song, Wang & Chaudhuri (SIGMOD 2017), built entirely on `std::net`.
//!
//! The in-process [`pufferfish_service::ReleaseService`] already has the
//! right concurrency shape — bounded admission queue, worker pool, per-user
//! budget accounting — but it only serves callers in the same process. This
//! crate puts it behind a wire:
//!
//! * [`frame`] — the length-prefixed binary protocol: magic + version +
//!   typed request/response frames (RELEASE, QUERY, STATS, PROGRESSIVE)
//!   with a per-frame
//!   user id under a per-connection authenticated tenant, so the
//!   [`pufferfish_service::BudgetAccountant`] charges the identity the
//!   *connection* proved, not a string the caller made up.
//! * [`NetServer`] — listener + pipelined connection handlers. Each
//!   connection keeps many sequence-numbered requests in flight; responses
//!   return in completion order. Admission-queue refusals become typed
//!   `BUSY{retry_hint}` frames (the refused request's budget spend is
//!   rolled back by the service), never blocking. Connection limits, read
//!   timeouts, and graceful drain-then-close shutdown are built in.
//! * [`NetClient`] — a blocking client: raw pipelined send/recv plus
//!   one-shot helpers mapping the typed refusal frames onto
//!   [`ClientError`].
//! * Telemetry — re-exported from [`pufferfish_telemetry`]: the
//!   [`LatencyHistogram`] the closed-loop load harness uses for
//!   p50/p95/p99/p999 over millions of samples in 15 KiB, and (opt-in via
//!   [`NetServer::bind_telemetry`]) per-connection byte counters, request
//!   stage spans, a slow-request flight recorder, and a METRICS wire frame
//!   exposing the whole registry to any client.
//!
//! Determinism survives the wire: a release is fully determined by
//! `(user, query, ε, seed, database)`, so identical requests over any
//! number of connections produce bitwise-identical noisy answers.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use pufferfish_core::engine::{MqmApproxCalibrator, ReleaseEngine};
//! use pufferfish_core::{MqmApproxOptions, Parallelism};
//! use pufferfish_markov::IntervalClassBuilder;
//! use pufferfish_net::{NetClient, NetServer, NetServerConfig, WireQuery};
//! use pufferfish_service::{ReleaseService, ServiceConfig};
//!
//! // The ordinary in-process service...
//! let class = IntervalClassBuilder::symmetric(0.4).grid_points(2).build().unwrap();
//! let engine = ReleaseEngine::shared(MqmApproxCalibrator::new(
//!     class,
//!     60,
//!     MqmApproxOptions::default(),
//! ));
//! let service = Arc::new(
//!     ReleaseService::start(
//!         engine,
//!         ServiceConfig {
//!             workers: Parallelism::Threads(2),
//!             queue_capacity: 32,
//!             per_user_epsilon: 1.0,
//!         },
//!     )
//!     .unwrap(),
//! );
//!
//! // ...put behind a TCP wire on an ephemeral port.
//! let server = NetServer::bind(
//!     ("127.0.0.1", 0),
//!     Arc::clone(&service),
//!     NetServerConfig::default(),
//! )
//! .unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr(), "docs").unwrap();
//! let database = vec![0usize, 1, 1, 0, 1].repeat(12);
//! let query = WireQuery::StateFrequency { state: 1, length: 60 };
//! let (scale, values) = client.release(7, query, &database, 0.5, 99).unwrap();
//! assert!(scale > 0.0);
//! assert_eq!(values.len(), 1);
//!
//! // Identical request on a fresh connection: bitwise-identical answer.
//! let mut again = NetClient::connect(server.local_addr(), "docs").unwrap();
//! let (_, values_again) = again.release(7, query, &database, 0.5, 99).unwrap();
//! assert_eq!(values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
//!            values_again.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
//!
//! client.goodbye().unwrap();
//! again.goodbye().unwrap();
//! server.shutdown();
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientError, NetClient, Refinement};
pub use frame::{
    decode, decode_payload, encode, Envelope, ErrorCode, Frame, FrameError, WireCell, WireMetric,
    WireMetricValue, WireQuery, WireQueryResult, WireRefinementStep, WireStats, WireWindow,
    DEFAULT_MAX_FRAME_LEN, MAGIC, VERSION,
};
pub use pufferfish_telemetry::LatencyHistogram;
pub use server::{
    NetServer, NetServerConfig, ProgressiveEndpoint, QueryEndpoint, TelemetryOptions,
};
