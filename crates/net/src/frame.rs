//! The length-prefixed binary wire protocol.
//!
//! Every frame on the wire is
//!
//! ```text
//! u32  frame_len   — byte length of everything after this field
//! u32  magic       — 0x4646_5550 ("PUFF" as little-endian bytes)
//! u8   version     — protocol version, currently 1
//! u8   kind        — frame type discriminant
//! u64  seq         — client-chosen sequence number, echoed in the response
//! …    body        — type-specific fields
//! ```
//!
//! with every multi-byte integer little-endian. The `seq` field is what
//! makes connections *pipelined*: a client may have many requests in flight
//! and the server answers each as soon as its release completes, so
//! responses can return out of order — the sequence number is the only way
//! to match them back up.
//!
//! Decoding is defensive end to end: a declared frame length beyond the
//! negotiated maximum is [`FrameError::Oversized`] *before* any allocation,
//! every collection count inside a body is checked against the bytes that
//! actually remain, and trailing garbage is [`FrameError::Malformed`]. No
//! input can make the decoder panic or allocate unboundedly — the property
//! the adversarial codec tests pin down.

use std::sync::Arc;

use pufferfish_core::queries::{
    LipschitzQuery, MeanStateQuery, RangeCountQuery, RelativeFrequencyHistogram, StateCountQuery,
    StateFrequencyQuery,
};
use pufferfish_service::ServiceStats;

/// The four magic bytes every frame starts with: `b"PUFF"` on the wire.
pub const MAGIC: u32 = 0x4646_5550;
/// The protocol version this crate speaks.
pub const VERSION: u8 = 1;
/// Default cap on `frame_len` (1 MiB): frames declaring more are refused
/// before any allocation.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;
/// Bytes of fixed header after the length prefix (magic + version + kind +
/// seq) — the minimum legal `frame_len`.
pub const HEADER_LEN: usize = 14;

/// Typed decode/encode failures. Every malformed input maps to exactly one
/// of these — never a panic, never an unbounded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: u32,
    },
    /// The frame declared a protocol version this crate does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u8,
    },
    /// The frame kind discriminant is not one this crate knows.
    UnknownKind {
        /// The discriminant found.
        found: u8,
    },
    /// The input ended before the frame did. In streaming contexts this
    /// means "read more bytes"; for a complete message it is an error.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// The declared frame length exceeds the negotiated maximum. Refused
    /// before allocating anything.
    Oversized {
        /// The declared length.
        declared: u32,
        /// The maximum the decoder accepts.
        max: u32,
    },
    /// The frame parsed structurally but its body is inconsistent (bad
    /// UTF-8, a collection count larger than the remaining bytes, trailing
    /// garbage, an unknown error code, …).
    Malformed(String),
    /// The value cannot be represented on the wire (a state outside `u16`,
    /// a frame larger than the maximum).
    Unencodable(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => {
                write!(f, "bad magic 0x{found:08x} (expected 0x{MAGIC:08x})")
            }
            FrameError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (speaking {VERSION})"
                )
            }
            FrameError::UnknownKind { found } => write!(f, "unknown frame kind 0x{found:02x}"),
            FrameError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} bytes, maximum is {max}")
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            FrameError::Unencodable(msg) => write!(f, "unencodable frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Machine-readable reason inside an [`Frame::Error`] response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The request frame was undecodable or semantically invalid.
    Malformed = 1,
    /// A request arrived before the connection's HELLO.
    NotHello = 2,
    /// Calibration or release failed in the mechanism layer.
    Mechanism = 3,
    /// A QUERY frame named a table the server does not serve.
    TableNotFound = 4,
    /// A QUERY frame's statement did not parse.
    Parse = 5,
    /// The server is shutting down.
    Shutdown = 6,
    /// The server is at its connection limit.
    TooManyConnections = 7,
    /// The request names a capability this server does not expose (e.g. a
    /// QUERY frame against a release-only server, or an unplannable
    /// statement).
    Unsupported = 8,
    /// An internal serving failure (e.g. the shutdown drain deadline
    /// expired before the release completed).
    Internal = 9,
}

impl ErrorCode {
    fn from_u16(value: u16) -> Option<Self> {
        Some(match value {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::NotHello,
            3 => ErrorCode::Mechanism,
            4 => ErrorCode::TableNotFound,
            5 => ErrorCode::Parse,
            6 => ErrorCode::Shutdown,
            7 => ErrorCode::TooManyConnections,
            8 => ErrorCode::Unsupported,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::NotHello => "not-hello",
            ErrorCode::Mechanism => "mechanism",
            ErrorCode::TableNotFound => "table-not-found",
            ErrorCode::Parse => "parse",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::TooManyConnections => "too-many-connections",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// A release query in wire form: the closed set of
/// [`LipschitzQuery`] shapes the protocol can name, with
/// [`WireQuery::build`] mapping each onto the core implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireQuery {
    /// [`StateFrequencyQuery`]: relative frequency of one state.
    StateFrequency {
        /// The state whose frequency is released.
        state: u32,
        /// Expected database length.
        length: u32,
    },
    /// [`StateCountQuery`]: absolute count of one state.
    StateCount {
        /// The state whose count is released.
        state: u32,
        /// Expected database length.
        length: u32,
    },
    /// [`RelativeFrequencyHistogram`]: the full frequency histogram.
    Histogram {
        /// Number of states in the histogram.
        num_states: u32,
        /// Expected database length.
        length: u32,
    },
    /// [`RangeCountQuery`]: count of events in `[lo, hi]`.
    RangeCount {
        /// Inclusive lower state.
        lo: u32,
        /// Inclusive upper state.
        hi: u32,
        /// Number of states in the space.
        num_states: u32,
        /// Expected database length.
        length: u32,
    },
    /// [`MeanStateQuery`]: mean state index.
    MeanState {
        /// Number of states in the space.
        num_states: u32,
        /// Expected database length.
        length: u32,
    },
}

impl WireQuery {
    /// Instantiates the core query this wire form names.
    ///
    /// # Errors
    /// [`pufferfish_core::PufferfishError`] when the parameters are invalid
    /// (empty histogram, inverted range, …) — surfaced to the client as a
    /// [`Frame::Error`] with [`ErrorCode::Malformed`].
    pub fn build(&self) -> pufferfish_core::Result<Arc<dyn LipschitzQuery>> {
        Ok(match *self {
            WireQuery::StateFrequency { state, length } => {
                Arc::new(StateFrequencyQuery::new(state as usize, length as usize))
            }
            WireQuery::StateCount { state, length } => {
                Arc::new(StateCountQuery::new(state as usize, length as usize))
            }
            WireQuery::Histogram { num_states, length } => Arc::new(
                RelativeFrequencyHistogram::new(num_states as usize, length as usize)?,
            ),
            WireQuery::RangeCount {
                lo,
                hi,
                num_states,
                length,
            } => Arc::new(RangeCountQuery::new(
                lo as usize,
                hi as usize,
                num_states as usize,
                length as usize,
            )?),
            WireQuery::MeanState { num_states, length } => {
                Arc::new(MeanStateQuery::new(num_states as usize, length as usize)?)
            }
        })
    }

    fn tag(&self) -> u8 {
        match self {
            WireQuery::StateFrequency { .. } => 0,
            WireQuery::StateCount { .. } => 1,
            WireQuery::Histogram { .. } => 2,
            WireQuery::RangeCount { .. } => 3,
            WireQuery::MeanState { .. } => 4,
        }
    }
}

/// The numeric image of [`ServiceStats`] carried by a
/// [`Frame::StatsOk`] response.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireStats {
    /// Calibration-cache hits.
    pub hits: u64,
    /// Calibration-cache misses.
    pub misses: u64,
    /// Stampedes coalesced into an in-flight calibration.
    pub coalesced: u64,
    /// Distinct calibrations currently cached.
    pub cached_calibrations: u64,
    /// Requests admitted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Admission-queue capacity.
    pub queue_capacity: u64,
    /// Submissions refused at capacity (back-pressure events).
    pub queue_refusals: u64,
    /// Deepest the admission queue has ever been.
    pub queue_high_water: u64,
    /// Requests fulfilled so far.
    pub served: u64,
    /// Users with at least one recorded spend.
    pub users: u64,
    /// Composed ε spend summed over all users.
    pub spent_epsilon: f64,
    /// Sequential sign/MAD noise tests the release monitor completed
    /// (zero when no monitor is attached).
    pub monitor_noise_tests: u64,
    /// Noise tests that rejected (miscalibration verdicts).
    pub monitor_noise_failures: u64,
    /// Event windows the drift detector has scored.
    pub drift_windows: u64,
    /// The last window's drift score in units of the detection slack
    /// (> 1 means the window violated the calibrated class bounds).
    pub drift_score: f64,
    /// Whether the drift detector is currently tripped.
    pub drifted: bool,
    /// Canary recalibrations performed (engine swaps).
    pub recalibrations: u64,
}

impl From<ServiceStats> for WireStats {
    fn from(stats: ServiceStats) -> Self {
        let monitor = stats.monitor.unwrap_or_default();
        WireStats {
            hits: stats.cache.hits,
            misses: stats.cache.misses,
            coalesced: stats.cache.coalesced,
            cached_calibrations: stats.cached_calibrations as u64,
            queue_depth: stats.queue_depth as u64,
            queue_capacity: stats.queue_capacity as u64,
            queue_refusals: stats.queue_refusals,
            queue_high_water: stats.queue_high_water as u64,
            served: stats.served,
            users: stats.users as u64,
            spent_epsilon: stats.spent_epsilon,
            monitor_noise_tests: monitor.noise_tests,
            monitor_noise_failures: monitor.noise_failures,
            drift_windows: monitor.drift_windows,
            drift_score: monitor.drift_score,
            drifted: monitor.drifted,
            recalibrations: monitor.recalibrations,
        }
    }
}

/// A metric's value inside a [`WireMetric`] — the wire image of the
/// telemetry registry's counter / gauge / histogram-summary kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireMetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A point-in-time gauge.
    Gauge(u64),
    /// A latency-histogram summary (nanoseconds).
    Histogram {
        /// Recorded samples.
        count: u64,
        /// Exact maximum sample.
        max: u64,
        /// Mean sample.
        mean: f64,
        /// 50th percentile.
        p50: u64,
        /// 99th percentile.
        p99: u64,
        /// 99.9th percentile.
        p999: u64,
    },
}

impl WireMetricValue {
    fn tag(self) -> u8 {
        match self {
            WireMetricValue::Counter(_) => 0,
            WireMetricValue::Gauge(_) => 1,
            WireMetricValue::Histogram { .. } => 2,
        }
    }
}

/// One named metric inside a [`Frame::MetricsOk`] response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMetric {
    /// The registry name (e.g. `stage_engine_ns`).
    pub name: String,
    /// Its value at snapshot time.
    pub value: WireMetricValue,
}

impl std::fmt::Display for WireMetric {
    /// The same one-line text exposition the telemetry registry's
    /// `MetricSample` renders, so server-side `render_text` and client-side
    /// METRICS output grep identically.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.value {
            WireMetricValue::Counter(v) => write!(f, "{} counter {v}", self.name),
            WireMetricValue::Gauge(v) => write!(f, "{} gauge {v}", self.name),
            WireMetricValue::Histogram {
                count,
                max,
                mean,
                p50,
                p99,
                p999,
            } => write!(
                f,
                "{} histogram count={count} mean={mean:.1} p50={p50} p99={p99} p999={p999} max={max}",
                self.name
            ),
        }
    }
}

/// One window's released values inside a [`WireCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireWindow {
    /// Exclusive end offset of the window within the cell's sequence.
    pub end: u32,
    /// The noisy released values (true values never cross the wire).
    pub values: Vec<f64>,
}

/// One group-by cell of a query result in wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct WireCell {
    /// The group key.
    pub key: String,
    /// Per-window releases, in window order.
    pub windows: Vec<WireWindow>,
}

/// A query result in wire form — the payload of [`Frame::QueryOk`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireQueryResult {
    /// The mechanism family the planner chose (its display name).
    pub mechanism: String,
    /// The Laplace scale every release applied.
    pub noise_scale: f64,
    /// The total ε the query was charged.
    pub total_epsilon: f64,
    /// Per-cell results, in table group order.
    pub cells: Vec<WireCell>,
}

/// One refinement step of a [`Frame::Progressive`] request: the wire image
/// of `pufferfish_service::RefinementStep`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRefinementStep {
    /// Window-prefix length this step answers over.
    pub prefix: u32,
    /// The ε this step spends.
    pub epsilon: f64,
    /// The planned error bound for this step.
    pub error_bound: f64,
}

/// One protocol frame. Kinds `0x01–0x07` are requests (client → server),
/// `0x81–0x89` are responses (server → client).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Authenticates the connection under a tenant name. Must be the first
    /// frame on every connection; the tenant scopes every per-frame user id
    /// (`BudgetAccountant` charges `tenant#user`), so no connection can
    /// spend another tenant's budgets by quoting a raw user string.
    Hello {
        /// The tenant every later frame's user id is scoped under.
        tenant: String,
    },
    /// One release request.
    Release {
        /// The user (within the connection's tenant) the release is charged
        /// to — per-frame, so one connection can multiplex millions of
        /// distinct users.
        user: u64,
        /// The query to release.
        query: WireQuery,
        /// Per-release privacy parameter ε.
        epsilon: f64,
        /// Noise seed (the service is deterministic given the seed).
        seed: u64,
        /// The database: a state sequence, each state in `0..65536`.
        database: Vec<u16>,
    },
    /// One declarative query against a server-registered table.
    Query {
        /// The user (within the tenant) the plan's total ε is charged to.
        user: u64,
        /// Name of a table registered on the server.
        table: String,
        /// The query statement text (`pufferfish-query` grammar).
        statement: String,
        /// Noise seed.
        seed: u64,
    },
    /// One progressive release: the server streams one [`Frame::RefineOk`]
    /// per schedule step — coarse prefix estimate first, refinements as the
    /// schedule completes — all echoing this request's sequence number, so
    /// they interleave freely with other pipelined traffic.
    Progressive {
        /// The user (within the tenant) each step's ε is charged to.
        user: u64,
        /// Confidence level the per-step error bounds are certified at.
        confidence: f64,
        /// Noise seed (the final refinement is bitwise-identical to a
        /// one-shot release at this seed and the schedule's total ε).
        seed: u64,
        /// The refinement schedule, coarse to fine; the last step's prefix
        /// is the full window.
        steps: Vec<WireRefinementStep>,
        /// The window: a state sequence, each state in `0..65536`.
        database: Vec<u16>,
    },
    /// Requests a [`Frame::StatsOk`] observability snapshot.
    Stats,
    /// Requests a [`Frame::MetricsOk`] telemetry-registry snapshot. Servers
    /// without telemetry attached answer [`Frame::Error`] with
    /// [`ErrorCode::Unsupported`].
    Metrics,
    /// Clean client-initiated close: the server finishes every in-flight
    /// response on this connection, then closes it.
    Goodbye,
    /// HELLO accepted; the server's negotiated limits.
    HelloOk {
        /// In-flight requests the server allows per connection before
        /// answering [`Frame::Busy`].
        max_pipeline: u32,
        /// Largest frame the server will read or write.
        max_frame_len: u32,
    },
    /// A successful release. Only the noisy values and the scale cross the
    /// wire — the wire is the trust boundary, so `true_values` are stripped.
    ReleaseOk {
        /// Laplace scale applied to each coordinate.
        scale: f64,
        /// The privatised query answers.
        values: Vec<f64>,
    },
    /// A successful declarative query.
    QueryOk(WireQueryResult),
    /// One step of a [`Frame::Progressive`] answer stream. `step ==
    /// total_steps` marks the final (full-window) refinement.
    RefineOk {
        /// 1-based index of this step within the schedule.
        step: u32,
        /// Total steps in the schedule.
        total_steps: u32,
        /// Window-prefix length this estimate answers over.
        prefix: u32,
        /// Laplace scale applied to each coordinate.
        scale: f64,
        /// The ε this step spent.
        epsilon: f64,
        /// Certified error bound recomputed from the actual release scale.
        certified_error: f64,
        /// Cumulative ε consumed by the stream so far (monotone).
        spent_epsilon: f64,
        /// The privatised answers for the prefix.
        values: Vec<f64>,
    },
    /// The observability snapshot.
    StatsOk(WireStats),
    /// The telemetry-registry snapshot: every registered metric, sorted by
    /// name.
    MetricsOk(Vec<WireMetric>),
    /// Admission control refused the request (queue full or the connection's
    /// pipeline limit reached). The request spent **no** budget; retry after
    /// the hint.
    Busy {
        /// Suggested client back-off in milliseconds.
        retry_hint_ms: u32,
    },
    /// The user's ε budget cannot admit the request.
    BudgetExhausted {
        /// The ε the request asked for.
        requested: f64,
        /// Budget still available under the composition guarantee.
        remaining: f64,
    },
    /// A typed failure.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Release { .. } => 0x02,
            Frame::Query { .. } => 0x03,
            Frame::Progressive { .. } => 0x07,
            Frame::Stats => 0x04,
            Frame::Goodbye => 0x05,
            Frame::Metrics => 0x06,
            Frame::HelloOk { .. } => 0x81,
            Frame::ReleaseOk { .. } => 0x82,
            Frame::QueryOk(_) => 0x83,
            Frame::RefineOk { .. } => 0x89,
            Frame::StatsOk(_) => 0x84,
            Frame::MetricsOk(_) => 0x88,
            Frame::Busy { .. } => 0x85,
            Frame::BudgetExhausted { .. } => 0x86,
            Frame::Error { .. } => 0x87,
        }
    }

    /// Builds a [`Frame::Release`] from a `usize` state sequence, checking
    /// every state fits the wire's `u16` representation.
    ///
    /// # Errors
    /// [`FrameError::Unencodable`] when a state exceeds `u16::MAX`.
    pub fn release(
        user: u64,
        query: WireQuery,
        database: &[usize],
        epsilon: f64,
        seed: u64,
    ) -> Result<Frame, FrameError> {
        let database = database
            .iter()
            .map(|&s| {
                u16::try_from(s).map_err(|_| {
                    FrameError::Unencodable(format!("state {s} exceeds the wire maximum 65535"))
                })
            })
            .collect::<Result<Vec<u16>, FrameError>>()?;
        Ok(Frame::Release {
            user,
            query,
            epsilon,
            seed,
            database,
        })
    }

    /// Builds a [`Frame::Progressive`] from `usize` prefixes and states,
    /// checking each fits its wire representation (`u32` prefixes, `u16`
    /// states).
    ///
    /// # Errors
    /// [`FrameError::Unencodable`] when a prefix exceeds `u32::MAX` or a
    /// state exceeds `u16::MAX`.
    pub fn progressive(
        user: u64,
        confidence: f64,
        seed: u64,
        steps: &[(usize, f64, f64)],
        database: &[usize],
    ) -> Result<Frame, FrameError> {
        let steps = steps
            .iter()
            .map(|&(prefix, epsilon, error_bound)| {
                let prefix = u32::try_from(prefix).map_err(|_| {
                    FrameError::Unencodable(format!("prefix {prefix} exceeds the wire maximum"))
                })?;
                Ok(WireRefinementStep {
                    prefix,
                    epsilon,
                    error_bound,
                })
            })
            .collect::<Result<Vec<WireRefinementStep>, FrameError>>()?;
        let database = database
            .iter()
            .map(|&s| {
                u16::try_from(s).map_err(|_| {
                    FrameError::Unencodable(format!("state {s} exceeds the wire maximum 65535"))
                })
            })
            .collect::<Result<Vec<u16>, FrameError>>()?;
        Ok(Frame::Progressive {
            user,
            confidence,
            seed,
            steps,
            database,
        })
    }
}

/// A sequence-numbered frame — the unit the wire carries.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen sequence number (echoed on responses).
    pub seq: u64,
    /// The frame.
    pub frame: Frame,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), FrameError> {
    let len = u32::try_from(s.len())
        .map_err(|_| FrameError::Unencodable(format!("string of {} bytes", s.len())))?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_f64s(out: &mut Vec<u8>, values: &[f64]) -> Result<(), FrameError> {
    let len = u32::try_from(values.len())
        .map_err(|_| FrameError::Unencodable(format!("{} values", values.len())))?;
    put_u32(out, len);
    for &v in values {
        put_f64(out, v);
    }
    Ok(())
}

/// Encodes one envelope into its full wire representation (length prefix
/// included).
///
/// # Errors
/// [`FrameError::Unencodable`] when the encoded frame would exceed
/// `max_frame_len` or a field cannot be represented on the wire.
pub fn encode(envelope: &Envelope, max_frame_len: u32) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::with_capacity(64);
    put_u32(&mut out, 0); // patched below
    put_u32(&mut out, MAGIC);
    out.push(VERSION);
    out.push(envelope.frame.kind());
    put_u64(&mut out, envelope.seq);

    match &envelope.frame {
        Frame::Hello { tenant } => put_str(&mut out, tenant)?,
        Frame::Release {
            user,
            query,
            epsilon,
            seed,
            database,
        } => {
            put_u64(&mut out, *user);
            out.push(query.tag());
            match *query {
                WireQuery::StateFrequency { state, length }
                | WireQuery::StateCount { state, length } => {
                    put_u32(&mut out, state);
                    put_u32(&mut out, length);
                }
                WireQuery::Histogram { num_states, length }
                | WireQuery::MeanState { num_states, length } => {
                    put_u32(&mut out, num_states);
                    put_u32(&mut out, length);
                }
                WireQuery::RangeCount {
                    lo,
                    hi,
                    num_states,
                    length,
                } => {
                    put_u32(&mut out, lo);
                    put_u32(&mut out, hi);
                    put_u32(&mut out, num_states);
                    put_u32(&mut out, length);
                }
            }
            put_f64(&mut out, *epsilon);
            put_u64(&mut out, *seed);
            let len = u32::try_from(database.len()).map_err(|_| {
                FrameError::Unencodable(format!("database of {} events", database.len()))
            })?;
            put_u32(&mut out, len);
            for &state in database {
                put_u16(&mut out, state);
            }
        }
        Frame::Query {
            user,
            table,
            statement,
            seed,
        } => {
            put_u64(&mut out, *user);
            put_str(&mut out, table)?;
            put_str(&mut out, statement)?;
            put_u64(&mut out, *seed);
        }
        Frame::Progressive {
            user,
            confidence,
            seed,
            steps,
            database,
        } => {
            put_u64(&mut out, *user);
            put_f64(&mut out, *confidence);
            put_u64(&mut out, *seed);
            let count = u32::try_from(steps.len())
                .map_err(|_| FrameError::Unencodable(format!("{} steps", steps.len())))?;
            put_u32(&mut out, count);
            for step in steps {
                put_u32(&mut out, step.prefix);
                put_f64(&mut out, step.epsilon);
                put_f64(&mut out, step.error_bound);
            }
            let len = u32::try_from(database.len()).map_err(|_| {
                FrameError::Unencodable(format!("database of {} events", database.len()))
            })?;
            put_u32(&mut out, len);
            for &state in database {
                put_u16(&mut out, state);
            }
        }
        Frame::Stats | Frame::Goodbye | Frame::Metrics => {}
        Frame::HelloOk {
            max_pipeline,
            max_frame_len,
        } => {
            put_u32(&mut out, *max_pipeline);
            put_u32(&mut out, *max_frame_len);
        }
        Frame::ReleaseOk { scale, values } => {
            put_f64(&mut out, *scale);
            put_f64s(&mut out, values)?;
        }
        Frame::QueryOk(result) => {
            put_str(&mut out, &result.mechanism)?;
            put_f64(&mut out, result.noise_scale);
            put_f64(&mut out, result.total_epsilon);
            let cells = u32::try_from(result.cells.len())
                .map_err(|_| FrameError::Unencodable(format!("{} cells", result.cells.len())))?;
            put_u32(&mut out, cells);
            for cell in &result.cells {
                put_str(&mut out, &cell.key)?;
                let windows = u32::try_from(cell.windows.len()).map_err(|_| {
                    FrameError::Unencodable(format!("{} windows", cell.windows.len()))
                })?;
                put_u32(&mut out, windows);
                for window in &cell.windows {
                    put_u32(&mut out, window.end);
                    put_f64s(&mut out, &window.values)?;
                }
            }
        }
        Frame::RefineOk {
            step,
            total_steps,
            prefix,
            scale,
            epsilon,
            certified_error,
            spent_epsilon,
            values,
        } => {
            put_u32(&mut out, *step);
            put_u32(&mut out, *total_steps);
            put_u32(&mut out, *prefix);
            put_f64(&mut out, *scale);
            put_f64(&mut out, *epsilon);
            put_f64(&mut out, *certified_error);
            put_f64(&mut out, *spent_epsilon);
            put_f64s(&mut out, values)?;
        }
        Frame::StatsOk(stats) => {
            put_u64(&mut out, stats.hits);
            put_u64(&mut out, stats.misses);
            put_u64(&mut out, stats.coalesced);
            put_u64(&mut out, stats.cached_calibrations);
            put_u64(&mut out, stats.queue_depth);
            put_u64(&mut out, stats.queue_capacity);
            put_u64(&mut out, stats.queue_refusals);
            put_u64(&mut out, stats.queue_high_water);
            put_u64(&mut out, stats.served);
            put_u64(&mut out, stats.users);
            put_f64(&mut out, stats.spent_epsilon);
            put_u64(&mut out, stats.monitor_noise_tests);
            put_u64(&mut out, stats.monitor_noise_failures);
            put_u64(&mut out, stats.drift_windows);
            put_f64(&mut out, stats.drift_score);
            put_u16(&mut out, u16::from(stats.drifted));
            put_u64(&mut out, stats.recalibrations);
        }
        Frame::MetricsOk(metrics) => {
            let count = u32::try_from(metrics.len())
                .map_err(|_| FrameError::Unencodable(format!("{} metrics", metrics.len())))?;
            put_u32(&mut out, count);
            for metric in metrics {
                put_str(&mut out, &metric.name)?;
                out.push(metric.value.tag());
                match metric.value {
                    WireMetricValue::Counter(v) | WireMetricValue::Gauge(v) => {
                        put_u64(&mut out, v);
                    }
                    WireMetricValue::Histogram {
                        count,
                        max,
                        mean,
                        p50,
                        p99,
                        p999,
                    } => {
                        put_u64(&mut out, count);
                        put_u64(&mut out, max);
                        put_f64(&mut out, mean);
                        put_u64(&mut out, p50);
                        put_u64(&mut out, p99);
                        put_u64(&mut out, p999);
                    }
                }
            }
        }
        Frame::Busy { retry_hint_ms } => put_u32(&mut out, *retry_hint_ms),
        Frame::BudgetExhausted {
            requested,
            remaining,
        } => {
            put_f64(&mut out, *requested);
            put_f64(&mut out, *remaining);
        }
        Frame::Error { code, message } => {
            put_u16(&mut out, *code as u16);
            put_str(&mut out, message)?;
        }
    }

    let frame_len = out.len() - 4;
    let declared = u32::try_from(frame_len)
        .map_err(|_| FrameError::Unencodable(format!("frame of {frame_len} bytes")))?;
    if declared > max_frame_len {
        return Err(FrameError::Unencodable(format!(
            "frame of {declared} bytes exceeds the maximum {max_frame_len}"
        )));
    }
    out[..4].copy_from_slice(&declared.to_le_bytes());
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over a frame payload with bounds-checked typed reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a collection count and proves the payload could actually hold
    /// `count` items of `item_bytes` each *before* any allocation happens —
    /// the guard that makes adversarial "4-billion-element" headers cheap to
    /// refuse.
    fn count(&mut self, item_bytes: usize, what: &str) -> Result<usize, FrameError> {
        let count = self.u32()? as usize;
        let needed = count
            .checked_mul(item_bytes)
            .ok_or_else(|| FrameError::Malformed(format!("{what} count {count} overflows")))?;
        if needed > self.remaining() {
            return Err(FrameError::Malformed(format!(
                "{what} declares {count} items ({needed} bytes) but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(count)
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.count(1, "string")?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Malformed("string is not UTF-8".to_string()))
    }

    fn f64s(&mut self, what: &str) -> Result<Vec<f64>, FrameError> {
        let count = self.count(8, what)?;
        (0..count).map(|_| self.f64()).collect()
    }
}

/// Decodes one envelope from the front of `buf`, returning it and the
/// number of bytes consumed.
///
/// # Errors
/// [`FrameError::Truncated`] when `buf` does not yet hold a complete frame
/// (streaming callers read more and retry); [`FrameError::Oversized`] when
/// the declared length exceeds `max_frame_len`; the other variants for
/// structurally broken frames.
pub fn decode(buf: &[u8], max_frame_len: u32) -> Result<(Envelope, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated {
            needed: 4,
            available: buf.len(),
        });
    }
    let declared = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if declared > max_frame_len {
        return Err(FrameError::Oversized {
            declared,
            max: max_frame_len,
        });
    }
    let frame_len = declared as usize;
    if frame_len < HEADER_LEN {
        return Err(FrameError::Malformed(format!(
            "declared length {frame_len} is shorter than the {HEADER_LEN}-byte header"
        )));
    }
    if buf.len() < 4 + frame_len {
        return Err(FrameError::Truncated {
            needed: 4 + frame_len,
            available: buf.len(),
        });
    }
    let envelope = decode_payload(&buf[4..4 + frame_len])?;
    Ok((envelope, 4 + frame_len))
}

/// Decodes a frame payload (everything after the length prefix).
///
/// # Errors
/// As for [`decode`], minus the length-prefix checks.
pub fn decode_payload(payload: &[u8]) -> Result<Envelope, FrameError> {
    let mut r = Reader::new(payload);
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let kind = r.u8()?;
    let seq = r.u64()?;

    let frame = match kind {
        0x01 => Frame::Hello {
            tenant: r.string()?,
        },
        0x02 => {
            let user = r.u64()?;
            let tag = r.u8()?;
            let query = match tag {
                0 => WireQuery::StateFrequency {
                    state: r.u32()?,
                    length: r.u32()?,
                },
                1 => WireQuery::StateCount {
                    state: r.u32()?,
                    length: r.u32()?,
                },
                2 => WireQuery::Histogram {
                    num_states: r.u32()?,
                    length: r.u32()?,
                },
                3 => WireQuery::RangeCount {
                    lo: r.u32()?,
                    hi: r.u32()?,
                    num_states: r.u32()?,
                    length: r.u32()?,
                },
                4 => WireQuery::MeanState {
                    num_states: r.u32()?,
                    length: r.u32()?,
                },
                other => return Err(FrameError::Malformed(format!("unknown query tag {other}"))),
            };
            let epsilon = r.f64()?;
            let seed = r.u64()?;
            let count = r.count(2, "database")?;
            let database = (0..count).map(|_| r.u16()).collect::<Result<_, _>>()?;
            Frame::Release {
                user,
                query,
                epsilon,
                seed,
                database,
            }
        }
        0x03 => Frame::Query {
            user: r.u64()?,
            table: r.string()?,
            statement: r.string()?,
            seed: r.u64()?,
        },
        0x04 => Frame::Stats,
        0x05 => Frame::Goodbye,
        0x06 => Frame::Metrics,
        0x07 => {
            let user = r.u64()?;
            let confidence = r.f64()?;
            let seed = r.u64()?;
            // A step is 20 bytes: prefix (4) + epsilon (8) + error bound (8).
            let step_count = r.count(20, "refinement steps")?;
            let mut steps = Vec::with_capacity(step_count);
            for _ in 0..step_count {
                steps.push(WireRefinementStep {
                    prefix: r.u32()?,
                    epsilon: r.f64()?,
                    error_bound: r.f64()?,
                });
            }
            let count = r.count(2, "database")?;
            let database = (0..count).map(|_| r.u16()).collect::<Result<_, _>>()?;
            Frame::Progressive {
                user,
                confidence,
                seed,
                steps,
                database,
            }
        }
        0x81 => Frame::HelloOk {
            max_pipeline: r.u32()?,
            max_frame_len: r.u32()?,
        },
        0x82 => Frame::ReleaseOk {
            scale: r.f64()?,
            values: r.f64s("values")?,
        },
        0x83 => {
            let mechanism = r.string()?;
            let noise_scale = r.f64()?;
            let total_epsilon = r.f64()?;
            // A cell is at least 8 bytes (empty key + zero windows).
            let cell_count = r.count(8, "cells")?;
            let mut cells = Vec::with_capacity(cell_count);
            for _ in 0..cell_count {
                let key = r.string()?;
                // A window is at least 8 bytes (end + empty values).
                let window_count = r.count(8, "windows")?;
                let mut windows = Vec::with_capacity(window_count);
                for _ in 0..window_count {
                    windows.push(WireWindow {
                        end: r.u32()?,
                        values: r.f64s("window values")?,
                    });
                }
                cells.push(WireCell { key, windows });
            }
            Frame::QueryOk(WireQueryResult {
                mechanism,
                noise_scale,
                total_epsilon,
                cells,
            })
        }
        0x84 => Frame::StatsOk(WireStats {
            hits: r.u64()?,
            misses: r.u64()?,
            coalesced: r.u64()?,
            cached_calibrations: r.u64()?,
            queue_depth: r.u64()?,
            queue_capacity: r.u64()?,
            queue_refusals: r.u64()?,
            queue_high_water: r.u64()?,
            served: r.u64()?,
            users: r.u64()?,
            spent_epsilon: r.f64()?,
            monitor_noise_tests: r.u64()?,
            monitor_noise_failures: r.u64()?,
            drift_windows: r.u64()?,
            drift_score: r.f64()?,
            drifted: match r.u16()? {
                0 => false,
                1 => true,
                other => {
                    return Err(FrameError::Malformed(format!(
                        "drifted flag must be 0 or 1, found {other}"
                    )))
                }
            },
            recalibrations: r.u64()?,
        }),
        0x85 => Frame::Busy {
            retry_hint_ms: r.u32()?,
        },
        0x89 => Frame::RefineOk {
            step: r.u32()?,
            total_steps: r.u32()?,
            prefix: r.u32()?,
            scale: r.f64()?,
            epsilon: r.f64()?,
            certified_error: r.f64()?,
            spent_epsilon: r.f64()?,
            values: r.f64s("refined values")?,
        },
        0x88 => {
            // A metric is at least 13 bytes: empty name (4) + kind tag (1) +
            // one u64 (8) — checked against the remaining payload before any
            // allocation, like every other collection count.
            let count = r.count(13, "metrics")?;
            let mut metrics = Vec::with_capacity(count);
            for _ in 0..count {
                let name = r.string()?;
                let tag = r.u8()?;
                let value = match tag {
                    0 => WireMetricValue::Counter(r.u64()?),
                    1 => WireMetricValue::Gauge(r.u64()?),
                    2 => WireMetricValue::Histogram {
                        count: r.u64()?,
                        max: r.u64()?,
                        mean: r.f64()?,
                        p50: r.u64()?,
                        p99: r.u64()?,
                        p999: r.u64()?,
                    },
                    other => {
                        return Err(FrameError::Malformed(format!(
                            "unknown metric kind {other}"
                        )))
                    }
                };
                metrics.push(WireMetric { name, value });
            }
            Frame::MetricsOk(metrics)
        }
        0x86 => Frame::BudgetExhausted {
            requested: r.f64()?,
            remaining: r.f64()?,
        },
        0x87 => {
            let raw = r.u16()?;
            let code = ErrorCode::from_u16(raw)
                .ok_or_else(|| FrameError::Malformed(format!("unknown error code {raw}")))?;
            Frame::Error {
                code,
                message: r.string()?,
            }
        }
        other => return Err(FrameError::UnknownKind { found: other }),
    };

    if r.remaining() != 0 {
        return Err(FrameError::Malformed(format!(
            "{} trailing bytes after the frame body",
            r.remaining()
        )));
    }
    Ok(Envelope { seq, frame })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) -> Envelope {
        let envelope = Envelope { seq: 42, frame };
        let bytes = encode(&envelope, DEFAULT_MAX_FRAME_LEN).unwrap();
        let (decoded, consumed) = decode(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, envelope);
        decoded
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Hello {
            tenant: "load-α".to_string(),
        });
        round_trip(
            Frame::release(
                7,
                WireQuery::StateFrequency {
                    state: 1,
                    length: 60,
                },
                &[0, 1, 1, 0],
                0.5,
                99,
            )
            .unwrap(),
        );
        round_trip(Frame::Query {
            user: 3,
            table: "sensor".to_string(),
            statement: "HISTOGRAM WINDOW 30 EPSILON 0.2".to_string(),
            seed: 5,
        });
        round_trip(
            Frame::progressive(
                9,
                0.95,
                77,
                &[(8, 0.25, 4.0), (16, 0.25, 2.0)],
                &[0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1, 0, 1, 1],
            )
            .unwrap(),
        );
        round_trip(Frame::Stats);
        round_trip(Frame::Goodbye);
        round_trip(Frame::HelloOk {
            max_pipeline: 128,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        });
        round_trip(Frame::ReleaseOk {
            scale: 1.25,
            values: vec![0.5, -0.25, 3.75],
        });
        round_trip(Frame::RefineOk {
            step: 1,
            total_steps: 2,
            prefix: 8,
            scale: 2.5,
            epsilon: 0.25,
            certified_error: 3.75,
            spent_epsilon: 0.25,
            values: vec![4.0, 4.5],
        });
        round_trip(Frame::QueryOk(WireQueryResult {
            mechanism: "mqm".to_string(),
            noise_scale: 0.75,
            total_epsilon: 0.6,
            cells: vec![WireCell {
                key: "cell-a".to_string(),
                windows: vec![
                    WireWindow {
                        end: 30,
                        values: vec![1.0, 2.0],
                    },
                    WireWindow {
                        end: 60,
                        values: vec![],
                    },
                ],
            }],
        }));
        round_trip(Frame::StatsOk(WireStats {
            hits: 1,
            misses: 2,
            coalesced: 3,
            cached_calibrations: 4,
            queue_depth: 5,
            queue_capacity: 6,
            queue_refusals: 7,
            queue_high_water: 8,
            served: 9,
            users: 10,
            spent_epsilon: 1.5,
            monitor_noise_tests: 11,
            monitor_noise_failures: 12,
            drift_windows: 13,
            drift_score: 0.75,
            drifted: true,
            recalibrations: 14,
        }));
        round_trip(Frame::Metrics);
        round_trip(Frame::MetricsOk(vec![
            WireMetric {
                name: "engine_mqm_approx_cache_hits_total".to_string(),
                value: WireMetricValue::Counter(17),
            },
            WireMetric {
                name: "queue_depth".to_string(),
                value: WireMetricValue::Gauge(3),
            },
            WireMetric {
                name: "stage_engine_ns".to_string(),
                value: WireMetricValue::Histogram {
                    count: 1000,
                    max: 90_000,
                    mean: 1234.5,
                    p50: 1100,
                    p99: 44_000,
                    p999: 88_000,
                },
            },
        ]));
        round_trip(Frame::Busy { retry_hint_ms: 2 });
        round_trip(Frame::BudgetExhausted {
            requested: 0.5,
            remaining: 0.25,
        });
        round_trip(Frame::Error {
            code: ErrorCode::Parse,
            message: "no".to_string(),
        });
    }

    #[test]
    fn progressive_builder_refuses_unencodable_inputs() {
        let err = Frame::progressive(0, 0.9, 1, &[(8, 0.1, 1.0)], &[70_000]).unwrap_err();
        assert!(matches!(err, FrameError::Unencodable(_)));
        let err = Frame::progressive(0, 0.9, 1, &[(1 << 40, 0.1, 1.0)], &[0, 1]).unwrap_err();
        assert!(matches!(err, FrameError::Unencodable(_)));
    }

    #[test]
    fn release_builder_refuses_wide_states() {
        let err = Frame::release(
            0,
            WireQuery::StateCount {
                state: 0,
                length: 1,
            },
            &[70_000],
            0.5,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, FrameError::Unencodable(_)));
    }

    #[test]
    fn oversized_declared_length_is_refused_before_reading() {
        let envelope = Envelope {
            seq: 1,
            frame: Frame::Stats,
        };
        let mut bytes = encode(&envelope, DEFAULT_MAX_FRAME_LEN).unwrap();
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&bytes, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::Oversized {
                declared: u32::MAX,
                ..
            })
        ));
        // Encoding against a tiny cap is refused symmetrically.
        assert!(matches!(
            encode(&envelope, 4),
            Err(FrameError::Unencodable(_))
        ));
    }

    #[test]
    fn wire_queries_build_their_core_counterparts() {
        let query = WireQuery::Histogram {
            num_states: 3,
            length: 30,
        }
        .build()
        .unwrap();
        assert_eq!(query.output_dimension(), 3);
        assert_eq!(query.expected_length(), 30);
        // Invalid parameters surface as typed core errors, not panics.
        assert!(WireQuery::RangeCount {
            lo: 5,
            hi: 2,
            num_states: 6,
            length: 10
        }
        .build()
        .is_err());
    }

    #[test]
    fn error_codes_round_trip_and_reject_unknowns() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::NotHello,
            ErrorCode::Mechanism,
            ErrorCode::TableNotFound,
            ErrorCode::Parse,
            ErrorCode::Shutdown,
            ErrorCode::TooManyConnections,
            ErrorCode::Unsupported,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn nan_values_survive_bit_for_bit() {
        let payload = vec![f64::NAN, f64::INFINITY, -0.0];
        let envelope = Envelope {
            seq: 0,
            frame: Frame::ReleaseOk {
                scale: 1.0,
                values: payload.clone(),
            },
        };
        let bytes = encode(&envelope, DEFAULT_MAX_FRAME_LEN).unwrap();
        let (decoded, _) = decode(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
        let Frame::ReleaseOk { values, .. } = decoded.frame else {
            panic!("wrong frame kind");
        };
        for (a, b) in payload.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
