//! A blocking client for the wire protocol.
//!
//! [`NetClient`] performs the HELLO handshake on connect and then exposes
//! two levels of API: raw [`NetClient::send`] / [`NetClient::recv`] for
//! pipelined callers (the load harness keeps dozens of requests in flight
//! and matches responses by sequence number), and one-shot conveniences
//! ([`NetClient::release`], [`NetClient::query`], [`NetClient::stats`])
//! that send, wait for the matching response, and map the typed failure
//! frames onto [`ClientError`].

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{
    decode_payload, encode, Envelope, ErrorCode, Frame, FrameError, WireMetric, WireQuery,
    WireQueryResult, WireStats, DEFAULT_MAX_FRAME_LEN, HEADER_LEN,
};

/// Typed client-side failures, separating transport problems from the
/// server's own typed refusals.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(std::io::Error),
    /// A frame could not be encoded or decoded.
    Frame(FrameError),
    /// The server answered with a frame the protocol does not allow here
    /// (e.g. a response kind the request cannot produce).
    Protocol(String),
    /// Admission control refused the request; retry after the hint. No
    /// budget was spent.
    Busy {
        /// Suggested back-off in milliseconds.
        retry_hint_ms: u32,
    },
    /// The user's ε budget cannot admit the request.
    BudgetExhausted {
        /// The ε the request asked for.
        requested: f64,
        /// Budget still available.
        remaining: f64,
    },
    /// The server answered with a typed error frame.
    Remote {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Busy { retry_hint_ms } => {
                write!(f, "server busy, retry in {retry_hint_ms}ms")
            }
            ClientError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            ClientError::Remote { code, message } => write!(f, "server error ({code}): {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One refinement received by [`NetClient::progressive`]: the payload of a
/// [`Frame::RefineOk`].
#[derive(Debug, Clone, PartialEq)]
pub struct Refinement {
    /// 1-based index of this step within the schedule.
    pub step: u32,
    /// Total steps in the schedule.
    pub total_steps: u32,
    /// Window-prefix length this estimate answers over.
    pub prefix: u32,
    /// Laplace scale applied to each coordinate.
    pub scale: f64,
    /// The ε this step spent.
    pub epsilon: f64,
    /// Certified error bound recomputed from the actual release scale.
    pub certified_error: f64,
    /// Cumulative ε the stream has consumed after this step.
    pub spent_epsilon: f64,
    /// The privatised answers for the prefix.
    pub values: Vec<f64>,
}

/// A connected, authenticated protocol client.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_seq: u64,
    max_frame_len: u32,
    server_max_pipeline: u32,
}

impl NetClient {
    /// Connects to `addr` and authenticates as `tenant` (HELLO → HELLO_OK).
    ///
    /// # Errors
    /// [`ClientError::Io`] on connect failure; [`ClientError::Remote`] when
    /// the server refuses the connection (e.g. at its connection cap).
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: &str) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
        let writer = BufWriter::with_capacity(64 * 1024, stream);
        let mut client = NetClient {
            reader,
            writer,
            next_seq: 0,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            server_max_pipeline: 1,
        };
        let seq = client.send(Frame::Hello {
            tenant: tenant.to_string(),
        })?;
        let envelope = client.recv()?;
        match envelope.frame {
            Frame::HelloOk {
                max_pipeline,
                max_frame_len,
            } if envelope.seq == seq => {
                client.server_max_pipeline = max_pipeline;
                client.max_frame_len = max_frame_len;
                Ok(client)
            }
            frame => Err(frame_to_error(frame, "HELLO_OK")),
        }
    }

    /// In-flight requests the server allows on this connection.
    pub fn server_max_pipeline(&self) -> u32 {
        self.server_max_pipeline
    }

    /// Largest frame the server negotiated.
    pub fn max_frame_len(&self) -> u32 {
        self.max_frame_len
    }

    /// Encodes and buffers one request, returning its sequence number.
    /// Nothing hits the wire until [`NetClient::flush`] or
    /// [`NetClient::recv`] — pipelined callers batch many sends per flush.
    ///
    /// # Errors
    /// [`ClientError::Frame`] when the frame cannot be encoded,
    /// [`ClientError::Io`] when the buffered write fails.
    pub fn send(&mut self, frame: Frame) -> Result<u64, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = encode(&Envelope { seq, frame }, self.max_frame_len)?;
        self.writer.write_all(&bytes)?;
        Ok(seq)
    }

    /// Flushes all buffered requests to the socket.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the flush fails.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flushes, then blocks for the next response frame — which, on a
    /// pipelined connection, may answer *any* outstanding sequence number.
    ///
    /// # Errors
    /// [`ClientError::Io`] on socket failure (including EOF),
    /// [`ClientError::Frame`] on an undecodable response.
    pub fn recv(&mut self) -> Result<Envelope, ClientError> {
        self.flush()?;
        let mut prefix = [0u8; 4];
        self.reader.read_exact(&mut prefix)?;
        let declared = u32::from_le_bytes(prefix);
        if declared > self.max_frame_len {
            return Err(ClientError::Frame(FrameError::Oversized {
                declared,
                max: self.max_frame_len,
            }));
        }
        if (declared as usize) < HEADER_LEN {
            return Err(ClientError::Frame(FrameError::Malformed(format!(
                "declared length {declared} is shorter than the {HEADER_LEN}-byte header"
            ))));
        }
        let mut payload = vec![0u8; declared as usize];
        self.reader.read_exact(&mut payload)?;
        Ok(decode_payload(&payload)?)
    }

    /// One release, synchronously: send, wait for the matching response,
    /// unwrap it to `(scale, noisy_values)`.
    ///
    /// # Errors
    /// [`ClientError::Busy`] under admission control,
    /// [`ClientError::BudgetExhausted`] when the user's budget refuses the
    /// spend, [`ClientError::Remote`] for other typed server errors.
    pub fn release(
        &mut self,
        user: u64,
        query: WireQuery,
        database: &[usize],
        epsilon: f64,
        seed: u64,
    ) -> Result<(f64, Vec<f64>), ClientError> {
        let seq = self.send(Frame::release(user, query, database, epsilon, seed)?)?;
        let envelope = self.expect_seq(seq)?;
        match envelope.frame {
            Frame::ReleaseOk { scale, values } => Ok((scale, values)),
            frame => Err(frame_to_error(frame, "RELEASE_OK")),
        }
    }

    /// One declarative query, synchronously.
    ///
    /// # Errors
    /// As for [`NetClient::release`]; parse and planning failures arrive as
    /// [`ClientError::Remote`] with [`ErrorCode::Parse`] /
    /// [`ErrorCode::Unsupported`].
    pub fn query(
        &mut self,
        user: u64,
        table: &str,
        statement: &str,
        seed: u64,
    ) -> Result<WireQueryResult, ClientError> {
        let seq = self.send(Frame::Query {
            user,
            table: table.to_string(),
            statement: statement.to_string(),
            seed,
        })?;
        let envelope = self.expect_seq(seq)?;
        match envelope.frame {
            Frame::QueryOk(result) => Ok(result),
            frame => Err(frame_to_error(frame, "QUERY_OK")),
        }
    }

    /// One progressive release, synchronously: sends the schedule and
    /// blocks until the full refinement stream — one [`Frame::RefineOk`]
    /// per step, coarse to fine — has arrived. Pipelined callers who want
    /// to interleave other requests send [`Frame::progressive`] themselves
    /// and match the shared sequence number on [`NetClient::recv`].
    ///
    /// `steps` are `(prefix, epsilon, error_bound)` triples, coarse to
    /// fine; the last prefix is the full window and must equal
    /// `database.len()`.
    ///
    /// # Errors
    /// As for [`NetClient::release`]; an invalid schedule arrives as
    /// [`ClientError::Remote`] with [`ErrorCode::Malformed`].
    pub fn progressive(
        &mut self,
        user: u64,
        confidence: f64,
        seed: u64,
        steps: &[(usize, f64, f64)],
        database: &[usize],
    ) -> Result<Vec<Refinement>, ClientError> {
        let seq = self.send(Frame::progressive(user, confidence, seed, steps, database)?)?;
        let mut refinements = Vec::new();
        loop {
            let envelope = self.expect_seq(seq)?;
            match envelope.frame {
                Frame::RefineOk {
                    step,
                    total_steps,
                    prefix,
                    scale,
                    epsilon,
                    certified_error,
                    spent_epsilon,
                    values,
                } => {
                    refinements.push(Refinement {
                        step,
                        total_steps,
                        prefix,
                        scale,
                        epsilon,
                        certified_error,
                        spent_epsilon,
                        values,
                    });
                    if step == total_steps {
                        return Ok(refinements);
                    }
                }
                frame => return Err(frame_to_error(frame, "REFINE_OK")),
            }
        }
    }

    /// Fetches the server's merged observability snapshot.
    ///
    /// # Errors
    /// As for [`NetClient::release`].
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        let seq = self.send(Frame::Stats)?;
        let envelope = self.expect_seq(seq)?;
        match envelope.frame {
            Frame::StatsOk(stats) => Ok(stats),
            frame => Err(frame_to_error(frame, "STATS_OK")),
        }
    }

    /// Fetches the server's full metrics registry snapshot — every counter,
    /// gauge, and stage histogram the server's telemetry has registered.
    /// Each [`WireMetric`] `Display`s one exposition line, identical to the
    /// server-side `Registry::render_text` format.
    ///
    /// # Errors
    /// As for [`NetClient::release`]; a server started without telemetry
    /// answers with [`ErrorCode::Unsupported`], surfaced as
    /// [`ClientError::Remote`].
    pub fn metrics(&mut self) -> Result<Vec<WireMetric>, ClientError> {
        let seq = self.send(Frame::Metrics)?;
        let envelope = self.expect_seq(seq)?;
        match envelope.frame {
            Frame::MetricsOk(metrics) => Ok(metrics),
            frame => Err(frame_to_error(frame, "METRICS_OK")),
        }
    }

    /// Clean close: GOODBYE, flush, then read until the server (after
    /// finishing every in-flight response) closes the socket.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the goodbye cannot be flushed.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(Frame::Goodbye)?;
        self.flush()?;
        let mut sink = [0u8; 4096];
        while let Ok(n) = self.reader.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
        Ok(())
    }

    /// Receives until the response for `seq` arrives. Usable only when no
    /// other request is outstanding (one-shot helpers); pipelined callers
    /// match sequence numbers themselves.
    fn expect_seq(&mut self, seq: u64) -> Result<Envelope, ClientError> {
        let envelope = self.recv()?;
        if envelope.seq != seq {
            return Err(ClientError::Protocol(format!(
                "response for seq {} while waiting for {seq}",
                envelope.seq
            )));
        }
        Ok(envelope)
    }
}

/// Maps a non-success response frame onto the matching [`ClientError`].
fn frame_to_error(frame: Frame, expected: &str) -> ClientError {
    match frame {
        Frame::Busy { retry_hint_ms } => ClientError::Busy { retry_hint_ms },
        Frame::BudgetExhausted {
            requested,
            remaining,
        } => ClientError::BudgetExhausted {
            requested,
            remaining,
        },
        Frame::Error { code, message } => ClientError::Remote { code, message },
        other => ClientError::Protocol(format!("expected {expected}, got {other:?}")),
    }
}
