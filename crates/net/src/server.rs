//! The TCP front-end: listener, pipelined connection handlers, admission
//! control, graceful shutdown.
//!
//! One [`NetServer`] owns a listener thread plus two threads per live
//! connection:
//!
//! * the **reader** decodes frames off the socket and dispatches them. A
//!   RELEASE is pushed into the shared [`ReleaseService`] via `try_submit`
//!   — never the blocking path — so when the bounded admission queue
//!   refuses, the client gets a typed [`Frame::Busy`] immediately instead
//!   of stalling every other request on the connection;
//! * the **writer** drains an in-process channel of either ready frames or
//!   pending [`Ticket`]s, writing each response as soon as its release
//!   completes. Responses therefore return **out of order**, matched by
//!   sequence number — that is what lets one connection keep
//!   `max_pipeline` requests in flight.
//!
//! Back-pressure has three layers, all surfaced as typed frames rather
//! than silence: per-connection pipeline depth ([`Frame::Busy`]), the
//! service admission queue ([`Frame::Busy`] again — the budget spend is
//! rolled back by the service), and the listener's connection cap
//! ([`ErrorCode::TooManyConnections`]).
//!
//! Shutdown is graceful: the accept loop stops, readers notice the flag at
//! their next read-timeout tick and stop decoding, and each writer *drains
//! its in-flight tickets* — every admitted release still gets its response
//! frame (bounded by `drain_timeout`) before the socket closes.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pufferfish_markov::MarkovChainClass;
use pufferfish_query::{QueryError, QueryResult, QueryService, Table};
use pufferfish_service::{
    ProgressiveRelease, RefinementSchedule, RefinementStep, ReleaseRequest, ReleaseService,
    ServiceError, ServiceTelemetry, StreamBackend, Ticket,
};
use pufferfish_telemetry::{
    Counter, FlightRecorder, MetricValue, Registry, RequestTrace, Stage, StageHistograms,
};

use crate::frame::{
    decode, encode, Envelope, ErrorCode, Frame, FrameError, WireCell, WireMetric, WireMetricValue,
    WireQueryResult, WireStats, WireWindow, DEFAULT_MAX_FRAME_LEN,
};

/// Tuning for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Connections accepted concurrently; further clients get a typed
    /// [`ErrorCode::TooManyConnections`] frame and are dropped.
    pub max_connections: usize,
    /// In-flight requests allowed per connection before the server answers
    /// [`Frame::Busy`] without touching the service.
    pub max_pipeline: usize,
    /// Socket read timeout — the tick at which idle readers re-check the
    /// shutdown flag, so it bounds shutdown latency, not client patience.
    pub read_timeout: Duration,
    /// A connection silent this long is closed.
    pub idle_timeout: Duration,
    /// Largest frame read or written.
    pub max_frame_len: u32,
    /// Back-off hint carried by every [`Frame::Busy`], in milliseconds.
    pub busy_retry_hint_ms: u32,
    /// At close, how long a writer waits for each still-in-flight release
    /// before giving up with a typed [`ErrorCode::Internal`] frame.
    pub drain_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 64,
            max_pipeline: 128,
            read_timeout: Duration::from_millis(200),
            idle_timeout: Duration::from_secs(60),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            busy_retry_hint_ms: 1,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// The declarative-query surface of a server: a [`QueryService`] plus the
/// tables it serves, looked up by name from QUERY frames.
pub struct QueryEndpoint {
    service: QueryService,
    tables: HashMap<String, Table>,
}

impl QueryEndpoint {
    /// Wraps a query service with an empty table registry.
    pub fn new(service: QueryService) -> Self {
        QueryEndpoint {
            service,
            tables: HashMap::new(),
        }
    }

    /// Registers `table` under its own name, replacing any previous table
    /// with that name.
    pub fn register_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// The underlying query service.
    pub fn service(&self) -> &QueryService {
        &self.service
    }
}

/// The anytime-release surface of a server: the restriction class and the
/// stream mechanism PROGRESSIVE frames are answered with. Per-step budget is
/// charged to the shared [`ReleaseService`]'s accountant under the same
/// `tenant#user` identity RELEASE frames use.
pub struct ProgressiveEndpoint {
    class: MarkovChainClass,
    backend: StreamBackend,
}

impl ProgressiveEndpoint {
    /// An endpoint answering progressive releases for `class` via `backend`.
    pub fn new(class: MarkovChainClass, backend: StreamBackend) -> Self {
        ProgressiveEndpoint { class, backend }
    }
}

/// What a telemetry-enabled server needs from its caller: the registry
/// metrics land in (the caller keeps it to render, audit, or serve METRICS
/// elsewhere) and an optional flight recorder for slow-request breakdowns.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// The registry every layer registers against. Passing the same
    /// registry to multiple servers merges their metrics.
    pub registry: Arc<Registry>,
    /// Captures the stage breakdown of slow requests (see
    /// [`FlightRecorder`]); `None` keeps histograms only.
    pub recorder: Option<Arc<FlightRecorder>>,
}

impl TelemetryOptions {
    /// Options with a fresh registry and no recorder.
    pub fn new() -> Self {
        TelemetryOptions {
            registry: Arc::new(Registry::new()),
            recorder: None,
        }
    }
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// The net layer's resolved metric handles: wire byte counters plus the
/// decode/encode slices of the shared `stage_*_ns` family (the service
/// records admission and the worker stages into the same histograms).
#[derive(Clone)]
struct NetTelemetry {
    registry: Arc<Registry>,
    rx_bytes: Counter,
    tx_bytes: Counter,
    stages: StageHistograms,
    recorder: Option<Arc<FlightRecorder>>,
}

struct Inner {
    release: Arc<ReleaseService>,
    query: Option<QueryEndpoint>,
    progressive: Option<ProgressiveEndpoint>,
    config: NetServerConfig,
    telemetry: Option<NetTelemetry>,
    shutdown: AtomicBool,
    active: AtomicUsize,
    total: AtomicU64,
    refused: AtomicU64,
}

impl Inner {
    /// One merged observability snapshot: the release service's stats plus,
    /// when a query endpoint is attached, the query front-end's counters
    /// summed in (its queue fields are zero, so queue occupancy stays the
    /// release queue's).
    fn stats(&self) -> WireStats {
        let mut stats = WireStats::from(self.release.stats());
        if let Some(endpoint) = &self.query {
            let q = WireStats::from(endpoint.service.stats());
            stats.hits += q.hits;
            stats.misses += q.misses;
            stats.coalesced += q.coalesced;
            stats.cached_calibrations += q.cached_calibrations;
            stats.served += q.served;
            stats.users += q.users;
            stats.spent_epsilon += q.spent_epsilon;
        }
        stats
    }
}

/// A running TCP front-end over a shared [`ReleaseService`] (and optionally
/// a [`QueryEndpoint`]).
///
/// Dropping the server shuts it down gracefully; [`NetServer::shutdown`]
/// does the same explicitly. The server never owns the release service —
/// callers keep their `Arc` and decide its lifetime separately.
pub struct NetServer {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds a release-only server on `addr` (port 0 picks an ephemeral
    /// port; see [`NetServer::local_addr`]).
    ///
    /// # Errors
    /// [`std::io::Error`] when the bind fails.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        release: Arc<ReleaseService>,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        Self::launch(addr, release, None, None, config, None)
    }

    /// Binds a server that also answers QUERY frames via `query`.
    ///
    /// # Errors
    /// [`std::io::Error`] when the bind fails.
    pub fn bind_with_query<A: ToSocketAddrs>(
        addr: A,
        release: Arc<ReleaseService>,
        query: QueryEndpoint,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        Self::launch(addr, release, Some(query), None, config, None)
    }

    /// Binds a server that also answers PROGRESSIVE frames via
    /// `progressive`, streaming one [`Frame::RefineOk`] per schedule step —
    /// all echoing the request's sequence number — interleaved with the
    /// connection's other pipelined responses.
    ///
    /// # Errors
    /// [`std::io::Error`] when the bind fails.
    pub fn bind_with_progressive<A: ToSocketAddrs>(
        addr: A,
        release: Arc<ReleaseService>,
        progressive: ProgressiveEndpoint,
        config: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        Self::launch(addr, release, None, Some(progressive), config, None)
    }

    /// Binds a server with every surface the caller provides: RELEASE
    /// always, QUERY and PROGRESSIVE when their endpoints are given, and
    /// full instrumentation when `telemetry` is given.
    ///
    /// # Errors
    /// [`std::io::Error`] when the bind fails.
    pub fn bind_full<A: ToSocketAddrs>(
        addr: A,
        release: Arc<ReleaseService>,
        query: Option<QueryEndpoint>,
        progressive: Option<ProgressiveEndpoint>,
        config: NetServerConfig,
        telemetry: Option<TelemetryOptions>,
    ) -> std::io::Result<NetServer> {
        Self::launch(addr, release, query, progressive, config, telemetry)
    }

    /// Binds a fully instrumented server: wire byte counters, per-stage
    /// latency histograms (decode through encode, shared with the release
    /// service's worker stages in one `stage_*_ns` family), and the METRICS
    /// frame answering from `telemetry.registry`.
    ///
    /// This is one-stop wiring — the shared `release` service (and the
    /// engine behind it) has its telemetry enabled against the same
    /// registry, so the stage pipeline and the engine's cache counters all
    /// land in one place. Servers bound without this answer METRICS with a
    /// typed [`ErrorCode::Unsupported`].
    ///
    /// # Errors
    /// [`std::io::Error`] when the bind fails.
    pub fn bind_telemetry<A: ToSocketAddrs>(
        addr: A,
        release: Arc<ReleaseService>,
        query: Option<QueryEndpoint>,
        config: NetServerConfig,
        telemetry: TelemetryOptions,
    ) -> std::io::Result<NetServer> {
        Self::launch(addr, release, query, None, config, Some(telemetry))
    }

    fn launch<A: ToSocketAddrs>(
        addr: A,
        release: Arc<ReleaseService>,
        query: Option<QueryEndpoint>,
        progressive: Option<ProgressiveEndpoint>,
        config: NetServerConfig,
        telemetry: Option<TelemetryOptions>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let telemetry = telemetry.map(|options| {
            let service_telemetry = match &options.recorder {
                Some(recorder) => ServiceTelemetry::with_recorder(
                    Arc::clone(&options.registry),
                    Arc::clone(recorder),
                ),
                None => ServiceTelemetry::new(Arc::clone(&options.registry)),
            };
            release.enable_telemetry(Arc::new(service_telemetry));
            NetTelemetry {
                rx_bytes: options.registry.counter("net_rx_bytes_total"),
                tx_bytes: options.registry.counter("net_tx_bytes_total"),
                stages: StageHistograms::register(&options.registry, "stage"),
                recorder: options.recorder,
                registry: options.registry,
            }
        });
        let inner = Arc::new(Inner {
            release,
            query,
            progressive,
            config,
            telemetry,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            total: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_handle = std::thread::Builder::new()
            .name("pufferfish-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("spawning the accept thread failed");
        Ok(NetServer {
            inner,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.inner.active.load(Ordering::SeqCst)
    }

    /// Connections accepted over the server's lifetime.
    pub fn total_connections(&self) -> u64 {
        self.inner.total.load(Ordering::SeqCst)
    }

    /// Connections refused at the [`NetServerConfig::max_connections`] cap.
    pub fn refused_connections(&self) -> u64 {
        self.inner.refused.load(Ordering::SeqCst)
    }

    /// The merged release + query observability snapshot — the same numbers
    /// a STATS frame returns.
    pub fn stats(&self) -> WireStats {
        self.inner.stats()
    }

    /// Graceful shutdown: stop accepting, let every reader stop at its next
    /// timeout tick, drain all in-flight responses, close every socket, and
    /// join every thread. The shared [`ReleaseService`] keeps running.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(handle) = self.accept_handle.take() else {
            return;
        };
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; if even that
        // fails the listener is already dead and join returns anyway.
        let _ = TcpStream::connect(self.local_addr);
        let _ = handle.join();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        handles.retain(|h| !h.is_finished());
        if inner.active.load(Ordering::SeqCst) >= inner.config.max_connections {
            inner.refused.fetch_add(1, Ordering::SeqCst);
            refuse_connection(stream, inner.config.max_frame_len);
            continue;
        }
        inner.active.fetch_add(1, Ordering::SeqCst);
        inner.total.fetch_add(1, Ordering::SeqCst);
        let conn_inner = Arc::clone(&inner);
        match std::thread::Builder::new()
            .name("pufferfish-net-conn".to_string())
            .spawn(move || {
                handle_connection(&conn_inner, stream);
                conn_inner.active.fetch_sub(1, Ordering::SeqCst);
            }) {
            Ok(handle) => handles.push(handle),
            Err(_) => {
                inner.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
}

/// Tells an over-the-cap client *why* it was dropped with one best-effort
/// typed frame before closing.
fn refuse_connection(mut stream: TcpStream, max_frame_len: u32) {
    let envelope = Envelope {
        seq: 0,
        frame: Frame::Error {
            code: ErrorCode::TooManyConnections,
            message: "connection limit reached".to_string(),
        },
    };
    if let Ok(bytes) = encode(&envelope, max_frame_len) {
        let _ = stream.write_all(&bytes);
        let _ = stream.flush();
    }
}

/// What the reader hands the writer: a frame ready now, or a ticket whose
/// frame will be ready when the worker pool fulfils it (carrying the
/// request trace so the writer can record the encode stage and finish it).
enum Outgoing {
    Now(u64, Frame),
    Pending(u64, Ticket, Option<Arc<RequestTrace>>),
}

fn handle_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let config = &inner.config;
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.read_timeout)).is_err() {
        return;
    }
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = std::sync::mpsc::channel::<Outgoing>();
    let inflight = Arc::new(AtomicUsize::new(0));
    let writer_inflight = Arc::clone(&inflight);
    let writer_config = config.clone();
    let writer_telemetry = inner.telemetry.clone();
    let writer = std::thread::Builder::new()
        .name("pufferfish-net-write".to_string())
        .spawn(move || {
            writer_loop(
                write_stream,
                rx,
                &writer_inflight,
                &writer_config,
                writer_telemetry.as_ref(),
            )
        });
    let Ok(writer) = writer else { return };

    read_loop(inner, stream, &tx, &inflight);

    // Closing the channel is the drain signal: the writer finishes every
    // pending ticket (bounded by drain_timeout each), flushes, and exits.
    drop(tx);
    let _ = writer.join();
}

/// Decodes and dispatches frames until EOF, Goodbye, shutdown, idle
/// timeout, or a protocol error.
fn read_loop(
    inner: &Arc<Inner>,
    mut stream: TcpStream,
    tx: &Sender<Outgoing>,
    inflight: &Arc<AtomicUsize>,
) {
    let config = &inner.config;
    let mut buffer: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut scratch = [0u8; 16 * 1024];
    let mut tenant: Option<String> = None;
    let mut last_activity = Instant::now();

    loop {
        // Drain every complete frame currently buffered.
        loop {
            if buffer.is_empty() {
                break;
            }
            // Decode is timed only when telemetry is attached — the
            // uninstrumented reader never touches a clock.
            let decode_started = inner.telemetry.as_ref().map(|_| Instant::now());
            match decode(&buffer, config.max_frame_len) {
                Ok((envelope, consumed)) => {
                    let decode_ns = decode_started.map(|started| {
                        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    });
                    if let (Some(watch), Some(ns)) = (&inner.telemetry, decode_ns) {
                        watch.stages.record(Stage::Decode, ns);
                    }
                    buffer.drain(..consumed);
                    if !dispatch(inner, envelope, &mut tenant, tx, inflight, decode_ns) {
                        return;
                    }
                }
                Err(FrameError::Truncated { .. }) => break,
                Err(error) => {
                    // The stream cannot be resynchronised after a framing
                    // error; answer once, typed, and close.
                    let _ = tx.send(Outgoing::Now(
                        0,
                        Frame::Error {
                            code: ErrorCode::Malformed,
                            message: error.to_string(),
                        },
                    ));
                    return;
                }
            }
        }

        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => {
                if let Some(watch) = &inner.telemetry {
                    watch.rx_bytes.add(n as u64);
                }
                buffer.extend_from_slice(&scratch[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // The periodic tick: notice shutdown and idleness.
                if inner.shutdown.load(Ordering::SeqCst) {
                    let _ = tx.send(Outgoing::Now(
                        0,
                        Frame::Error {
                            code: ErrorCode::Shutdown,
                            message: "server shutting down".to_string(),
                        },
                    ));
                    return;
                }
                if last_activity.elapsed() >= config.idle_timeout {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one decoded envelope. Returns `false` when the connection should
/// close.
fn dispatch(
    inner: &Arc<Inner>,
    envelope: Envelope,
    tenant: &mut Option<String>,
    tx: &Sender<Outgoing>,
    inflight: &Arc<AtomicUsize>,
    decode_ns: Option<u64>,
) -> bool {
    let config = &inner.config;
    let seq = envelope.seq;
    let send_now = |frame: Frame| tx.send(Outgoing::Now(seq, frame)).is_ok();

    let Some(tenant_name) = tenant.as_deref() else {
        // First frame must authenticate the tenant.
        return match envelope.frame {
            Frame::Hello { tenant: name } => {
                *tenant = Some(name);
                send_now(Frame::HelloOk {
                    max_pipeline: config.max_pipeline as u32,
                    max_frame_len: config.max_frame_len,
                })
            }
            _ => {
                send_now(Frame::Error {
                    code: ErrorCode::NotHello,
                    message: "first frame must be HELLO".to_string(),
                });
                false
            }
        };
    };

    match envelope.frame {
        Frame::Hello { .. } => {
            send_now(Frame::Error {
                code: ErrorCode::Malformed,
                message: "duplicate HELLO".to_string(),
            });
            false
        }
        Frame::Release {
            user,
            query,
            epsilon,
            seed,
            database,
        } => {
            if inflight.load(Ordering::SeqCst) >= config.max_pipeline {
                return send_now(Frame::Busy {
                    retry_hint_ms: config.busy_retry_hint_ms,
                });
            }
            let built = match query.build() {
                Ok(built) => built,
                Err(error) => {
                    return send_now(Frame::Error {
                        code: ErrorCode::Malformed,
                        message: error.to_string(),
                    });
                }
            };
            let request = ReleaseRequest {
                // The budget identity is the *authenticated* tenant plus the
                // per-frame user id: clients multiplex millions of users per
                // connection, but can never spend another tenant's budget.
                user: scoped_user(tenant_name, user),
                query: built,
                database: database.into_iter().map(usize::from).collect(),
                epsilon,
                seed,
            };
            // With telemetry on, the request carries a trace keyed by its
            // wire seq: the decode time recorded here, admission and the
            // worker stages by the service, encode by the writer.
            let trace = inner.telemetry.as_ref().map(|_| {
                let trace = Arc::new(RequestTrace::new(seq));
                if let Some(ns) = decode_ns {
                    trace.record(Stage::Decode, ns);
                }
                trace
            });
            match inner.release.try_submit_traced(request, trace.clone()) {
                Ok(ticket) => {
                    inflight.fetch_add(1, Ordering::SeqCst);
                    tx.send(Outgoing::Pending(seq, ticket, trace)).is_ok()
                }
                Err(ServiceError::QueueFull { .. }) => send_now(Frame::Busy {
                    retry_hint_ms: config.busy_retry_hint_ms,
                }),
                Err(ServiceError::BudgetExhausted {
                    requested,
                    remaining,
                    ..
                }) => send_now(Frame::BudgetExhausted {
                    requested,
                    remaining,
                }),
                Err(ServiceError::ServiceClosed) => {
                    send_now(Frame::Error {
                        code: ErrorCode::Shutdown,
                        message: "release service is closed".to_string(),
                    });
                    false
                }
                Err(ServiceError::Mechanism(error)) => send_now(Frame::Error {
                    code: ErrorCode::Mechanism,
                    message: error.to_string(),
                }),
                Err(error) => send_now(Frame::Error {
                    code: ErrorCode::Internal,
                    message: error.to_string(),
                }),
            }
        }
        Frame::Query {
            user,
            table,
            statement,
            seed,
        } => {
            let Some(endpoint) = &inner.query else {
                return send_now(Frame::Error {
                    code: ErrorCode::Unsupported,
                    message: "this server has no query endpoint".to_string(),
                });
            };
            let Some(table) = endpoint.tables.get(&table) else {
                return send_now(Frame::Error {
                    code: ErrorCode::TableNotFound,
                    message: format!("no table named {table:?}"),
                });
            };
            let user = scoped_user(tenant_name, user);
            match endpoint.service.query(&user, &statement, table, seed) {
                Ok(result) => send_now(Frame::QueryOk(wire_result(&result))),
                Err(error) => send_now(query_error_frame(error)),
            }
        }
        Frame::Progressive {
            user,
            confidence,
            seed,
            steps,
            database,
        } => {
            if inner.progressive.is_none() {
                return send_now(Frame::Error {
                    code: ErrorCode::Unsupported,
                    message: "this server has no progressive endpoint".to_string(),
                });
            }
            if inflight.load(Ordering::SeqCst) >= config.max_pipeline {
                return send_now(Frame::Busy {
                    retry_hint_ms: config.busy_retry_hint_ms,
                });
            }
            // Re-validate the schedule server-side: the wire carries claims,
            // the schedule invariants are what admission trusts.
            let steps = steps
                .into_iter()
                .map(|step| RefinementStep {
                    prefix: step.prefix as usize,
                    epsilon: step.epsilon,
                    error_bound: step.error_bound,
                })
                .collect();
            let schedule = match RefinementSchedule::new(steps, confidence) {
                Ok(schedule) => schedule,
                Err(error) => {
                    return send_now(Frame::Error {
                        code: ErrorCode::Malformed,
                        message: error.to_string(),
                    });
                }
            };
            if database.len() != schedule.window() {
                return send_now(Frame::Error {
                    code: ErrorCode::Malformed,
                    message: format!(
                        "progressive database has {} events but the schedule's window is {}",
                        database.len(),
                        schedule.window()
                    ),
                });
            }
            let user = scoped_user(tenant_name, user);
            let database: Vec<usize> = database.into_iter().map(usize::from).collect();
            let trace = inner.telemetry.as_ref().map(|_| {
                let trace = Arc::new(RequestTrace::new(seq));
                if let Some(ns) = decode_ns {
                    trace.record(Stage::Decode, ns);
                }
                trace
            });
            // Each PROGRESSIVE request gets its own driver thread so its
            // refinement stream interleaves with the connection's other
            // pipelined traffic; it holds a writer-channel clone, so the
            // writer drains every step before the connection closes.
            inflight.fetch_add(1, Ordering::SeqCst);
            let worker_inner = Arc::clone(inner);
            let worker_tx = tx.clone();
            let worker_inflight = Arc::clone(inflight);
            let spawned = std::thread::Builder::new()
                .name("pufferfish-net-progressive".to_string())
                .spawn(move || {
                    run_progressive(
                        &worker_inner,
                        &worker_tx,
                        seq,
                        user,
                        schedule,
                        seed,
                        &database,
                        trace,
                    );
                    worker_inflight.fetch_sub(1, Ordering::SeqCst);
                });
            match spawned {
                Ok(_) => true,
                Err(_) => {
                    inflight.fetch_sub(1, Ordering::SeqCst);
                    send_now(Frame::Error {
                        code: ErrorCode::Internal,
                        message: "spawning the progressive driver failed".to_string(),
                    })
                }
            }
        }
        Frame::Stats => send_now(Frame::StatsOk(inner.stats())),
        Frame::Metrics => match &inner.telemetry {
            Some(watch) => send_now(Frame::MetricsOk(wire_metrics(&watch.registry))),
            None => send_now(Frame::Error {
                code: ErrorCode::Unsupported,
                message: "this server has no telemetry attached".to_string(),
            }),
        },
        Frame::Goodbye => false,
        // Response kinds arriving at the server are a protocol violation.
        _ => {
            send_now(Frame::Error {
                code: ErrorCode::Malformed,
                message: "response frame sent to server".to_string(),
            });
            false
        }
    }
}

/// The budget identity a frame is charged to: `tenant#user-id-in-hex`.
fn scoped_user(tenant: &str, user: u64) -> String {
    format!("{tenant}#{user:x}")
}

/// Drives one PROGRESSIVE request to completion on its own thread: admits
/// the whole schedule against the shared accountant, replays the window
/// through the driver, and ships each refinement as a seq-correlated
/// [`Frame::RefineOk`] the moment it is ready. Every early return (budget
/// refusal, mechanism failure, dead writer) drops the driver, whose guard
/// refunds the unconsumed steps.
#[allow(clippy::too_many_arguments)]
fn run_progressive(
    inner: &Arc<Inner>,
    tx: &Sender<Outgoing>,
    seq: u64,
    user: String,
    schedule: RefinementSchedule,
    seed: u64,
    database: &[usize],
    trace: Option<Arc<RequestTrace>>,
) {
    let endpoint = inner
        .progressive
        .as_ref()
        .expect("dispatch checked the endpoint exists");
    let send_now = |frame: Frame| tx.send(Outgoing::Now(seq, frame)).is_ok();
    let error_frame = |error: ServiceError| match error {
        ServiceError::BudgetExhausted {
            requested,
            remaining,
            ..
        } => Frame::BudgetExhausted {
            requested,
            remaining,
        },
        ServiceError::InvalidConfig(_) => Frame::Error {
            code: ErrorCode::Malformed,
            message: error.to_string(),
        },
        ServiceError::Mechanism(_) => Frame::Error {
            code: ErrorCode::Mechanism,
            message: error.to_string(),
        },
        other => Frame::Error {
            code: ErrorCode::Internal,
            message: other.to_string(),
        },
    };

    let started = inner.telemetry.as_ref().map(|_| Instant::now());
    let mut driver = match ProgressiveRelease::begin(
        "net-progressive",
        &endpoint.class,
        schedule,
        endpoint.backend,
        inner.release.budget(),
        &user,
        seed,
    ) {
        Ok(driver) => driver,
        Err(error) => {
            send_now(error_frame(error));
            return;
        }
    };
    for &event in database {
        match driver.push(event) {
            Ok(None) => {}
            Ok(Some(update)) => {
                let delivered = send_now(Frame::RefineOk {
                    step: update.step as u32,
                    total_steps: update.total_steps as u32,
                    prefix: update.prefix as u32,
                    scale: update.release.scale,
                    epsilon: update.epsilon,
                    certified_error: update.certified_error,
                    spent_epsilon: update.spent_epsilon,
                    values: update.release.values,
                });
                if !delivered {
                    // The connection is gone; the driver's drop guard
                    // refunds whatever the schedule had not yet consumed.
                    return;
                }
            }
            Err(error) => {
                send_now(error_frame(error));
                return;
            }
        }
    }
    if let (Some(watch), Some(started)) = (&inner.telemetry, started) {
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        watch.stages.record(Stage::Progressive, ns);
        if let Some(trace) = &trace {
            trace.record(Stage::Progressive, ns);
            if let Some(recorder) = &watch.recorder {
                recorder.observe(trace);
            }
        }
    }
}

fn wire_result(result: &QueryResult) -> WireQueryResult {
    WireQueryResult {
        mechanism: result.mechanism().to_string(),
        noise_scale: result.noise_scale(),
        total_epsilon: result.total_epsilon(),
        cells: result
            .cells()
            .iter()
            .map(|cell| WireCell {
                key: cell.key().to_string(),
                windows: cell
                    .window_ends()
                    .iter()
                    .zip(cell.releases())
                    .map(|(&end, release)| WireWindow {
                        end: u32::try_from(end).unwrap_or(u32::MAX),
                        // The wire is the trust boundary: only the noisy
                        // values ever leave the process.
                        values: release.values.clone(),
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Reduces a registry snapshot to its wire form, one [`WireMetric`] per
/// registered metric in name order.
fn wire_metrics(registry: &Registry) -> Vec<WireMetric> {
    registry
        .snapshot()
        .into_iter()
        .map(|sample| WireMetric {
            name: sample.name,
            value: match sample.value {
                MetricValue::Counter(v) => WireMetricValue::Counter(v),
                MetricValue::Gauge(v) => WireMetricValue::Gauge(v),
                MetricValue::Histogram(h) => WireMetricValue::Histogram {
                    count: h.count,
                    max: h.max,
                    mean: h.mean,
                    p50: h.p50,
                    p99: h.p99,
                    p999: h.p999,
                },
            },
        })
        .collect()
}

fn query_error_frame(error: QueryError) -> Frame {
    match error {
        QueryError::Budget(ServiceError::BudgetExhausted {
            requested,
            remaining,
            ..
        }) => Frame::BudgetExhausted {
            requested,
            remaining,
        },
        QueryError::Parse { .. } => Frame::Error {
            code: ErrorCode::Parse,
            message: error.to_string(),
        },
        QueryError::Mechanism(_) => Frame::Error {
            code: ErrorCode::Mechanism,
            message: error.to_string(),
        },
        QueryError::Budget(_) => Frame::Error {
            code: ErrorCode::Internal,
            message: error.to_string(),
        },
        // Plan, NoEligibleMechanism, UnknownMechanism: the statement is
        // valid but this server cannot serve it.
        _ => Frame::Error {
            code: ErrorCode::Unsupported,
            message: error.to_string(),
        },
    }
}

/// Writes responses as they become ready: immediate frames straight from
/// the channel, pending tickets polled without blocking so completions are
/// written in *completion* order, not submission order.
fn writer_loop(
    stream: TcpStream,
    rx: Receiver<Outgoing>,
    inflight: &Arc<AtomicUsize>,
    config: &NetServerConfig,
    telemetry: Option<&NetTelemetry>,
) {
    let mut out = std::io::BufWriter::with_capacity(64 * 1024, stream);
    let mut pending: VecDeque<(u64, Ticket, Option<Arc<RequestTrace>>)> = VecDeque::new();
    let mut open = true;

    'outer: while open || !pending.is_empty() {
        // 1. Pull work off the channel: block when idle, peek when busy.
        if open {
            if pending.is_empty() {
                match rx.recv() {
                    Ok(outgoing) => {
                        pending_or_write(outgoing, &mut pending, &mut out, config, telemetry);
                    }
                    Err(_) => open = false,
                }
            } else {
                // Park briefly so a worker completing a ticket is picked up
                // promptly even when the channel stays quiet.
                match rx.recv_timeout(Duration::from_micros(500)) {
                    Ok(outgoing) => {
                        pending_or_write(outgoing, &mut pending, &mut out, config, telemetry);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => open = false,
                }
            }
            loop {
                match rx.try_recv() {
                    Ok(outgoing) => {
                        pending_or_write(outgoing, &mut pending, &mut out, config, telemetry);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
        }

        // 2. Write every completed ticket, in completion order.
        let park = if open {
            Duration::ZERO
        } else {
            // Drain phase: the reader is gone, so actually wait for each
            // in-flight release (bounded) instead of spinning.
            config.drain_timeout
        };
        let mut index = 0;
        while index < pending.len() {
            match pending[index].1.wait_timeout(park) {
                Err(ServiceError::WaitTimeout { .. }) if open => {
                    index += 1;
                }
                outcome => {
                    let (seq, _ticket, trace) = pending.remove(index).expect("index in bounds");
                    inflight.fetch_sub(1, Ordering::SeqCst);
                    let frame = match outcome {
                        Ok(release) => Frame::ReleaseOk {
                            scale: release.scale,
                            values: release.values,
                        },
                        Err(ServiceError::WaitTimeout { .. }) => Frame::Error {
                            code: ErrorCode::Internal,
                            message: "drain timeout: release still in flight at close".to_string(),
                        },
                        Err(ServiceError::ServiceClosed) => Frame::Error {
                            code: ErrorCode::Shutdown,
                            message: "release service closed mid-flight".to_string(),
                        },
                        Err(ServiceError::Mechanism(error)) => Frame::Error {
                            code: ErrorCode::Mechanism,
                            message: error.to_string(),
                        },
                        Err(error) => Frame::Error {
                            code: ErrorCode::Internal,
                            message: error.to_string(),
                        },
                    };
                    // Encode + buffered write is the trace's final stage;
                    // the finished trace then goes to the flight recorder.
                    let encode_started = telemetry.map(|_| Instant::now());
                    let Some(written) = write_frame(&mut out, seq, frame, config) else {
                        break 'outer;
                    };
                    if let (Some(watch), Some(started)) = (telemetry, encode_started) {
                        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        watch.stages.record(Stage::Encode, ns);
                        watch.tx_bytes.add(written as u64);
                        if let Some(trace) = &trace {
                            trace.record(Stage::Encode, ns);
                            if let Some(recorder) = &watch.recorder {
                                recorder.observe(trace);
                            }
                        }
                    }
                }
            }
        }
        if out.flush().is_err() {
            break;
        }
    }
    // Anything still pending is abandoned (drain timed out or the socket
    // died); dropping the tickets releases their slots.
    let _ = out.flush();
}

/// Routes one channel item: immediate frames are written now, tickets join
/// the pending set.
fn pending_or_write(
    outgoing: Outgoing,
    pending: &mut VecDeque<(u64, Ticket, Option<Arc<RequestTrace>>)>,
    out: &mut std::io::BufWriter<TcpStream>,
    config: &NetServerConfig,
    telemetry: Option<&NetTelemetry>,
) {
    match outgoing {
        Outgoing::Now(seq, frame) => {
            if let Some(written) = write_frame(out, seq, frame, config) {
                if let Some(watch) = telemetry {
                    watch.tx_bytes.add(written as u64);
                }
            }
        }
        Outgoing::Pending(seq, ticket, trace) => pending.push_back((seq, ticket, trace)),
    }
}

/// Encodes and writes one response frame, returning the bytes written
/// (`None` when the socket is dead and the connection should close).
fn write_frame(
    out: &mut std::io::BufWriter<TcpStream>,
    seq: u64,
    frame: Frame,
    config: &NetServerConfig,
) -> Option<usize> {
    let envelope = Envelope { seq, frame };
    match encode(&envelope, config.max_frame_len) {
        Ok(bytes) => out.write_all(&bytes).ok().map(|()| bytes.len()),
        // An unencodable response (a release larger than max_frame_len)
        // still must answer the sequence number, or the client hangs.
        Err(error) => {
            let fallback = Envelope {
                seq,
                frame: Frame::Error {
                    code: ErrorCode::Internal,
                    message: format!("response unencodable: {error}"),
                },
            };
            match encode(&fallback, config.max_frame_len) {
                Ok(bytes) => out.write_all(&bytes).ok().map(|()| bytes.len()),
                Err(_) => None,
            }
        }
    }
}
