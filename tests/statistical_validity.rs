//! Statistical validity harness: released noise must actually *follow* the
//! calibrated Laplace distribution — plus the drift suite that exercises the
//! same statistics as a *runtime* monitor.
//!
//! Every other test in this repository is deterministic — bitwise replay,
//! cache counters, typed errors. None of them would notice a mechanism that
//! reports scale `b` but samples from `Lap(b/2)` (or from a Gaussian, or
//! from a stream with the wrong sign bias): the privacy guarantee of every
//! theorem in the paper is conditional on the noise *being* `Lap(b)` for the
//! calibrated `b`. The sign/MAD/mean math lives in
//! [`pufferfish_monitor::testkit`] — one copy, shared with the runtime
//! [`ReleaseMonitor`](pufferfish_monitor::ReleaseMonitor) — and this suite
//! asserts it offline at the harness's historical tolerances (≈ 5.7σ / 6σ /
//! 5.7σ at 20 000 samples: 0.04 / 0.06 / 0.02).
//!
//! The RNG seeds are fixed, so the suite is fully deterministic: a failure
//! is a mechanism bug (or a tolerance bug), never flakiness.
//!
//! The **drift suite** at the bottom closes the remaining gap: a serving
//! pipeline calibrated against a fitted class must *notice* when the event
//! stream leaves that class. For two classes × two mechanism families
//! (MQMApprox and GK16) it checks that an injected mid-stream transition
//! shift trips the [`DriftDetector`](pufferfish_monitor::DriftDetector)
//! within a bounded window count, that an unshifted control stream ten
//! times longer never trips it, and that the canary recalibration restores
//! sign/MAD health afterwards.

use pufferfish_baselines::GroupDp;
use pufferfish_core::engine::{MqmExactCalibrator, ReleaseEngine};
use pufferfish_core::queries::{LipschitzQuery, StateCountQuery, StateFrequencyQuery};
use pufferfish_core::{
    Mechanism, MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions, PrivacyBudget,
    WassersteinMechanism,
};
use pufferfish_datasets::EventStream;
use pufferfish_markov::{
    estimate_class, ClassEstimationOptions, FittedClass, IntervalClassBuilder, MarkovChain,
    MarkovChainClass,
};
use pufferfish_monitor::testkit::{
    assert_laplace, evaluate_laplace, LaplaceTolerances, LaplaceVerdict, NoiseAccumulator,
    NoiseStats,
};
use pufferfish_monitor::{
    ClassBounds, DriftConfig, MonitoredStream, ReleaseMonitorConfig, StreamMonitorConfig,
};
use pufferfish_service::{
    BudgetAccountant, ContinualRelease, ProgressiveRelease, RefinementSchedule, RefinementStep,
    StreamBackend, StreamConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples per mechanism; [`LaplaceTolerances::harness`] at this size yields
/// the suite's historical 0.04 / 0.06 / 0.02 constants.
const SAMPLES: usize = 20_000;

/// Releases `query` on `database` `SAMPLES` times and folds the noise
/// (released − true, per coordinate) into summary statistics.
fn collect(
    mechanism: &dyn Mechanism,
    query: &dyn LipschitzQuery,
    database: &[usize],
    seed: u64,
) -> NoiseStats {
    let scale = mechanism.noise_scale_for(query);
    assert!(
        scale.is_finite() && scale > 0.0,
        "statistical checks need a positive calibrated scale, got {scale}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accumulator = NoiseAccumulator::new();
    for _ in 0..SAMPLES {
        let release = mechanism.release(query, database, &mut rng).unwrap();
        assert_eq!(release.scale.to_bits(), scale.to_bits());
        accumulator.push_release(&release, scale);
    }
    accumulator.stats(scale).expect("SAMPLES > 0")
}

/// The shared assertion at the harness's σ-multiples.
fn assert_harness(label: &str, stats: &NoiseStats) {
    assert_laplace(label, stats, &LaplaceTolerances::harness(stats.samples));
}

fn chain_class() -> MarkovChainClass {
    MarkovChainClass::singleton(
        MarkovChain::new(vec![0.6, 0.4], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap(),
    )
}

fn binary_database(length: usize) -> Vec<usize> {
    (0..length).map(|t| (t * 5 + 1) % 7 % 2).collect()
}

#[test]
fn wasserstein_noise_follows_the_calibrated_scale() {
    let framework = pufferfish_core::flu::flu_clique_framework(3, &[0.5, 0.1, 0.1, 0.3]).unwrap();
    let query = StateCountQuery::new(1, 3);
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism = WassersteinMechanism::calibrate(&framework, &query, budget).unwrap();
    let stats = collect(&mechanism, &query, &[1, 0, 1], 0xA11CE);
    assert_harness("wasserstein", &stats);
}

#[test]
fn mqm_exact_noise_follows_the_calibrated_scale() {
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism =
        MqmExact::calibrate(&chain_class(), 60, budget, MqmExactOptions::default()).unwrap();
    let query = StateFrequencyQuery::new(1, 60);
    let stats = collect(&mechanism, &query, &binary_database(60), 0xB0B);
    assert_harness("mqm-exact", &stats);
}

#[test]
fn mqm_approx_noise_follows_the_calibrated_scale() {
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap();
    let budget = PrivacyBudget::new(0.5).unwrap();
    let mechanism = MqmApprox::calibrate(&class, 60, budget, MqmApproxOptions::default()).unwrap();
    let query = StateFrequencyQuery::new(0, 60);
    let stats = collect(&mechanism, &query, &binary_database(60), 0xCAB);
    assert_harness("mqm-approx", &stats);
}

#[test]
fn group_dp_noise_follows_the_calibrated_scale() {
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism = GroupDp::calibrate(60, budget).unwrap();
    let query = StateFrequencyQuery::new(1, 60);
    // L = 1/60, M = 60: the scale is exactly 1 at ε = 1 (the "GroupDP error
    // ≈ 1" remark under Figure 4).
    assert!((Mechanism::noise_scale_for(&mechanism, &query) - 1.0).abs() < 1e-12);
    let stats = collect(&mechanism, &query, &binary_database(60), 0xD0E);
    assert_harness("group-dp", &stats);
}

/// The gate on the calibration store: a warm-started engine's noise must be
/// statistically indistinguishable from a cold engine's — and producing it
/// must involve **zero** calibrations.
#[test]
fn imported_snapshot_noise_follows_the_calibrated_scale_without_calibrating() {
    let calibrator = || MqmExactCalibrator::new(chain_class(), 60, MqmExactOptions::default());
    let budget = PrivacyBudget::new(1.0).unwrap();
    let query = StateFrequencyQuery::new(1, 60);
    let database = binary_database(60);

    let cold = ReleaseEngine::new(calibrator());
    let cold_mechanism = cold.mechanism(&query, budget).unwrap();
    let snapshot = cold.export_snapshot();

    let warm = ReleaseEngine::new(calibrator());
    assert_eq!(warm.import_snapshot(&snapshot).unwrap(), 1);
    let warm_mechanism = warm.mechanism(&query, budget).unwrap();
    assert_eq!(warm.cache_misses(), 0, "warm start must not calibrate");

    // Identical seed → bitwise-identical noise stream across the store.
    let mut cold_rng = StdRng::seed_from_u64(7);
    let mut warm_rng = StdRng::seed_from_u64(7);
    let cold_release = cold_mechanism
        .release(&query, &database, &mut cold_rng)
        .unwrap();
    let warm_release = warm_mechanism
        .release(&query, &database, &mut warm_rng)
        .unwrap();
    assert_eq!(cold_release.values, warm_release.values);

    // Fresh seed → the warm noise stands on its own statistically.
    let stats = collect(&*warm_mechanism, &query, &database, 0xF00D);
    assert_harness("imported mqm-exact", &stats);
    assert_eq!(warm.cache_misses(), 0);
}

/// Control: the harness itself must *detect* a miscalibrated scale — a
/// mechanism releasing noise at half its reported scale gets a typed
/// [`LaplaceVerdict::Miscalibrated`] with the MAD ratio naming the lie.
#[test]
fn harness_detects_wrong_scales() {
    struct HalfScaleLier;

    impl Mechanism for HalfScaleLier {
        fn name(&self) -> &'static str {
            "half-scale-lier"
        }
        fn epsilon(&self) -> f64 {
            1.0
        }
        fn noise_scale_for(&self, _query: &dyn LipschitzQuery) -> f64 {
            2.0
        }
        fn validate(
            &self,
            _query: &dyn LipschitzQuery,
            _database: &[usize],
        ) -> pufferfish_core::Result<()> {
            Ok(())
        }
        fn release(
            &self,
            query: &dyn LipschitzQuery,
            database: &[usize],
            rng: &mut dyn rand::RngCore,
        ) -> pufferfish_core::Result<pufferfish_core::NoisyRelease> {
            // Samples at half the reported scale — the bug class this suite
            // exists to catch.
            let true_values = query.evaluate(database)?;
            let laplace = pufferfish_core::Laplace::new(1.0)?;
            let values = true_values
                .iter()
                .map(|v| v + laplace.sample(rng))
                .collect();
            Ok(pufferfish_core::NoisyRelease {
                values,
                true_values,
                scale: self.noise_scale_for(query),
            })
        }
    }

    let query = StateCountQuery::new(1, 3);
    let stats = collect(&HalfScaleLier, &query, &[1, 0, 1], 0xBAD);
    let verdict = evaluate_laplace(&stats, &LaplaceTolerances::harness(stats.samples));
    match verdict {
        LaplaceVerdict::Miscalibrated { mad_ratio, .. } => assert!(
            (mad_ratio - 0.5).abs() < 0.05,
            "the MAD ratio must expose the half-scale lie, got {mad_ratio}"
        ),
        LaplaceVerdict::Consistent => panic!("a half-scale mechanism must fail the MAD check"),
    }
}

// ---------------------------------------------------------------------------
// Anytime-bound suite: the certified error bounds on progressive releases.
// ---------------------------------------------------------------------------

/// Drives the same two-step progressive schedule `runs` times at distinct
/// seeds and collects, per step, the certified bound (identical across runs
/// — it is recomputed from the deterministic release scale) and every run's
/// realised sup-norm error.
fn collect_anytime(runs: usize) -> (f64, Vec<f64>, Vec<Vec<f64>>) {
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap();
    let confidence = 0.9;
    let schedule = RefinementSchedule::new(
        vec![
            RefinementStep {
                prefix: 4,
                epsilon: 0.5,
                error_bound: 16.0,
            },
            RefinementStep {
                prefix: 8,
                epsilon: 0.5,
                error_bound: 8.0,
            },
        ],
        confidence,
    )
    .unwrap();
    let database = binary_database(schedule.window());
    let mut certified = vec![f64::NAN; schedule.steps().len()];
    let mut sup_errors: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); schedule.steps().len()];
    for run in 0..runs {
        let budget = BudgetAccountant::new(1e12).unwrap();
        let mut driver = ProgressiveRelease::begin(
            "anytime-coverage",
            &class,
            schedule.clone(),
            StreamBackend::MqmApprox,
            &budget,
            "coverage",
            run as u64,
        )
        .unwrap();
        let mut step = 0;
        for &event in &database {
            if let Some(update) = driver.push(event).unwrap() {
                let sup = update
                    .release
                    .values
                    .iter()
                    .zip(&update.release.true_values)
                    .map(|(v, t)| (v - t).abs())
                    .fold(0.0, f64::max);
                sup_errors[step].push(sup);
                if run == 0 {
                    certified[step] = update.certified_error;
                } else {
                    // The certified bound is a function of the calibrated
                    // scale alone, so it is bitwise-stable across seeds.
                    assert_eq!(update.certified_error.to_bits(), certified[step].to_bits());
                }
                step += 1;
            }
        }
        assert_eq!(step, schedule.steps().len(), "every step must release");
    }
    (confidence, certified, sup_errors)
}

/// Every intermediate (and final) estimate of a progressive release lands
/// within its certified error bound at the target confidence: over 20 000
/// seeded runs the empirical coverage of each step's bound must be at least
/// the schedule's confidence, minus a 6σ binomial slack — and the bound
/// must not be vacuous (some runs do exceed it).
#[test]
fn anytime_certified_bounds_cover_at_the_target_confidence() {
    let (confidence, certified, sup_errors) = collect_anytime(SAMPLES);
    // 6σ binomial slack at p = 0.9, n = 20 000.
    let slack = 6.0 * (confidence * (1.0 - confidence) / SAMPLES as f64).sqrt();
    for (step, errors) in sup_errors.iter().enumerate() {
        let bound = certified[step];
        assert!(bound.is_finite() && bound > 0.0);
        let covered = errors.iter().filter(|&&e| e <= bound).count() as f64 / errors.len() as f64;
        assert!(
            covered >= confidence - slack,
            "step {step}: certified bound {bound} covered only {covered:.4} \
             of runs (target {confidence})"
        );
        assert!(
            errors.iter().any(|&e| e > bound),
            "step {step}: a {confidence}-confidence bound that no run ever \
             exceeds in 20k samples is mis-certified (too loose)"
        );
    }
}

/// Control: the coverage harness itself must *detect* a wrong bound. A
/// deliberately-lying certification at a third of the true bound falls far
/// below the target confidence on the identical 20 000-run data — proving a
/// mis-certified driver could not slip past the test above.
#[test]
fn anytime_harness_detects_a_deliberately_wrong_bound() {
    let (confidence, certified, sup_errors) = collect_anytime(SAMPLES);
    for (step, errors) in sup_errors.iter().enumerate() {
        let lying_bound = certified[step] / 3.0;
        let covered =
            errors.iter().filter(|&&e| e <= lying_bound).count() as f64 / errors.len() as f64;
        assert!(
            covered < confidence - 0.05,
            "step {step}: a bound lying by 3× still covered {covered:.4} — \
             the harness would miss mis-certification"
        );
    }
}

// ---------------------------------------------------------------------------
// Drift suite: the runtime monitors over serving pipelines.
// ---------------------------------------------------------------------------

/// Two-state chain with the given per-state stay probabilities.
fn two_state(stay0: f64, stay1: f64) -> MarkovChain {
    MarkovChain::new(
        vec![0.5, 0.5],
        vec![vec![stay0, 1.0 - stay0], vec![1.0 - stay1, stay1]],
    )
    .unwrap()
}

/// Fits a confidence class from a long seeded trajectory of `truth`.
fn fit(truth: &MarkovChain, seed: u64) -> FittedClass {
    let log: Vec<usize> = EventStream::new(truth.clone(), seed).take(20_000).collect();
    estimate_class(&[log], 2, ClassEstimationOptions::default()).unwrap()
}

/// Events per drift window in the suite. At α = 1e-4 the per-row Hoeffding
/// slack is ≈ 0.10 at this size (≈ 512 visits per state row), so the ≥ 0.2
/// transition shifts injected below clear it with several σ of margin while
/// staying inside GK16's weak-correlation envelope.
const WINDOW: usize = 1024;

fn drift_config() -> DriftConfig {
    DriftConfig {
        window_events: WINDOW,
        alpha: 1e-4,
        consecutive: 2,
        min_row_visits: 16,
    }
}

/// A monitored continual-release pipeline calibrated against the fitted
/// class of `truth`, manual recalibration.
fn monitored_pipeline(
    truth: &MarkovChain,
    backend: StreamBackend,
    noise_window: u64,
    seed: u64,
) -> MonitoredStream {
    let fitted = fit(truth, seed);
    let stream = ContinualRelease::new(
        backend.name(),
        &fitted.to_class().unwrap(),
        StreamConfig {
            window: 64,
            slide: 32,
            epsilon_per_release: 0.5,
            stream_epsilon: 1e12,
            backend,
        },
    )
    .unwrap();
    MonitoredStream::new(
        stream,
        ClassBounds::from_fitted(&fitted),
        StreamMonitorConfig {
            noise: ReleaseMonitorConfig {
                window: noise_window,
                fp_budget: 1e-3,
            },
            drift: drift_config(),
            recent_capacity: 4096,
            min_refit_events: 2048,
            estimation: ClassEstimationOptions::default(),
            auto_recalibrate: false,
        },
    )
}

/// The positive case: a mid-stream transition shift must trip the detector
/// within a bounded number of windows, and the canary recalibration must
/// restore sign/MAD health on the shifted regime.
fn assert_shift_detected_and_recalibration_heals(
    truth: MarkovChain,
    shifted: MarkovChain,
    backend: StreamBackend,
    seed: u64,
) {
    let mut monitored = monitored_pipeline(&truth, backend, 256, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
    // An in-class prefix: no complaint.
    for event in EventStream::new(truth, seed + 1).take(4 * WINDOW) {
        monitored.push(event, &mut rng).unwrap();
    }
    assert!(
        monitored.healthy(),
        "{}: in-class prefix must not trip",
        backend.name()
    );
    // The shift: bounded detection latency. The detector debounces over 2
    // consecutive windows, so 6 windows of budget is already generous.
    for event in EventStream::new(shifted.clone(), seed + 2).take(6 * WINDOW) {
        monitored.push(event, &mut rng).unwrap();
        if monitored.drifted() {
            break;
        }
    }
    assert!(
        monitored.drifted(),
        "{}: shift must trip within 6 windows",
        backend.name()
    );
    // Let the refit buffer fill with post-shift events (at trip time it
    // still blends both regimes), then run the canary recalibration: refit
    // on the recent window, swap the stream's mechanism, rebase monitors.
    for event in EventStream::new(shifted.clone(), seed + 4).take(4096) {
        monitored.push(event, &mut rng).unwrap();
    }
    let done = monitored.recalibrate().unwrap();
    assert!(done.old_scale > 0.0 && done.new_scale > 0.0);
    assert!(monitored.healthy(), "{}: rebase heals", backend.name());
    // Post-swap, the anchored sign/MAD test must pass on the new regime:
    // push enough events for several complete noise-test windows.
    for event in EventStream::new(shifted, seed + 3).take(16 * WINDOW) {
        monitored.push(event, &mut rng).unwrap();
    }
    let stats = monitored.monitor_stats();
    assert!(
        stats.noise_tests >= 1,
        "{}: the sequential noise test must have run post-swap (got {} tests)",
        backend.name(),
        stats.noise_tests
    );
    assert_eq!(
        stats.noise_failures,
        0,
        "{}: recalibration must restore sign/MAD health",
        backend.name()
    );
    assert!(
        monitored.healthy(),
        "{}: healthy on the shifted regime after recalibration",
        backend.name()
    );
    assert_eq!(stats.recalibrations, 1);
}

/// The negative control: an unshifted stream **ten times** the detection
/// budget must never trip the detector (α = 1e-4 per window, debounced over
/// 2 consecutive windows — a false trip would be a tolerance bug).
fn assert_control_never_trips(truth: MarkovChain, backend: StreamBackend, seed: u64) {
    let mut monitored = monitored_pipeline(&truth, backend, 4096, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0);
    for event in EventStream::new(truth, seed + 1).take(60 * WINDOW) {
        let step = monitored.push(event, &mut rng).unwrap();
        if let Some(verdict) = step.drift_verdict {
            assert!(
                !verdict.drifted,
                "{}: control stream tripped at window {} (score {})",
                backend.name(),
                verdict.window_index,
                verdict.score
            );
        }
    }
    let stats = monitored.monitor_stats();
    assert_eq!(stats.drift_windows, 60);
    assert!(!stats.drifted);
    assert_eq!(stats.recalibrations, 0);
}

#[test]
fn drift_sticky_class_mqm_approx_shift_detected() {
    assert_shift_detected_and_recalibration_heals(
        two_state(0.85, 0.7),
        two_state(0.45, 0.7),
        StreamBackend::MqmApprox,
        0x1001,
    );
}

#[test]
fn drift_mixing_class_mqm_approx_shift_detected() {
    assert_shift_detected_and_recalibration_heals(
        two_state(0.6, 0.55),
        two_state(0.3, 0.55),
        StreamBackend::MqmApprox,
        0x1002,
    );
}

// GK16 only calibrates over weakly correlated chains (its influence-matrix
// spectral norm must stay below 1), so its drift cases live near stay = 0.5
// and shift a different row per class.

#[test]
fn drift_row0_class_gk16_shift_detected() {
    assert_shift_detected_and_recalibration_heals(
        two_state(0.62, 0.5),
        two_state(0.38, 0.5),
        StreamBackend::Gk16,
        0x1003,
    );
}

#[test]
fn drift_row1_class_gk16_shift_detected() {
    assert_shift_detected_and_recalibration_heals(
        two_state(0.5, 0.62),
        two_state(0.5, 0.38),
        StreamBackend::Gk16,
        0x1004,
    );
}

#[test]
fn drift_control_sticky_class_mqm_approx_never_trips() {
    assert_control_never_trips(two_state(0.85, 0.7), StreamBackend::MqmApprox, 0x2001);
}

#[test]
fn drift_control_mixing_class_mqm_approx_never_trips() {
    assert_control_never_trips(two_state(0.6, 0.55), StreamBackend::MqmApprox, 0x2002);
}

#[test]
fn drift_control_row0_class_gk16_never_trips() {
    assert_control_never_trips(two_state(0.62, 0.5), StreamBackend::Gk16, 0x2003);
}

#[test]
fn drift_control_row1_class_gk16_never_trips() {
    assert_control_never_trips(two_state(0.5, 0.62), StreamBackend::Gk16, 0x2004);
}
