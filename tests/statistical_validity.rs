//! Statistical validity harness: released noise must actually *follow* the
//! calibrated Laplace distribution.
//!
//! Every other test in this repository is deterministic — bitwise replay,
//! cache counters, typed errors. None of them would notice a mechanism that
//! reports scale `b` but samples from `Lap(b/2)` (or from a Gaussian, or
//! from a stream with the wrong sign bias): the privacy guarantee of every
//! theorem in the paper is conditional on the noise *being* `Lap(b)` for the
//! calibrated `b`. This suite closes that gap with seeded empirical checks:
//!
//! * the **mean absolute deviation** of `N` released noise samples must be
//!   within a deterministic tolerance of the calibrated scale (for
//!   `X ~ Lap(b)`, `E|X| = b` and the sample MAD has standard deviation
//!   `b/√N`, so the `0.04·b` tolerance at `N = 20 000` is ≈ 5.7σ);
//! * the **signed mean** must be near zero (sd `b·√2/√N`, tolerance ≈ 6σ) —
//!   noise must not be biased;
//! * roughly **half the samples** must be negative (binomial sd `0.5/√N`) —
//!   a symmetry check the first two moments cannot see.
//!
//! The RNG seeds are fixed, so the suite is fully deterministic: a failure
//! is a mechanism bug (or a tolerance bug), never flakiness.
//!
//! The same harness gates the calibration store: an engine warmed from an
//! imported [`CalibrationSnapshot`](pufferfish_core::CalibrationSnapshot)
//! must produce noise with the same statistics *without calibrating*.

use pufferfish_baselines::GroupDp;
use pufferfish_core::engine::{MqmExactCalibrator, ReleaseEngine};
use pufferfish_core::queries::{LipschitzQuery, StateCountQuery, StateFrequencyQuery};
use pufferfish_core::{
    Mechanism, MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions, PrivacyBudget,
    WassersteinMechanism,
};
use pufferfish_markov::{IntervalClassBuilder, MarkovChain, MarkovChainClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples per mechanism. Tolerances below are calibrated to this size.
const SAMPLES: usize = 20_000;
/// |MAD/b − 1| tolerance: ≈ 5.7 standard deviations of the sample MAD.
const MAD_TOLERANCE: f64 = 0.04;
/// |mean/b| tolerance: ≈ 6 standard deviations of the sample mean.
const MEAN_TOLERANCE: f64 = 0.06;
/// |negative fraction − 0.5| tolerance: ≈ 5.7 binomial standard deviations.
const SIGN_TOLERANCE: f64 = 0.02;

/// Empirical noise statistics of `SAMPLES` seeded releases.
struct NoiseStats {
    scale: f64,
    mad: f64,
    mean: f64,
    negative_fraction: f64,
}

/// Releases `query` on `database` `SAMPLES` times and folds the noise
/// (released − true, per coordinate) into summary statistics.
fn collect(
    mechanism: &dyn Mechanism,
    query: &dyn LipschitzQuery,
    database: &[usize],
    seed: u64,
) -> NoiseStats {
    let scale = mechanism.noise_scale_for(query);
    assert!(
        scale.is_finite() && scale > 0.0,
        "statistical checks need a positive calibrated scale, got {scale}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut abs_sum = 0.0;
    let mut sum = 0.0;
    let mut negative = 0usize;
    let mut count = 0usize;
    for _ in 0..SAMPLES {
        let release = mechanism.release(query, database, &mut rng).unwrap();
        assert_eq!(release.scale.to_bits(), scale.to_bits());
        for (noisy, exact) in release.values.iter().zip(&release.true_values) {
            let noise = noisy - exact;
            abs_sum += noise.abs();
            sum += noise;
            negative += usize::from(noise < 0.0);
            count += 1;
        }
    }
    NoiseStats {
        scale,
        mad: abs_sum / count as f64,
        mean: sum / count as f64,
        negative_fraction: negative as f64 / count as f64,
    }
}

/// The shared assertion: the empirical noise matches `Lap(scale)`.
fn assert_laplace(label: &str, stats: &NoiseStats) {
    let mad_ratio = stats.mad / stats.scale;
    assert!(
        (mad_ratio - 1.0).abs() <= MAD_TOLERANCE,
        "{label}: empirical MAD/scale = {mad_ratio} is outside 1 ± {MAD_TOLERANCE} \
         (scale {}, MAD {})",
        stats.scale,
        stats.mad
    );
    let mean_ratio = stats.mean / stats.scale;
    assert!(
        mean_ratio.abs() <= MEAN_TOLERANCE,
        "{label}: noise is biased — empirical mean/scale = {mean_ratio}"
    );
    assert!(
        (stats.negative_fraction - 0.5).abs() <= SIGN_TOLERANCE,
        "{label}: noise is asymmetric — negative fraction = {}",
        stats.negative_fraction
    );
}

fn chain_class() -> MarkovChainClass {
    MarkovChainClass::singleton(
        MarkovChain::new(vec![0.6, 0.4], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap(),
    )
}

fn binary_database(length: usize) -> Vec<usize> {
    (0..length).map(|t| (t * 5 + 1) % 7 % 2).collect()
}

#[test]
fn wasserstein_noise_follows_the_calibrated_scale() {
    let framework = pufferfish_core::flu::flu_clique_framework(3, &[0.5, 0.1, 0.1, 0.3]).unwrap();
    let query = StateCountQuery::new(1, 3);
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism = WassersteinMechanism::calibrate(&framework, &query, budget).unwrap();
    let stats = collect(&mechanism, &query, &[1, 0, 1], 0xA11CE);
    assert_laplace("wasserstein", &stats);
}

#[test]
fn mqm_exact_noise_follows_the_calibrated_scale() {
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism =
        MqmExact::calibrate(&chain_class(), 60, budget, MqmExactOptions::default()).unwrap();
    let query = StateFrequencyQuery::new(1, 60);
    let stats = collect(&mechanism, &query, &binary_database(60), 0xB0B);
    assert_laplace("mqm-exact", &stats);
}

#[test]
fn mqm_approx_noise_follows_the_calibrated_scale() {
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap();
    let budget = PrivacyBudget::new(0.5).unwrap();
    let mechanism = MqmApprox::calibrate(&class, 60, budget, MqmApproxOptions::default()).unwrap();
    let query = StateFrequencyQuery::new(0, 60);
    let stats = collect(&mechanism, &query, &binary_database(60), 0xCAB);
    assert_laplace("mqm-approx", &stats);
}

#[test]
fn group_dp_noise_follows_the_calibrated_scale() {
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism = GroupDp::calibrate(60, budget).unwrap();
    let query = StateFrequencyQuery::new(1, 60);
    // L = 1/60, M = 60: the scale is exactly 1 at ε = 1 (the "GroupDP error
    // ≈ 1" remark under Figure 4).
    assert!((Mechanism::noise_scale_for(&mechanism, &query) - 1.0).abs() < 1e-12);
    let stats = collect(&mechanism, &query, &binary_database(60), 0xD0E);
    assert_laplace("group-dp", &stats);
}

/// The gate on the calibration store: a warm-started engine's noise must be
/// statistically indistinguishable from a cold engine's — and producing it
/// must involve **zero** calibrations.
#[test]
fn imported_snapshot_noise_follows_the_calibrated_scale_without_calibrating() {
    let calibrator = || MqmExactCalibrator::new(chain_class(), 60, MqmExactOptions::default());
    let budget = PrivacyBudget::new(1.0).unwrap();
    let query = StateFrequencyQuery::new(1, 60);
    let database = binary_database(60);

    let cold = ReleaseEngine::new(calibrator());
    let cold_mechanism = cold.mechanism(&query, budget).unwrap();
    let snapshot = cold.export_snapshot();

    let warm = ReleaseEngine::new(calibrator());
    assert_eq!(warm.import_snapshot(&snapshot).unwrap(), 1);
    let warm_mechanism = warm.mechanism(&query, budget).unwrap();
    assert_eq!(warm.cache_misses(), 0, "warm start must not calibrate");

    // Identical seed → bitwise-identical noise stream across the store.
    let mut cold_rng = StdRng::seed_from_u64(7);
    let mut warm_rng = StdRng::seed_from_u64(7);
    let cold_release = cold_mechanism
        .release(&query, &database, &mut cold_rng)
        .unwrap();
    let warm_release = warm_mechanism
        .release(&query, &database, &mut warm_rng)
        .unwrap();
    assert_eq!(cold_release.values, warm_release.values);

    // Fresh seed → the warm noise stands on its own statistically.
    let stats = collect(&*warm_mechanism, &query, &database, 0xF00D);
    assert_laplace("imported mqm-exact", &stats);
    assert_eq!(warm.cache_misses(), 0);
}

/// Control: the harness itself must *detect* a miscalibrated scale — a
/// mechanism releasing noise at half its reported scale fails the MAD check.
#[test]
fn harness_detects_wrong_scales() {
    struct HalfScaleLier;

    impl Mechanism for HalfScaleLier {
        fn name(&self) -> &'static str {
            "half-scale-lier"
        }
        fn epsilon(&self) -> f64 {
            1.0
        }
        fn noise_scale_for(&self, _query: &dyn LipschitzQuery) -> f64 {
            2.0
        }
        fn validate(
            &self,
            _query: &dyn LipschitzQuery,
            _database: &[usize],
        ) -> pufferfish_core::Result<()> {
            Ok(())
        }
        fn release(
            &self,
            query: &dyn LipschitzQuery,
            database: &[usize],
            rng: &mut dyn rand::RngCore,
        ) -> pufferfish_core::Result<pufferfish_core::NoisyRelease> {
            // Samples at half the reported scale — the bug class this suite
            // exists to catch.
            let true_values = query.evaluate(database)?;
            let laplace = pufferfish_core::Laplace::new(1.0)?;
            let values = true_values
                .iter()
                .map(|v| v + laplace.sample(rng))
                .collect();
            Ok(pufferfish_core::NoisyRelease {
                values,
                true_values,
                scale: self.noise_scale_for(query),
            })
        }
    }

    let query = StateCountQuery::new(1, 3);
    let stats = collect(&HalfScaleLier, &query, &[1, 0, 1], 0xBAD);
    assert!(
        (stats.mad / stats.scale - 1.0).abs() > MAD_TOLERANCE,
        "a half-scale mechanism must fail the MAD check (got ratio {})",
        stats.mad / stats.scale
    );
}
