//! The progressive-release contract, swept: anytime delivery never changes
//! the answer, never mis-counts ε, and never loses a refund.
//!
//! Three properties over mechanisms × window sizes × schedule depths ×
//! seeds (and, in the concurrent test, thread counts via
//! `PUFFERFISH_TEST_THREADS`):
//!
//! * **bitwise equivalence** — the final refinement of a driven
//!   [`ProgressiveRelease`] is bit-for-bit identical to the equivalent
//!   one-shot release of the full window at the same seed and total ε; the
//!   intermediate estimates draw from disjoint noise streams and cannot
//!   perturb it.
//! * **exact accounting** — the ε-spend visible through the updates is
//!   strictly monotone and the settled total equals the schedule's sum
//!   exactly (validation pins per-step ε bitwise-equal, so the Theorem 4.4
//!   composed guarantee *is* the sum).
//! * **exact refunds** — aborting mid-stream refunds precisely the
//!   unconsumed steps, the accountant retains exactly the consumed prefix,
//!   and replaying the attached ε-ledger reconstructs the live accountant
//!   **bitwise**, refunds included — even when many drivers run
//!   concurrently against one accountant.

use std::sync::Arc;

use proptest::prelude::*;
use pufferfish_markov::{IntervalClassBuilder, MarkovChainClass};
use pufferfish_service::{
    audit_ledger, BudgetAccountant, ProgressiveRelease, RefinementSchedule, RefinementStep,
    StreamBackend,
};
use pufferfish_telemetry::EpsilonLedger;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Concurrent drivers in the threaded test: the CI matrix pins it via
/// `PUFFERFISH_TEST_THREADS`; 4 otherwise.
fn test_threads() -> usize {
    std::env::var("PUFFERFISH_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn chain_class() -> MarkovChainClass {
    IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap()
}

/// A prefix-doubling schedule of `steps` steps ending at `window`, every
/// step at the same ε (bitwise, as validation requires).
fn ladder(window: usize, steps: usize, epsilon: f64) -> RefinementSchedule {
    let steps: Vec<RefinementStep> = (0..steps)
        .rev()
        .map(|j| RefinementStep {
            prefix: window >> j,
            epsilon,
            error_bound: (1u64 << j) as f64,
        })
        .collect();
    RefinementSchedule::new(steps, 0.9).unwrap()
}

fn backend_for(choice: u8) -> StreamBackend {
    if choice == 0 {
        StreamBackend::MqmApprox
    } else {
        StreamBackend::Gk16
    }
}

fn database(window: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDB);
    (0..window).map(|_| rng.gen_range(0..2usize)).collect()
}

fn assert_bitwise(a: &pufferfish_core::NoisyRelease, b: &pufferfish_core::NoisyRelease) {
    assert_eq!(a.scale.to_bits(), b.scale.to_bits());
    assert_eq!(a.values.len(), b.values.len());
    for (x, y) in a.values.iter().zip(&b.values) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bitwise equivalence + exact accounting, across both stream backends,
    /// window sizes 8–32, schedule depths 1–3, ε choices and seeds.
    #[test]
    fn final_refinement_is_bitwise_equal_to_one_shot(
        backend_choice in 0u8..2,
        window_exp in 3u32..6,
        depth in 1usize..4,
        epsilon_choice in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let backend = backend_for(backend_choice);
        let window = 1usize << window_exp;
        let epsilon = [0.25, 0.5, 1.0][epsilon_choice];
        let class = chain_class();
        let schedule = ladder(window, depth, epsilon);
        let events = database(window, seed);

        let budget = BudgetAccountant::new(1e6).unwrap();
        let mut driver = ProgressiveRelease::begin(
            "prop-progressive", &class, schedule.clone(), backend, &budget, "prop", seed,
        ).unwrap();
        let mut updates = Vec::new();
        for &event in &events {
            if let Some(update) = driver.push(event).unwrap() {
                updates.push(update);
            }
        }
        prop_assert_eq!(updates.len(), depth);
        prop_assert!(updates.last().unwrap().is_final());

        // ε-spend is monotone along the stream and lands exactly on the
        // schedule's sum (which validation makes the composed guarantee).
        let spent: Vec<f64> = updates.iter().map(|u| u.spent_epsilon).collect();
        prop_assert!(spent.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(
            spent.last().unwrap().to_bits(),
            schedule.total_epsilon().to_bits()
        );
        prop_assert_eq!(
            driver.spent_epsilon().to_bits(),
            schedule.total_epsilon().to_bits()
        );

        // The comparator: one fresh release of the whole window at the raw
        // seed and the schedule's final ε. Bit-for-bit the same answer.
        let one_shot = ProgressiveRelease::one_shot(
            "prop-progressive", &class, &schedule, backend, seed, &events,
        ).unwrap();
        assert_bitwise(&updates.last().unwrap().release, &one_shot.release);

        // Intermediate estimates draw from disjoint noise streams: when the
        // schedule has a coarse step, its noise differs from the final's.
        if depth > 1 {
            prop_assert!(updates[0].release.values != one_shot.release.values);
        }
    }

    /// Aborting mid-stream refunds exactly the unconsumed steps and the
    /// ledger replays to the live accountant bitwise, refund included.
    #[test]
    fn abort_refunds_exactly_and_the_ledger_replays_bitwise(
        backend_choice in 0u8..2,
        depth in 2usize..4,
        consume in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let backend = backend_for(backend_choice);
        let consume = consume.min(depth - 1);
        let window = 16usize;
        let epsilon = 0.5;
        let class = chain_class();
        let schedule = ladder(window, depth, epsilon);
        let events = database(window, seed);

        let budget = Arc::new(BudgetAccountant::new(1e6).unwrap());
        let ledger = Arc::new(EpsilonLedger::new());
        budget.attach_ledger(Arc::clone(&ledger));

        let mut driver = ProgressiveRelease::begin(
            "prop-abort", &class, schedule.clone(), backend, &budget, "prop", seed,
        ).unwrap();
        prop_assert_eq!(budget.spent("prop"), schedule.total_epsilon());

        // Consume exactly `consume` refinements, then stop early.
        let mut seen = 0usize;
        for &event in &events {
            if seen == consume {
                break;
            }
            if driver.push(event).unwrap().is_some() {
                seen += 1;
            }
        }
        prop_assert_eq!(seen, consume);
        let refunded = driver.abort();
        prop_assert_eq!(refunded, depth - consume);
        prop_assert_eq!(driver.abort(), 0); // idempotent
        drop(driver); // the drop guard must not double-refund

        // The accountant retains exactly the consumed prefix of the
        // schedule, summed in charge order. (An empty `Sum<f64>` is -0.0 on
        // this toolchain; the emptied accountant reports +0.0.)
        let expected: f64 = if consume == 0 {
            0.0
        } else {
            schedule.steps()[..consume].iter().map(|s| s.epsilon).sum()
        };
        prop_assert_eq!(budget.spent("prop").to_bits(), expected.to_bits());

        // Replaying the ledger reconstructs the live accountant bitwise —
        // the refund path is as auditable as the spend path.
        let report = audit_ledger(&ledger.to_bytes(), &budget).unwrap();
        prop_assert_eq!(report.total.to_bits(), budget.total_spent().to_bits());
    }
}

/// Many drivers against one shared accountant — completions and aborts
/// interleaved across `PUFFERFISH_TEST_THREADS` threads — still settle to
/// an exactly-auditable ledger, and every completed stream stays bitwise
/// equal to its one-shot comparator.
#[test]
fn concurrent_drivers_share_one_auditable_accountant() {
    let threads = test_threads();
    let class = chain_class();
    let budget = Arc::new(BudgetAccountant::new(1e6).unwrap());
    let ledger = Arc::new(EpsilonLedger::new());
    budget.attach_ledger(Arc::clone(&ledger));
    let window = 16usize;

    std::thread::scope(|scope| {
        for i in 0..threads {
            let class = &class;
            let budget = Arc::clone(&budget);
            scope.spawn(move || {
                let seed = 1000 + i as u64;
                let backend = backend_for((i % 2) as u8);
                let schedule = ladder(window, 2, 0.5);
                let events = database(window, seed);
                let user = format!("worker-{i}");
                let mut driver = ProgressiveRelease::begin(
                    "threaded-progressive",
                    class,
                    schedule.clone(),
                    backend,
                    &budget,
                    &user,
                    seed,
                )
                .unwrap();
                if i % 3 == 2 {
                    // Every third driver aborts before its first refinement.
                    assert_eq!(driver.abort(), 2);
                    return;
                }
                let mut last = None;
                for &event in &events {
                    if let Some(update) = driver.push(event).unwrap() {
                        last = Some(update);
                    }
                }
                let last = last.expect("the full window refines");
                assert!(last.is_final());
                let one_shot = ProgressiveRelease::one_shot(
                    "threaded-progressive",
                    class,
                    &schedule,
                    backend,
                    seed,
                    &events,
                )
                .unwrap();
                assert_eq!(last.release, one_shot.release);
                assert_eq!(
                    budget.spent(&user).to_bits(),
                    schedule.total_epsilon().to_bits()
                );
            });
        }
    });

    let report = audit_ledger(&ledger.to_bytes(), &budget).unwrap();
    assert_eq!(report.total.to_bits(), budget.total_spent().to_bits());
    // Aborted drivers retain nothing; completed ones retain their schedule.
    for i in 0..threads {
        let user = format!("worker-{i}");
        if i % 3 == 2 {
            assert_eq!(budget.spent(&user), 0.0, "{user} aborted everything");
        } else {
            assert!(budget.spent(&user) > 0.0, "{user} completed its stream");
        }
    }
}
