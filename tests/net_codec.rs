//! Wire-codec properties and adversarial decoding.
//!
//! Two contracts, driven through the proptest shim:
//!
//! 1. **Round-trip**: every frame kind, with arbitrary field values,
//!    survives `encode → decode` exactly, and frames concatenated on one
//!    buffer decode back in order (the streaming case).
//! 2. **Adversarial**: no byte sequence makes the decoder panic or allocate
//!    unboundedly. Truncations report [`FrameError::Truncated`], oversized
//!    length prefixes report [`FrameError::Oversized`] before any
//!    allocation, corrupted headers report the matching typed error, and
//!    bodies declaring collections far larger than the payload report
//!    [`FrameError::Malformed`].

use proptest::prelude::*;
use pufferfish_net::{
    decode, encode, Envelope, ErrorCode, Frame, FrameError, WireCell, WireMetric, WireMetricValue,
    WireQuery, WireQueryResult, WireRefinementStep, WireStats, WireWindow, DEFAULT_MAX_FRAME_LEN,
    MAGIC, VERSION,
};
use rand::Rng;

type TestRng = proptest::TestRng;

fn arbitrary_string(rng: &mut TestRng) -> String {
    let len = rng.gen_range(0..24usize);
    (0..len)
        .map(|_| {
            // Mostly ASCII with some multi-byte code points mixed in.
            match rng.gen_range(0..6u32) {
                0 => 'ε',
                1 => '→',
                _ => char::from(rng.gen_range(b' '..b'~')),
            }
        })
        .collect()
}

fn arbitrary_f64(rng: &mut TestRng) -> f64 {
    // Finite but wide-ranged (round-trip equality; NaN bit-preservation is
    // pinned by a deterministic unit test in the crate).
    let mantissa: f64 = rng.gen_range(-1.0..1.0);
    let exponent: i32 = rng.gen_range(-300..300);
    mantissa * 10f64.powi(exponent)
}

fn arbitrary_values(rng: &mut TestRng, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| arbitrary_f64(rng)).collect()
}

fn arbitrary_query(rng: &mut TestRng) -> WireQuery {
    match rng.gen_range(0..5u32) {
        0 => WireQuery::StateFrequency {
            state: rng.gen_range(0..1000u32),
            length: rng.gen_range(0..1000u32),
        },
        1 => WireQuery::StateCount {
            state: rng.gen_range(0..1000u32),
            length: rng.gen_range(0..1000u32),
        },
        2 => WireQuery::Histogram {
            num_states: rng.gen_range(0..1000u32),
            length: rng.gen_range(0..1000u32),
        },
        3 => WireQuery::RangeCount {
            lo: rng.gen_range(0..1000u32),
            hi: rng.gen_range(0..1000u32),
            num_states: rng.gen_range(0..1000u32),
            length: rng.gen_range(0..1000u32),
        },
        _ => WireQuery::MeanState {
            num_states: rng.gen_range(0..1000u32),
            length: rng.gen_range(0..1000u32),
        },
    }
}

const ERROR_CODES: [ErrorCode; 9] = [
    ErrorCode::Malformed,
    ErrorCode::NotHello,
    ErrorCode::Mechanism,
    ErrorCode::TableNotFound,
    ErrorCode::Parse,
    ErrorCode::Shutdown,
    ErrorCode::TooManyConnections,
    ErrorCode::Unsupported,
    ErrorCode::Internal,
];

fn arbitrary_metric(rng: &mut TestRng) -> WireMetric {
    let value = match rng.gen_range(0..3u32) {
        0 => WireMetricValue::Counter(rng.gen()),
        1 => WireMetricValue::Gauge(rng.gen()),
        _ => WireMetricValue::Histogram {
            count: rng.gen(),
            max: rng.gen(),
            mean: arbitrary_f64(rng),
            p50: rng.gen(),
            p99: rng.gen(),
            p999: rng.gen(),
        },
    };
    WireMetric {
        name: arbitrary_string(rng),
        value,
    }
}

/// Draws one frame of any of the sixteen kinds with arbitrary field values.
fn arbitrary_frame(rng: &mut TestRng) -> Frame {
    match rng.gen_range(0..16u32) {
        0 => Frame::Hello {
            tenant: arbitrary_string(rng),
        },
        1 => {
            let db_len = rng.gen_range(0..200usize);
            Frame::Release {
                user: rng.gen(),
                query: arbitrary_query(rng),
                epsilon: arbitrary_f64(rng),
                seed: rng.gen(),
                database: (0..db_len).map(|_| rng.gen_range(0..1000u16)).collect(),
            }
        }
        2 => Frame::Query {
            user: rng.gen(),
            table: arbitrary_string(rng),
            statement: arbitrary_string(rng),
            seed: rng.gen(),
        },
        3 => Frame::Stats,
        4 => Frame::Goodbye,
        5 => Frame::HelloOk {
            max_pipeline: rng.gen(),
            max_frame_len: rng.gen(),
        },
        6 => Frame::ReleaseOk {
            scale: arbitrary_f64(rng),
            values: arbitrary_values(rng, 64),
        },
        7 => Frame::QueryOk(WireQueryResult {
            mechanism: arbitrary_string(rng),
            noise_scale: arbitrary_f64(rng),
            total_epsilon: arbitrary_f64(rng),
            cells: (0..rng.gen_range(0..4usize))
                .map(|_| WireCell {
                    key: arbitrary_string(rng),
                    windows: (0..rng.gen_range(0..4usize))
                        .map(|_| WireWindow {
                            end: rng.gen(),
                            values: arbitrary_values(rng, 16),
                        })
                        .collect(),
                })
                .collect(),
        }),
        8 => Frame::StatsOk(WireStats {
            hits: rng.gen(),
            misses: rng.gen(),
            coalesced: rng.gen(),
            cached_calibrations: rng.gen(),
            queue_depth: rng.gen(),
            queue_capacity: rng.gen(),
            queue_refusals: rng.gen(),
            queue_high_water: rng.gen(),
            served: rng.gen(),
            users: rng.gen(),
            spent_epsilon: arbitrary_f64(rng),
            monitor_noise_tests: rng.gen(),
            monitor_noise_failures: rng.gen(),
            drift_windows: rng.gen(),
            drift_score: arbitrary_f64(rng),
            drifted: rng.gen_range(0..2u8) == 1,
            recalibrations: rng.gen(),
        }),
        9 => Frame::Busy {
            retry_hint_ms: rng.gen(),
        },
        10 => Frame::BudgetExhausted {
            requested: arbitrary_f64(rng),
            remaining: arbitrary_f64(rng),
        },
        11 => Frame::Metrics,
        12 => Frame::MetricsOk(
            (0..rng.gen_range(0..8usize))
                .map(|_| arbitrary_metric(rng))
                .collect(),
        ),
        13 => Frame::Progressive {
            user: rng.gen(),
            confidence: rng.gen_range(0.5..0.999),
            seed: rng.gen(),
            steps: (0..rng.gen_range(0..6usize))
                .map(|_| WireRefinementStep {
                    prefix: rng.gen_range(0..10_000u32),
                    epsilon: arbitrary_f64(rng),
                    error_bound: arbitrary_f64(rng),
                })
                .collect(),
            database: (0..rng.gen_range(0..100usize))
                .map(|_| rng.gen_range(0..1000u16))
                .collect(),
        },
        14 => Frame::RefineOk {
            step: rng.gen(),
            total_steps: rng.gen(),
            prefix: rng.gen(),
            scale: arbitrary_f64(rng),
            epsilon: arbitrary_f64(rng),
            certified_error: arbitrary_f64(rng),
            spent_epsilon: arbitrary_f64(rng),
            values: arbitrary_values(rng, 32),
        },
        _ => Frame::Error {
            code: ERROR_CODES[rng.gen_range(0..ERROR_CODES.len())],
            message: arbitrary_string(rng),
        },
    }
}

fn frame_strategy() -> proptest::FnStrategy<Frame, fn(&mut TestRng) -> Frame> {
    proptest::FnStrategy::new(arbitrary_frame)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity on every frame kind, consuming
    /// exactly the encoded length.
    #[test]
    fn round_trip_is_identity(frame in frame_strategy(), seq in 0u64..u64::MAX) {
        let envelope = Envelope { seq, frame };
        let bytes = encode(&envelope, DEFAULT_MAX_FRAME_LEN).expect("arbitrary frames encode");
        let (decoded, consumed) = decode(&bytes, DEFAULT_MAX_FRAME_LEN).expect("decode");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, envelope);
    }

    /// Two frames concatenated on one buffer decode back in order — the
    /// streaming accumulation the server's read loop relies on.
    #[test]
    fn concatenated_frames_stream_decode(
        first in frame_strategy(),
        second in frame_strategy(),
    ) {
        let a = Envelope { seq: 1, frame: first };
        let b = Envelope { seq: 2, frame: second };
        let mut buffer = encode(&a, DEFAULT_MAX_FRAME_LEN).unwrap();
        buffer.extend_from_slice(&encode(&b, DEFAULT_MAX_FRAME_LEN).unwrap());
        let (first_out, consumed) = decode(&buffer, DEFAULT_MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(&first_out, &a);
        let (second_out, rest) = decode(&buffer[consumed..], DEFAULT_MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(&second_out, &b);
        prop_assert_eq!(consumed + rest, buffer.len());
    }

    /// Every strict prefix of a valid encoding reports `Truncated` — the
    /// "read more bytes" signal — and never panics or misparses.
    #[test]
    fn every_truncation_reports_truncated(frame in frame_strategy(), cut in 0.0f64..1.0) {
        let envelope = Envelope { seq: 9, frame };
        let bytes = encode(&envelope, DEFAULT_MAX_FRAME_LEN).unwrap();
        let len = (cut * bytes.len() as f64) as usize; // strictly < bytes.len()
        match decode(&bytes[..len], DEFAULT_MAX_FRAME_LEN) {
            Err(FrameError::Truncated { needed, available }) => {
                prop_assert_eq!(available, len);
                prop_assert!(needed > available);
            }
            other => return Err(format!("prefix of {len} bytes decoded as {other:?}")),
        }
    }

    /// Corrupting any single byte never panics; corrupting the magic or
    /// version bytes yields exactly the matching typed error.
    #[test]
    fn corrupted_bytes_never_panic(
        frame in frame_strategy(),
        position in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        let envelope = Envelope { seq: 3, frame };
        let mut bytes = encode(&envelope, DEFAULT_MAX_FRAME_LEN).unwrap();
        let index = (position * bytes.len() as f64) as usize % bytes.len();
        bytes[index] ^= xor;
        // Must return *something* typed — any Ok/Err is fine, panics are not.
        let outcome = decode(&bytes, DEFAULT_MAX_FRAME_LEN);
        if (4..8).contains(&index) {
            prop_assert!(
                matches!(outcome, Err(FrameError::BadMagic { .. })),
                "magic corruption gave {outcome:?}"
            );
        }
        if index == 8 {
            prop_assert!(
                matches!(outcome, Err(FrameError::UnsupportedVersion { .. })),
                "version corruption gave {outcome:?}"
            );
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in collection::vec(0u8..255, 0..256usize)) {
        let _ = decode(&bytes, DEFAULT_MAX_FRAME_LEN);
        let _ = pufferfish_net::decode_payload(&bytes);
        prop_assert!(true);
    }
}

// ---------------------------------------------------------------------------
// Deterministic adversarial cases.
// ---------------------------------------------------------------------------

fn header(kind: u8, body_len: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::try_from(14 + body_len).unwrap().to_le_bytes());
    bytes.extend_from_slice(&MAGIC.to_le_bytes());
    bytes.push(VERSION);
    bytes.push(kind);
    bytes.extend_from_slice(&7u64.to_le_bytes());
    bytes
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    // Declares 4 GiB; the decoder must refuse from the 4-byte prefix alone.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 32]);
    assert_eq!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Oversized {
            declared: u32::MAX,
            max: DEFAULT_MAX_FRAME_LEN,
        })
    );
}

#[test]
fn giant_declared_collection_in_tiny_payload_is_malformed() {
    // A RELEASE whose database claims u32::MAX events inside an 8-byte tail:
    // the count guard must reject it before allocating a 4-billion-element
    // vector.
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes()); // user
    body.push(0); // StateFrequency
    body.extend_from_slice(&1u32.to_le_bytes());
    body.extend_from_slice(&60u32.to_le_bytes());
    body.extend_from_slice(&0.5f64.to_le_bytes()); // epsilon
    body.extend_from_slice(&9u64.to_le_bytes()); // seed
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // database count
    body.extend_from_slice(&[0u8; 8]); // ...but only 8 bytes of data
    let mut bytes = header(0x02, body.len());
    bytes.extend_from_slice(&body);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));

    // Same attack through a string length (HELLO tenant).
    let mut body = Vec::new();
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    body.extend_from_slice(b"ok");
    let mut bytes = header(0x01, body.len());
    bytes.extend_from_slice(&body);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));
}

#[test]
fn unknown_kind_and_trailing_bytes_are_typed_errors() {
    let bytes = header(0x42, 0);
    assert_eq!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::UnknownKind { found: 0x42 })
    );

    // A STATS frame with trailing garbage inside its declared length.
    let mut bytes = header(0x04, 3);
    bytes.extend_from_slice(&[1, 2, 3]);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));
}

#[test]
fn metrics_ok_adversarial_bodies_are_typed_errors() {
    // A METRICS_OK declaring u32::MAX metrics inside an 8-byte tail: the
    // 13-byte-per-metric floor must refuse the count before any allocation.
    let mut body = Vec::new();
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    body.extend_from_slice(&[0u8; 8]);
    let mut bytes = header(0x88, body.len());
    bytes.extend_from_slice(&body);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));

    // One metric with an unknown value-kind tag.
    let mut body = Vec::new();
    body.extend_from_slice(&1u32.to_le_bytes()); // one metric
    body.extend_from_slice(&2u32.to_le_bytes()); // name length
    body.extend_from_slice(b"ok");
    body.push(9); // unknown kind tag
    body.extend_from_slice(&0u64.to_le_bytes());
    let mut bytes = header(0x88, body.len());
    bytes.extend_from_slice(&body);
    match decode(&bytes, DEFAULT_MAX_FRAME_LEN) {
        Err(FrameError::Malformed(msg)) => assert!(msg.contains("unknown metric kind")),
        other => panic!("expected a typed unknown-kind error, got {other:?}"),
    }

    // A metric name claiming u32::MAX bytes: refused by the string guard.
    let mut body = Vec::new();
    body.extend_from_slice(&1u32.to_le_bytes());
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // giant name length
    body.extend_from_slice(&[0u8; 16]);
    let mut bytes = header(0x88, body.len());
    bytes.extend_from_slice(&body);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));

    // Truncated mid-histogram: the "read more" signal, not a misparse.
    let histogram = Frame::MetricsOk(vec![WireMetric {
        name: "stage_engine_ns".to_string(),
        value: WireMetricValue::Histogram {
            count: 10,
            max: 900,
            mean: 450.5,
            p50: 400,
            p99: 880,
            p999: 900,
        },
    }]);
    let bytes = encode(
        &Envelope {
            seq: 5,
            frame: histogram,
        },
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    assert!(matches!(
        decode(&bytes[..bytes.len() - 6], DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Truncated { .. })
    ));
}

#[test]
fn progressive_adversarial_bodies_are_typed_errors() {
    // A PROGRESSIVE declaring u32::MAX refinement steps inside an 8-byte
    // tail: the 20-byte-per-step floor must refuse the count before any
    // allocation.
    let mut body = Vec::new();
    body.extend_from_slice(&1u64.to_le_bytes()); // user
    body.extend_from_slice(&0.9f64.to_le_bytes()); // confidence
    body.extend_from_slice(&7u64.to_le_bytes()); // seed
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // step count
    body.extend_from_slice(&[0u8; 8]); // ...but only 8 bytes of data
    let mut bytes = header(0x07, body.len());
    bytes.extend_from_slice(&body);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));

    // Trailing garbage inside a valid PROGRESSIVE's declared length.
    let frame = Frame::progressive(1, 0.9, 7, &[(8, 0.5, 2.0)], &[0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
    let mut bytes = encode(&Envelope { seq: 2, frame }, DEFAULT_MAX_FRAME_LEN).unwrap();
    // The declared length excludes the 4-byte prefix itself.
    let padded = u32::try_from(bytes.len() - 4 + 2).unwrap();
    bytes[..4].copy_from_slice(&padded.to_le_bytes());
    bytes.extend_from_slice(&[0xAA, 0xBB]);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));
}

#[test]
fn refine_ok_adversarial_bodies_are_typed_errors() {
    // A REFINE_OK declaring u32::MAX refined values inside an 8-byte tail.
    let mut body = Vec::new();
    body.extend_from_slice(&1u32.to_le_bytes()); // step
    body.extend_from_slice(&2u32.to_le_bytes()); // total_steps
    body.extend_from_slice(&8u32.to_le_bytes()); // prefix
    body.extend_from_slice(&1.0f64.to_le_bytes()); // scale
    body.extend_from_slice(&0.5f64.to_le_bytes()); // epsilon
    body.extend_from_slice(&3.0f64.to_le_bytes()); // certified_error
    body.extend_from_slice(&0.5f64.to_le_bytes()); // spent_epsilon
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // value count
    body.extend_from_slice(&[0u8; 8]);
    let mut bytes = header(0x89, body.len());
    bytes.extend_from_slice(&body);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));

    // Truncated mid-values: the "read more" signal, not a misparse.
    let frame = Frame::RefineOk {
        step: 1,
        total_steps: 3,
        prefix: 16,
        scale: 2.0,
        epsilon: 0.5,
        certified_error: 6.0,
        spent_epsilon: 0.5,
        values: vec![0.25, 0.75],
    };
    let bytes = encode(&Envelope { seq: 5, frame }, DEFAULT_MAX_FRAME_LEN).unwrap();
    assert!(matches!(
        decode(&bytes[..bytes.len() - 6], DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Truncated { .. })
    ));
}

#[test]
fn declared_length_shorter_than_header_is_malformed() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&3u32.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));
}

#[test]
fn bad_utf8_and_bad_error_codes_are_malformed() {
    // HELLO with invalid UTF-8 in the tenant string.
    let mut body = Vec::new();
    body.extend_from_slice(&2u32.to_le_bytes());
    body.extend_from_slice(&[0xFF, 0xFE]);
    let mut bytes = header(0x01, body.len());
    bytes.extend_from_slice(&body);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));

    // ERROR frame with an unknown error code.
    let mut body = Vec::new();
    body.extend_from_slice(&999u16.to_le_bytes());
    body.extend_from_slice(&0u32.to_le_bytes());
    let mut bytes = header(0x87, body.len());
    bytes.extend_from_slice(&body);
    assert!(matches!(
        decode(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(FrameError::Malformed(_))
    ));
}
