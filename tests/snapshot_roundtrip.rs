//! Snapshot round-trip properties and negative paths.
//!
//! The persistence contract of the calibration store is exact: for every
//! mechanism family, every ε and every shard-count combination,
//! `export → encode → decode → import` must reproduce releases **bitwise**
//! and probe scales **bitwise**, with the importing engine performing zero
//! calibrations. The property tests below drive that contract through the
//! proptest shim; the deterministic tests cover the failure taxonomy — a
//! broken snapshot must always surface as the right typed
//! [`SnapshotError`], never as a panic or a silently empty cache.

use std::sync::Arc;

use proptest::prelude::*;
use pufferfish_baselines::{Gk16, GroupDp};
use pufferfish_core::engine::{
    markov_class_token, FnCalibrator, MqmApproxCalibrator, MqmExactCalibrator, TokenHasher,
    WassersteinCalibrator,
};
use pufferfish_core::queries::{
    LipschitzQuery, RelativeFrequencyHistogram, StateCountQuery, StateFrequencyQuery,
};
use pufferfish_core::{
    CalibrationSnapshot, Mechanism, MqmApproxOptions, MqmExactOptions, Parallelism, PrivacyBudget,
    PufferfishError, ReleaseEngine, SnapshotError,
};
use pufferfish_markov::{IntervalClassBuilder, MarkovChain, MarkovChainClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chain_class() -> MarkovChainClass {
    MarkovChainClass::singleton(
        MarkovChain::new(vec![0.7, 0.3], vec![vec![0.8, 0.2], vec![0.35, 0.65]]).unwrap(),
    )
}

fn interval_class() -> MarkovChainClass {
    IntervalClassBuilder::symmetric(0.42)
        .grid_points(2)
        .build()
        .unwrap()
}

/// The five snapshot-capable engine constructions the properties sweep.
const FAMILIES: [&str; 5] = ["mqm-exact", "mqm-approx", "gk16", "group-dp", "wasserstein"];

/// Builds a fresh engine of the given family with the given shard count.
/// The Wasserstein family is query-scoped and uses the 3-person flu
/// framework; the others calibrate for chains of `length`.
fn engine_for(family: &str, length: usize, shards: usize) -> ReleaseEngine {
    match family {
        "mqm-exact" => ReleaseEngine::with_shards(
            MqmExactCalibrator::new(chain_class(), length, MqmExactOptions::default()),
            shards,
        ),
        "mqm-approx" => ReleaseEngine::with_shards(
            MqmApproxCalibrator::new(interval_class(), length, MqmApproxOptions::default()),
            shards,
        ),
        "gk16" => {
            let class = interval_class();
            let token = TokenHasher::new("gk16")
                .mix(&markov_class_token(&class))
                .mix(&length)
                .finish();
            ReleaseEngine::with_shards(
                FnCalibrator::class_scoped("gk16", token, move |_q, budget| {
                    Ok(Arc::new(Gk16::calibrate(&class, length, budget)?) as Arc<dyn Mechanism>)
                }),
                shards,
            )
        }
        "group-dp" => {
            let token = TokenHasher::new("group-dp").mix(&length).finish();
            ReleaseEngine::with_shards(
                FnCalibrator::class_scoped("group-dp", token, move |_q, budget| {
                    Ok(Arc::new(GroupDp::calibrate(length, budget)?) as Arc<dyn Mechanism>)
                }),
                shards,
            )
        }
        "wasserstein" => {
            let framework =
                pufferfish_core::flu::flu_clique_framework(3, &[0.5, 0.1, 0.1, 0.3]).unwrap();
            ReleaseEngine::with_shards(
                WassersteinCalibrator::new(framework, Parallelism::Serial),
                shards,
            )
        }
        other => panic!("unknown family {other}"),
    }
}

/// The query and database batch the family releases in the properties.
fn workload(family: &str, length: usize) -> (Arc<dyn LipschitzQuery>, Vec<Vec<usize>>) {
    if family == "wasserstein" {
        let databases = vec![vec![1, 0, 1], vec![0, 0, 1], vec![1, 1, 1]];
        (Arc::new(StateCountQuery::new(1, 3)), databases)
    } else {
        let databases = (0..3)
            .map(|offset| (0..length).map(|t| (t + offset) % 2).collect())
            .collect();
        (
            Arc::new(RelativeFrequencyHistogram::new(2, length).unwrap()),
            databases,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// export → to_bytes → from_bytes → import reproduces `release_batch`
    /// bitwise and `noise_scale_estimate` bitwise, across mechanism
    /// families, ε values and shard counts — and the importing engine never
    /// calibrates.
    #[test]
    fn roundtrip_is_bitwise_identical_across_families(
        family_index in 0usize..5,
        epsilon_milli in 100u64..3_000,
        cold_shards in 1usize..8,
        warm_shards in 1usize..8,
        length in 24usize..48,
        seed in 0u64..1_000_000,
    ) {
        let family = FAMILIES[family_index];
        let epsilon = epsilon_milli as f64 / 1000.0;
        let length = if family == "wasserstein" { 3 } else { length };
        let budget = PrivacyBudget::new(epsilon).unwrap();
        let (query, databases) = workload(family, length);

        // Cold: calibrate at two ε values (the snapshot must carry both).
        let cold = engine_for(family, length, cold_shards);
        let other_budget = PrivacyBudget::new(epsilon * 2.0).unwrap();
        cold.mechanism(&*query, budget).unwrap();
        cold.mechanism(&*query, other_budget).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cold_releases = cold
            .release_batch(&*query, &databases, budget, &mut rng)
            .unwrap();
        let cold_scale = cold.noise_scale_estimate(&*query, other_budget).unwrap();

        // Through bytes, into a differently sharded engine.
        let snapshot = CalibrationSnapshot::from_bytes(&cold.export_snapshot().to_bytes()).unwrap();
        prop_assert_eq!(snapshot.len(), 2);
        let warm = engine_for(family, length, warm_shards);
        prop_assert_eq!(warm.import_snapshot(&snapshot).unwrap(), 2);

        let mut rng = StdRng::seed_from_u64(seed);
        let warm_releases = warm
            .release_batch(&*query, &databases, budget, &mut rng)
            .unwrap();
        prop_assert_eq!(cold_releases.len(), warm_releases.len());
        for (cold_release, warm_release) in cold_releases.iter().zip(&warm_releases) {
            prop_assert_eq!(&cold_release.values, &warm_release.values);
            prop_assert_eq!(&cold_release.true_values, &warm_release.true_values);
            prop_assert_eq!(cold_release.scale.to_bits(), warm_release.scale.to_bits());
        }
        let warm_scale = warm.noise_scale_estimate(&*query, other_budget).unwrap();
        prop_assert_eq!(cold_scale.to_bits(), warm_scale.to_bits());
        prop_assert_eq!(warm.cache_misses(), 0);

        // The restored cache re-exports to an equivalent snapshot (same
        // keys and states; the export timestamp may differ).
        let re_export = warm.export_snapshot();
        prop_assert_eq!(&re_export.entries, &snapshot.entries);
    }

    /// Bumping the version field or flipping any single body/checksum byte
    /// is always a typed decode error — never a partial decode.
    #[test]
    fn corrupted_bytes_never_decode(
        epsilon_milli in 100u64..2_000,
        flip_bit in 0u8..8,
    ) {
        let epsilon = epsilon_milli as f64 / 1000.0;
        let engine = engine_for("mqm-approx", 30, 4);
        let query = StateFrequencyQuery::new(1, 30);
        engine
            .mechanism(&query, PrivacyBudget::new(epsilon).unwrap())
            .unwrap();
        let bytes = engine.export_snapshot().to_bytes();

        // Version bump (byte 8 is the low byte of the little-endian u32).
        let mut versioned = bytes.clone();
        versioned[8] = versioned[8].wrapping_add(1);
        prop_assert!(matches!(
            CalibrationSnapshot::from_bytes(&versioned),
            Err(PufferfishError::Snapshot(SnapshotError::UnsupportedVersion { .. }))
        ));

        // Any single-bit corruption after the header: checksum mismatch.
        let header = 8 + 4 + 8;
        for at in header..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 1 << flip_bit;
            prop_assert!(matches!(
                CalibrationSnapshot::from_bytes(&corrupt),
                Err(PufferfishError::Snapshot(SnapshotError::ChecksumMismatch { .. }))
            ));
        }

        // Every strict prefix is Truncated.
        for len in [0, 7, header - 1, header, bytes.len() / 2, bytes.len() - 1] {
            prop_assert!(matches!(
                CalibrationSnapshot::from_bytes(&bytes[..len]),
                Err(PufferfishError::Snapshot(SnapshotError::Truncated { .. }))
            ));
        }
    }
}

/// CI cross-process gate: when `PUFFERFISH_CI_SNAPSHOT` names a file
/// exported by `examples/snapshot_cycle.rs export` in a **previous CI
/// step** (a separate process), import it here and require zero
/// calibrations plus bitwise-identical seeded releases against an engine
/// calibrated cold inside *this* process. Without the variable (local
/// runs) the test passes vacuously — the in-process properties above
/// cover the format.
#[test]
fn ci_snapshot_from_previous_step_imports_cleanly() {
    let Ok(path) = std::env::var("PUFFERFISH_CI_SNAPSHOT") else {
        return;
    };
    // Must mirror the engine `examples/snapshot_cycle.rs` constructs.
    let make_engine = || {
        let chain =
            MarkovChain::with_stationary_initial(vec![vec![0.85, 0.15], vec![0.35, 0.65]]).unwrap();
        ReleaseEngine::new(MqmExactCalibrator::new(
            MarkovChainClass::singleton(chain),
            100,
            MqmExactOptions::default(),
        ))
    };
    let query = StateFrequencyQuery::new(1, 100);
    let database: Vec<usize> = (0..100).map(|t| (t / 3) % 2).collect();
    let release_at = |engine: &ReleaseEngine, epsilon: f64| {
        let budget = PrivacyBudget::new(epsilon).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        engine.release(&query, &database, budget, &mut rng).unwrap()
    };

    let snapshot = CalibrationSnapshot::read_from_file(&path).unwrap();
    let warm = make_engine();
    let imported = warm.import_snapshot(&snapshot).unwrap();
    assert!(imported > 0, "the CI snapshot must carry calibrations");

    let cold = make_engine();
    for &epsilon in &[0.5, 1.0, 2.0] {
        let warm_release = release_at(&warm, epsilon);
        let cold_release = release_at(&cold, epsilon);
        assert_eq!(warm_release.values, cold_release.values);
        assert_eq!(warm_release.scale.to_bits(), cold_release.scale.to_bits());
    }
    assert_eq!(
        warm.cache_misses(),
        0,
        "the other process's snapshot must cover every ε this process releases at"
    );
}

/// A snapshot file that was truncated on disk yields the typed error and
/// leaves an importing engine's cache untouched.
#[test]
fn truncated_file_is_typed_and_never_empties_the_cache() {
    let dir = std::env::temp_dir().join(format!(
        "pufferfish-snapshot-negative-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("truncated.pfsnap");

    let engine = engine_for("mqm-exact", 30, 2);
    let query = StateFrequencyQuery::new(1, 30);
    let budget = PrivacyBudget::new(1.0).unwrap();
    engine.mechanism(&query, budget).unwrap();
    let full = engine.export_snapshot();
    let bytes = full.to_bytes();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
    assert!(matches!(
        CalibrationSnapshot::read_from_file(&path),
        Err(PufferfishError::Snapshot(SnapshotError::Truncated {
            needed,
            available
        })) if needed == bytes.len() && available == bytes.len() - 5
    ));

    // Flipped checksum byte on disk.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    std::fs::write(&path, &corrupt).unwrap();
    assert!(matches!(
        CalibrationSnapshot::read_from_file(&path),
        Err(PufferfishError::Snapshot(
            SnapshotError::ChecksumMismatch { .. }
        ))
    ));

    // Bumped version field on disk.
    let mut versioned = bytes.clone();
    versioned[8] += 1;
    std::fs::write(&path, &versioned).unwrap();
    assert!(matches!(
        CalibrationSnapshot::read_from_file(&path),
        Err(PufferfishError::Snapshot(
            SnapshotError::UnsupportedVersion { .. }
        ))
    ));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Importing a snapshot from a *different* calibrator (class token
/// mismatch) is refused wholesale: typed error, cache untouched.
#[test]
fn class_mismatch_is_refused_without_touching_the_cache() {
    let source = engine_for("mqm-exact", 30, 2);
    let query = StateFrequencyQuery::new(1, 30);
    let budget = PrivacyBudget::new(1.0).unwrap();
    source.mechanism(&query, budget).unwrap();
    let snapshot = source.export_snapshot();

    // Same family, different length ⇒ different class token.
    let other = engine_for("mqm-exact", 40, 2);
    other
        .mechanism(&StateFrequencyQuery::new(1, 40), budget)
        .unwrap();
    let before = other.len();
    assert!(matches!(
        other.import_snapshot(&snapshot),
        Err(PufferfishError::Snapshot(
            SnapshotError::EngineMismatch { .. }
        ))
    ));
    assert_eq!(other.len(), before, "a refused import must change nothing");
    assert_eq!(other.cache_misses(), 1);
}

/// A snapshot naming a family this build cannot restore is refused before
/// any entry is imported.
#[test]
fn unknown_family_is_refused_atomically() {
    let source = engine_for("group-dp", 30, 2);
    let query = StateFrequencyQuery::new(1, 30);
    let budget = PrivacyBudget::new(1.0).unwrap();
    source.mechanism(&query, budget).unwrap();
    let mut snapshot = source.export_snapshot();
    snapshot.entries[0].state.family = "quantum-annealer".to_string();

    let target = engine_for("group-dp", 30, 2);
    assert!(matches!(
        target.import_snapshot(&snapshot),
        Err(PufferfishError::Snapshot(SnapshotError::UnknownFamily(f))) if f == "quantum-annealer"
    ));
    assert!(
        target.is_empty(),
        "no entry may be imported from a refused snapshot"
    );
}
