//! Empirical privacy check: the calibrated mechanisms satisfy the
//! ε-Pufferfish likelihood-ratio bound (Definition 2.1) when measured
//! directly on the released output distributions.
//!
//! For a scalar query released with Laplace noise of scale `b`, the
//! likelihood ratio of observing any output `w` under two conditional values
//! of the query is at most `exp(|F_a - F_b| / b)`. The test verifies that the
//! worst-case conditional shift of the query value divided by the calibrated
//! scale never exceeds ε (this is exactly the quantity the privacy proofs
//! bound).

use pufferfish_core::flu::flu_clique_framework;
use pufferfish_core::queries::{LipschitzQuery, StateCountQuery, StateFrequencyQuery};
use pufferfish_core::{MqmExact, MqmExactOptions, PrivacyBudget, WassersteinMechanism};
use pufferfish_markov::{MarkovChain, MarkovChainClass, TransitionPowers};

/// Wasserstein Mechanism on the flu clique: the ∞-Wasserstein coupling bound
/// means the conditional query distributions can be matched so that no value
/// moves further than W, hence shift / scale <= epsilon.
#[test]
fn wasserstein_mechanism_ratio_bound() {
    for epsilon in [0.5, 1.0, 4.0] {
        let framework = flu_clique_framework(4, &[0.1, 0.15, 0.5, 0.15, 0.1]).unwrap();
        let query = StateCountQuery::new(1, 4);
        let mechanism = WassersteinMechanism::calibrate(
            &framework,
            &query,
            PrivacyBudget::new(epsilon).unwrap(),
        )
        .unwrap();
        // The worst-case matched displacement is the Wasserstein parameter.
        let shift = mechanism.wasserstein_parameter();
        let scale = mechanism.noise_scale();
        assert!(
            shift / scale <= epsilon + 1e-9,
            "epsilon {epsilon}: shift {shift} scale {scale}"
        );
    }
}

/// MQMExact on a binary chain: for the winning quilt of every node, the
/// privacy proof needs card(X_N) * L / scale + max-influence <= epsilon.
/// Re-derive both quantities independently and check the inequality.
#[test]
fn mqm_exact_per_node_privacy_budget_split() {
    let epsilon = 1.0;
    let length = 60;
    let chain = MarkovChain::new(vec![0.7, 0.3], vec![vec![0.85, 0.15], vec![0.4, 0.6]]).unwrap();
    let class = MarkovChainClass::singleton(chain.clone());
    let mechanism = MqmExact::calibrate(
        &class,
        length,
        PrivacyBudget::new(epsilon).unwrap(),
        MqmExactOptions::default(),
    )
    .unwrap();
    let query = StateFrequencyQuery::new(1, length);
    let scale = mechanism.noise_scale_for(&query);
    let lipschitz = query.lipschitz_constant();

    // For every node, *some* quilt must satisfy the split; the mechanism's
    // sigma_max is the max over nodes of the best split, so it suffices to
    // verify the winning selection reported by the calibration.
    let selection = mechanism.selections()[0];
    let powers = TransitionPowers::new(&chain, length - 1, length).unwrap();
    let influence = pufferfish_core::chain_max_influence(
        &powers,
        selection.node,
        selection.shape,
        pufferfish_core::InitialDistributionMode::FixedInitial,
    )
    .unwrap();
    let card = selection.shape.card_nearby(selection.node, length);
    // The noise consumes (card * L / scale) of the budget; the rest covers
    // the max-influence of the remote nodes.
    let consumed = card as f64 * lipschitz / scale + influence;
    assert!(
        consumed <= epsilon + 1e-9,
        "budget split violated: {consumed} > {epsilon}"
    );
}

/// The trivial quilt always gives a valid fallback: sigma_max <= T / epsilon
/// for every mechanism configuration, including narrow width caps.
#[test]
fn trivial_quilt_fallback_bound() {
    let length = 40;
    let slow =
        MarkovChain::new(vec![0.5, 0.5], vec![vec![0.995, 0.005], vec![0.005, 0.995]]).unwrap();
    let class = MarkovChainClass::singleton(slow);
    for epsilon in [0.2, 1.0, 5.0] {
        for width in [Some(2), Some(10), None] {
            let mechanism = MqmExact::calibrate(
                &class,
                length,
                PrivacyBudget::new(epsilon).unwrap(),
                MqmExactOptions {
                    max_quilt_width: width,
                    search_middle_only: false,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(mechanism.sigma_max() <= length as f64 / epsilon + 1e-9);
            assert!(mechanism.sigma_max() > 0.0);
        }
    }
}
