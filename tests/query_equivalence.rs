//! Property tests: a parsed-then-planned query executes **bitwise-
//! identically** to the equivalent direct `Mechanism::release_batch` call
//! under the same seed, across every mechanism choice (fixed and auto).
//!
//! This is the query layer's core correctness contract: the planner and the
//! fused/parallel executor may only change *how fast* an answer is computed,
//! never a single bit of the answer itself.

use std::sync::Arc;

use proptest::prelude::*;
use pufferfish_baselines::{Gk16, GroupDp};
use pufferfish_core::{
    Mechanism, MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions, PrivacyBudget,
};
use pufferfish_markov::{IntervalClassBuilder, MarkovChainClass};
use pufferfish_parallel::Parallelism;
use pufferfish_query::{
    cell_seed, execute_plan, parse_statement, plan_statement, MechanismCatalog, MechanismKind,
    Table,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The execution policy under test: `default`, unless the CI matrix pinned
/// an explicit thread count via `PUFFERFISH_TEST_THREADS`.
fn test_parallelism(default: Parallelism) -> Parallelism {
    std::env::var("PUFFERFISH_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Parallelism::Threads)
        .unwrap_or(default)
}

/// A weakly correlated binary class: every registered mechanism family
/// (including GK16, whose influence norm must stay below 1) calibrates.
fn weak_class() -> MarkovChainClass {
    IntervalClassBuilder::symmetric(0.45)
        .grid_points(2)
        .build()
        .unwrap()
}

/// Deterministic 60-record binary sequence.
fn sequence(len: usize) -> Vec<usize> {
    (0..len).map(|t| (t * 7 + 3) % 13 % 2).collect()
}

/// Calibrates `kind` directly on the concrete types — no engine, no cache —
/// exactly as a pre-query-layer call site would.
fn direct_mechanism(
    kind: MechanismKind,
    class: &MarkovChainClass,
    length: usize,
    budget: PrivacyBudget,
) -> Arc<dyn Mechanism> {
    match kind {
        MechanismKind::Mqm => Arc::new(
            MqmExact::calibrate(class, length, budget, MqmExactOptions::default()).unwrap(),
        ),
        MechanismKind::MqmApprox => Arc::new(
            MqmApprox::calibrate(class, length, budget, MqmApproxOptions::default()).unwrap(),
        ),
        MechanismKind::Gk16 => Arc::new(Gk16::calibrate(class, length, budget).unwrap()),
        MechanismKind::GroupDp => Arc::new(GroupDp::calibrate(length, budget).unwrap()),
        MechanismKind::Wasserstein => {
            unreachable!("no framework is registered in these tests")
        }
    }
}

/// The window sweep a `WINDOW w STEP s` clause performs, spelled out
/// independently of the planner.
fn direct_windows(sequence: &[usize], width: usize, step: usize) -> Vec<Vec<usize>> {
    let mut windows = Vec::new();
    let mut start = 0;
    while start + width <= sequence.len() {
        windows.push(sequence[start..start + width].to_vec());
        start += step;
    }
    windows
}

const EPSILONS: [f64; 3] = [0.3, 0.7, 1.1];
const AGGREGATES: [&str; 4] = ["COUNT STATE 1", "HISTOGRAM", "RANGE 0 0", "MEAN"];
const MECHANISMS: [&str; 5] = ["auto", "mqm", "mqm_approx", "gk16", "group_dp"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single-group queries: planned execution consumes exactly the noise
    /// stream of `mechanism.release_batch(query, windows, seed_from(seed))`.
    #[test]
    fn planned_execution_is_bitwise_identical_to_direct_calls(
        width in 10usize..24,
        step in 3usize..12,
        eps_index in 0usize..3,
        aggregate_index in 0usize..4,
        mechanism_index in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let class = weak_class();
        let catalog = MechanismCatalog::new(class.clone());
        let data = sequence(60);
        let table = Table::single("s", 2, data.clone()).unwrap();
        let epsilon = EPSILONS[eps_index];
        let text = format!(
            "{} WINDOW {width} STEP {step} EPSILON {epsilon} MECHANISM {}",
            AGGREGATES[aggregate_index], MECHANISMS[mechanism_index],
        );
        let statement = parse_statement(&text).unwrap();
        let plan = plan_statement(&catalog, &statement, &table).unwrap();
        let result = execute_plan(&plan, seed, test_parallelism(Parallelism::Auto)).unwrap();

        // The direct call a caller would have written by hand.
        let budget = PrivacyBudget::new(epsilon).unwrap();
        let mechanism = direct_mechanism(plan.chosen(), &class, width, budget);
        let windows = direct_windows(&data, width, step);
        let mut rng = StdRng::seed_from_u64(seed);
        let direct = mechanism
            .release_batch(&*plan_query(&plan), &windows, &mut rng)
            .unwrap();

        prop_assert_eq!(result.cells().len(), 1);
        let planned = result.cells()[0].releases();
        prop_assert_eq!(planned.len(), direct.len());
        for (a, b) in planned.iter().zip(&direct) {
            prop_assert_eq!(a.scale.to_bits(), b.scale.to_bits());
            prop_assert_eq!(a.true_values.len(), b.true_values.len());
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.true_values.iter().zip(&b.true_values) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Group-by queries: each cell matches a direct call seeded with the
    /// published `cell_seed` derivation, on every parallelism policy.
    #[test]
    fn grouped_execution_matches_per_cell_direct_calls(
        width in 8usize..16,
        eps_index in 0usize..3,
        mechanism_index in 1usize..5, // fixed mechanisms only
        seed in 0u64..1_000_000,
        threads in 1usize..5,
    ) {
        let class = weak_class();
        let catalog = MechanismCatalog::new(class.clone());
        let groups: Vec<(String, Vec<usize>)> = (0..4)
            .map(|g| (format!("user-{g}"), (0..40).map(|t| (t + g) % 2).collect()))
            .collect();
        let table = Table::grouped("users", 2, groups.clone()).unwrap();
        let epsilon = EPSILONS[eps_index];
        let text = format!(
            "HISTOGRAM WINDOW {width} GROUP BY user EPSILON {epsilon} MECHANISM {}",
            MECHANISMS[mechanism_index],
        );
        let statement = parse_statement(&text).unwrap();
        let plan = plan_statement(&catalog, &statement, &table).unwrap();
        let result =
            execute_plan(&plan, seed, test_parallelism(Parallelism::Threads(threads))).unwrap();

        let budget = PrivacyBudget::new(epsilon).unwrap();
        let mechanism = direct_mechanism(plan.chosen(), &class, width, budget);
        prop_assert_eq!(result.cells().len(), groups.len());
        for (index, (key, data)) in groups.iter().enumerate() {
            let windows = direct_windows(data, width, width);
            let mut rng = StdRng::seed_from_u64(cell_seed(seed, index));
            let direct = mechanism
                .release_batch(&*plan_query(&plan), &windows, &mut rng)
                .unwrap();
            let cell = &result.cells()[index];
            prop_assert_eq!(cell.key(), key.as_str());
            prop_assert_eq!(cell.releases().len(), direct.len());
            for (a, b) in cell.releases().iter().zip(&direct) {
                for (x, y) in a.values.iter().zip(&b.values) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

/// Rebuilds the plan's concrete query from its statement — the test must not
/// reach into plan internals, and the aggregate → query mapping is public.
fn plan_query(plan: &pufferfish_query::QueryPlan) -> Arc<dyn pufferfish_core::LipschitzQuery> {
    let window = plan.statement().window.expect("tests always use WINDOW");
    plan.statement()
        .aggregate
        .to_query(2, window.width)
        .unwrap()
}
