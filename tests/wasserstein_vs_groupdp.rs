//! Property-style integration test for Theorem 3.3: the Wasserstein
//! Mechanism's parameter W never exceeds the group-DP sensitivity of the
//! query, across randomly generated clique instantiations.
//!
//! (The sweep is a hand-rolled seeded random search rather than proptest —
//! the offline build environment has no crates.io access — but covers the
//! same property space: random clique sizes, random infection
//! distributions, random epsilon pairs.)

use pufferfish_core::flu::flu_clique_framework;
use pufferfish_core::queries::StateCountQuery;
use pufferfish_core::{PrivacyBudget, WassersteinMechanism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_infection_distribution<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let weights: Vec<f64> = (0..=n).map(|_| rng.gen_range(0.01..1.0)).collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

/// Theorem 3.3: W <= group sensitivity (= clique size for the count query),
/// and W >= 0.
#[test]
fn wasserstein_parameter_bounded_by_group_sensitivity() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for _case in 0..48 {
        let n = rng.gen_range(2usize..6);
        let dist = random_infection_distribution(n, &mut rng);
        let framework = flu_clique_framework(n, &dist).unwrap();
        let query = StateCountQuery::new(1, n);
        let mechanism =
            WassersteinMechanism::calibrate(&framework, &query, PrivacyBudget::new(1.0).unwrap())
                .unwrap();
        let w = mechanism.wasserstein_parameter();
        assert!(w >= 0.0);
        assert!(
            w <= n as f64 + 1e-9,
            "W = {w} exceeds group sensitivity {n} for dist {dist:?}"
        );
    }
}

/// The calibrated Laplace scale decreases as epsilon grows, for any
/// instantiation.
#[test]
fn noise_scale_monotone_in_epsilon() {
    let mut rng = StdRng::seed_from_u64(0xB0A7);
    for _case in 0..48 {
        let n = rng.gen_range(2usize..5);
        let dist = random_infection_distribution(n, &mut rng);
        let eps_small = rng.gen_range(0.1..1.0);
        let eps_factor = rng.gen_range(1.5..10.0);
        let framework = flu_clique_framework(n, &dist).unwrap();
        let query = StateCountQuery::new(1, n);
        let small = WassersteinMechanism::calibrate(
            &framework,
            &query,
            PrivacyBudget::new(eps_small).unwrap(),
        )
        .unwrap();
        let large = WassersteinMechanism::calibrate(
            &framework,
            &query,
            PrivacyBudget::new(eps_small * eps_factor).unwrap(),
        )
        .unwrap();
        assert!(
            large.noise_scale() <= small.noise_scale() + 1e-12,
            "scale not monotone for n={n}, eps={eps_small}, factor={eps_factor}"
        );
    }
}
