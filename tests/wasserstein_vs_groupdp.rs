//! Property-based integration test for Theorem 3.3: the Wasserstein
//! Mechanism's parameter W never exceeds the group-DP sensitivity of the
//! query, across randomly generated clique instantiations.

use proptest::prelude::*;
use pufferfish_core::flu::flu_clique_framework;
use pufferfish_core::queries::StateCountQuery;
use pufferfish_core::{PrivacyBudget, WassersteinMechanism};

fn infection_distribution(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, n + 1).prop_map(|weights| {
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3.3: W <= group sensitivity (= clique size for the count
    /// query), and W >= 0.
    #[test]
    fn wasserstein_parameter_bounded_by_group_sensitivity(
        n in 2usize..6,
        dist in infection_distribution(5),
    ) {
        let dist = &dist[..=n];
        let total: f64 = dist.iter().sum();
        let dist: Vec<f64> = dist.iter().map(|p| p / total).collect();
        let framework = flu_clique_framework(n, &dist).unwrap();
        let query = StateCountQuery::new(1, n);
        let mechanism = WassersteinMechanism::calibrate(
            &framework,
            &query,
            PrivacyBudget::new(1.0).unwrap(),
        )
        .unwrap();
        let w = mechanism.wasserstein_parameter();
        prop_assert!(w >= 0.0);
        prop_assert!(w <= n as f64 + 1e-9, "W = {w} exceeds group sensitivity {n}");
    }

    /// The calibrated Laplace scale decreases as epsilon grows, for any
    /// instantiation.
    #[test]
    fn noise_scale_monotone_in_epsilon(
        n in 2usize..5,
        dist in infection_distribution(4),
        eps_small in 0.1f64..1.0,
        eps_factor in 1.5f64..10.0,
    ) {
        let dist = &dist[..=n];
        let total: f64 = dist.iter().sum();
        let dist: Vec<f64> = dist.iter().map(|p| p / total).collect();
        let framework = flu_clique_framework(n, &dist).unwrap();
        let query = StateCountQuery::new(1, n);
        let small = WassersteinMechanism::calibrate(
            &framework,
            &query,
            PrivacyBudget::new(eps_small).unwrap(),
        )
        .unwrap();
        let large = WassersteinMechanism::calibrate(
            &framework,
            &query,
            PrivacyBudget::new(eps_small * eps_factor).unwrap(),
        )
        .unwrap();
        prop_assert!(large.noise_scale() <= small.noise_scale() + 1e-12);
    }
}
