//! Smoke test of the full experiment harness: every table/figure module runs
//! end-to-end on a reduced configuration and produces results with the shape
//! the paper reports.

use pufferfish_bench::{activity, electricity, figure4, timing};

#[test]
fn figure4_pipeline_runs() {
    let config = figure4::Figure4Config {
        length: 100,
        trials: 5,
        alphas: &[0.2, 0.4],
        epsilons: &[1.0],
        grid_points: 3,
        seed: 1,
    };
    let cells = figure4::run(config).unwrap();
    assert_eq!(cells.len(), 2);
    let text = figure4::render(&cells, &[1.0]);
    assert!(text.contains("alpha"));
    assert!(text.contains("MQMApprox"));
}

#[test]
fn activity_pipeline_runs() {
    let config = activity::ActivityConfig {
        observations_per_participant: 800,
        participants: Some(3),
        trials: 2,
        epsilon: 1.0,
        seed: 2,
    };
    let results = activity::run(config).unwrap();
    assert_eq!(results.len(), 3);
    let table = activity::render_table1(&results, 1.0);
    assert!(table.contains("GroupDP"));
    let figure = activity::render_figure4_lower(&results);
    assert!(figure.contains("Active"));
    // Error ordering from Table 1 holds even at this reduced scale.
    for result in &results {
        assert!(result.individual_errors.mqm_approx < result.individual_errors.group_dp);
    }
}

#[test]
fn table2_pipeline_runs() {
    let config = timing::Table2Config {
        synthetic_length: 100,
        activity_length: 600,
        activity_participants: Some(2),
        electricity_length: 6_000,
        repetitions: 1,
        epsilon: 1.0,
        seed: 3,
    };
    let results = timing::run(config).unwrap();
    assert_eq!(results.len(), 5);
    let table = timing::render(&results, 1.0);
    assert!(table.contains("Synthetic"));
    assert!(table.contains("MQMExact"));
}

#[test]
fn table3_pipeline_runs() {
    let config = electricity::Table3Config {
        length: 8_000,
        trials: 2,
        epsilons: &[1.0, 5.0],
        seed: 4,
    };
    let cells = electricity::run(config).unwrap();
    assert_eq!(cells.len(), 2);
    // Error decreases with epsilon.
    assert!(cells[0].mqm_exact >= cells[1].mqm_exact);
    let table = electricity::render(&cells);
    assert!(table.contains("epsilon = 1"));
}
