//! The ε-audit contract, end to end: every workload the accountant admits —
//! randomized, concurrent, multi-tenant, with refusals, refunds and
//! recalibrations mixed in — must leave behind a ledger whose replay
//! reconstructs the live accountant **bitwise**, and every damaged ledger
//! must fail its audit with a typed error, never a silently shortened or
//! "almost matching" reconstruction.

use std::sync::Arc;

use proptest::prelude::*;
use pufferfish_service::{audit_ledger, AuditError, BudgetAccountant, SpendTag};
use pufferfish_telemetry::{
    query_signature, EpsilonLedger, LedgerError, LedgerEvent, LedgerEventKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Worker count for the concurrent workload: the CI matrix pins it via
/// `PUFFERFISH_TEST_THREADS`; 4 otherwise.
fn test_threads() -> usize {
    std::env::var("PUFFERFISH_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

const QUERIES: [&str; 3] = ["state-frequency", "histogram", "range-count"];
const FAMILIES: [&str; 3] = ["mqm-approx", "wasserstein", "gk16"];
const EPSILONS: [f64; 4] = [0.1, 0.25, 0.3, 0.7];

fn arbitrary_tag(rng: &mut StdRng, seq: u64) -> SpendTag<'static> {
    SpendTag {
        query_sig: query_signature(QUERIES[rng.gen_range(0..QUERIES.len())]),
        family: FAMILIES[rng.gen_range(0..FAMILIES.len())],
        seq,
    }
}

/// Drives one randomized workload — charges, natural refusals, refunds of
/// earlier charges — against a fresh accountant with an attached ledger.
fn run_workload(seed: u64, target: f64, steps: u64) -> (Arc<BudgetAccountant>, Arc<EpsilonLedger>) {
    let budget = Arc::new(BudgetAccountant::new(target).unwrap());
    let ledger = Arc::new(EpsilonLedger::new());
    budget.attach_ledger(Arc::clone(&ledger));

    let mut rng = StdRng::seed_from_u64(seed);
    // Per-user history of admitted (ε, tag) pairs, for legal refunds.
    let mut charged: Vec<Vec<(f64, SpendTag<'static>)>> = vec![Vec::new(); 4];
    for seq in 0..steps {
        let user_index = rng.gen_range(0..charged.len());
        let user = format!("t#{user_index}");
        if !charged[user_index].is_empty() && rng.gen_range(0..4u32) == 0 {
            // Refund one earlier admitted charge, exactly as the service
            // does when a queue refusal or execution failure rolls back.
            let pick = rng.gen_range(0..charged[user_index].len());
            let (epsilon, tag) = charged[user_index].remove(pick);
            assert!(budget.refund_tagged(&user, epsilon, tag));
        } else {
            let epsilon = EPSILONS[rng.gen_range(0..EPSILONS.len())];
            let tag = arbitrary_tag(&mut rng, seq);
            // Refusals land in the ledger too; only admissions enter the
            // refundable history.
            if budget.try_spend_tagged(&user, epsilon, tag).is_ok() {
                charged[user_index].push((epsilon, tag));
            }
        }
    }
    (budget, ledger)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single-threaded workload of charges, refusals and refunds
    /// replays to bitwise equality with the live accountant.
    #[test]
    fn randomized_workloads_audit_bitwise(
        seed in 0u64..10_000,
        target_index in 0usize..3,
        steps in 10u64..120,
    ) {
        let target = [1.0, 2.5, 10.0][target_index];
        let (budget, ledger) = run_workload(seed, target, steps);
        let report = audit_ledger(&ledger.to_bytes(), &budget)
            .expect("a faithful ledger must audit clean");
        prop_assert_eq!(report.events, ledger.events());
        // Bitwise, not approximately, equal.
        prop_assert_eq!(report.total.to_bits(), budget.total_spent().to_bits());
        for (user, &spent) in &report.per_user {
            prop_assert_eq!(spent.to_bits(), budget.spent(user).to_bits());
        }
    }

    /// Every strict truncation of a ledger either reports a typed decode
    /// error or (when the cut lands exactly on a record boundary) replays
    /// fewer events and then fails the bitwise audit — corruption can
    /// never produce a *passing* audit of a different history.
    #[test]
    fn truncations_never_pass_the_audit(seed in 0u64..1000, cut in 0.0f64..1.0) {
        let (budget, ledger) = run_workload(seed, 2.5, 60);
        let bytes = ledger.to_bytes();
        let full = audit_ledger(&bytes, &budget).expect("intact ledger audits clean");
        prop_assume!(full.total != 0.0);
        let len = (cut * bytes.len() as f64) as usize; // strictly < bytes.len()
        if let Ok(report) = audit_ledger(&bytes[..len], &budget) {
            return Err(format!(
                "a {len}-byte prefix of a {}-byte ledger audited clean: {report:?}",
                bytes.len()
            ));
        }
    }
}

#[test]
fn concurrent_multi_tenant_workload_audits_bitwise() {
    let threads = test_threads();
    let budget = Arc::new(BudgetAccountant::new(1e6).unwrap());
    let ledger = Arc::new(EpsilonLedger::new());
    budget.attach_ledger(Arc::clone(&ledger));

    // Each thread is one tenant hammering its own users *and* a shared
    // user every tenant touches — the accountant's lock orders the ledger,
    // so replay must still agree bitwise despite the scheduling races.
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let budget = Arc::clone(&budget);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(thread as u64);
                let mut refundable: Vec<(String, f64, SpendTag<'static>)> = Vec::new();
                for step in 0..400u64 {
                    let user = match rng.gen_range(0..3u32) {
                        0 => "shared#0".to_string(),
                        _ => format!("t{thread}#{}", rng.gen_range(0..3u32)),
                    };
                    if !refundable.is_empty() && rng.gen_range(0..5u32) == 0 {
                        let (user, epsilon, tag) =
                            refundable.remove(rng.gen_range(0..refundable.len()));
                        assert!(budget.refund_tagged(&user, epsilon, tag));
                    } else {
                        let epsilon = EPSILONS[rng.gen_range(0..EPSILONS.len())];
                        let tag = arbitrary_tag(&mut rng, step);
                        if budget.try_spend_tagged(&user, epsilon, tag).is_ok() {
                            refundable.push((user, epsilon, tag));
                        }
                    }
                }
            });
        }
    });

    let report = audit_ledger(&ledger.to_bytes(), &budget).unwrap();
    assert_eq!(report.events, ledger.events());
    assert!(report.events >= 400, "the workload must actually have run");
    assert_eq!(report.total.to_bits(), budget.total_spent().to_bits());
    assert!(report.per_user.contains_key("shared#0"));
}

#[test]
fn recalibration_events_ride_along_without_perturbing_the_audit() {
    let (budget, ledger) = run_workload(7, 2.5, 40);
    let before = audit_ledger(&ledger.to_bytes(), &budget).unwrap();
    // A canary swap logs a Recalibration row (no user, ε 0) — exactly what
    // `ReleaseService::swap_engine` records.
    ledger.record(LedgerEventKind::Recalibration, "", 0, "wasserstein", 0.0, 0);
    let after = audit_ledger(&ledger.to_bytes(), &budget).unwrap();
    assert_eq!(after.events, before.events + 1);
    assert_eq!(after.total.to_bits(), before.total.to_bits());
    assert_eq!(after.per_user, before.per_user);

    let events = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
    let last = events.last().unwrap();
    assert_eq!(last.kind, LedgerEventKind::Recalibration);
    assert_eq!(last.family, "wasserstein");
}

#[test]
fn corrupted_ledgers_fail_with_the_matching_typed_error() {
    let (budget, ledger) = run_workload(11, 2.5, 30);
    let bytes = ledger.to_bytes();

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        audit_ledger(&bad, &budget),
        Err(AuditError::Ledger(LedgerError::BadMagic { .. }))
    ));

    // Unsupported version.
    let mut bad = bytes.clone();
    bad[8] ^= 0x40;
    assert!(matches!(
        audit_ledger(&bad, &budget),
        Err(AuditError::Ledger(LedgerError::UnsupportedVersion { .. }))
    ));

    // Flipping one payload byte trips the record checksum.
    let mut bad = bytes.clone();
    let target = bytes.len() / 2;
    bad[target] ^= 0x01;
    match audit_ledger(&bad, &budget) {
        Err(AuditError::Ledger(
            LedgerError::ChecksumMismatch { .. }
            | LedgerError::Truncated { .. }
            | LedgerError::Malformed(_),
        )) => {}
        other => panic!("mid-ledger corruption must be typed, got {other:?}"),
    }

    // Cutting mid-record is the canonical Truncated.
    let cut = bytes.len() - 3;
    assert!(matches!(
        audit_ledger(&bytes[..cut], &budget),
        Err(AuditError::Ledger(LedgerError::Truncated { .. }))
    ));

    // Splicing a record in (re-appending the last record's bytes) breaks
    // the monotonic index check.
    let events = EpsilonLedger::replay(&bytes).unwrap();
    let mut spliced = bytes.clone();
    let tail_start = {
        // Find the last record's start by replaying lengths from the header.
        let mut pos = 12usize;
        let mut last = pos;
        while pos < bytes.len() {
            last = pos;
            let body_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4 + body_len + 8;
        }
        last
    };
    spliced.extend_from_slice(&bytes[tail_start..]);
    assert!(matches!(
        EpsilonLedger::replay(&spliced),
        Err(LedgerError::Malformed(_))
    ));
    assert_eq!(events.len() as u64, ledger.events());
}

#[test]
fn a_ledger_written_to_disk_replays_identically() {
    let (budget, ledger) = run_workload(13, 10.0, 50);
    let path = std::env::temp_dir().join(format!(
        "pufferfish-ledger-replay-{}.bin",
        std::process::id()
    ));
    let written = ledger.write_to_file(&path).unwrap();
    let from_disk = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(written, from_disk.len() as u64);
    assert_eq!(from_disk, ledger.to_bytes());

    let report = audit_ledger(&from_disk, &budget).unwrap();
    assert_eq!(report.total.to_bits(), budget.total_spent().to_bits());

    let replayed = EpsilonLedger::replay(&from_disk).unwrap();
    let again = EpsilonLedger::replay(&ledger.to_bytes()).unwrap();
    let key = |e: &LedgerEvent| (e.index, e.kind, e.user.clone(), e.epsilon.to_bits(), e.seq);
    assert_eq!(
        replayed.iter().map(key).collect::<Vec<_>>(),
        again.iter().map(key).collect::<Vec<_>>()
    );
}
