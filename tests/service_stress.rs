//! Concurrency stress suite for the sharded release engine and the serving
//! layer: one shared engine hammered from many threads, with exact
//! accounting assertions (calibrate-once per key, bitwise-stable noise
//! scales, no budget overdraw). Deliberately loom-free — plain OS threads,
//! barriers for maximum contention, and properties that must hold on *every*
//! interleaving.

use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};

use pufferfish_core::engine::{MqmApproxCalibrator, MqmExactCalibrator, ReleaseEngine};
use pufferfish_core::queries::StateFrequencyQuery;
use pufferfish_core::{MqmApproxOptions, MqmExactOptions, Parallelism, PrivacyBudget};
use pufferfish_markov::{IntervalClassBuilder, MarkovChain, MarkovChainClass};
use pufferfish_service::{
    BudgetAccountant, ContinualRelease, ReleaseRequest, ReleaseService, ServiceConfig,
    ServiceError, StreamBackend, StreamConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn exact_engine(length: usize) -> Arc<ReleaseEngine> {
    let chain =
        MarkovChain::with_stationary_initial(vec![vec![0.85, 0.15], vec![0.35, 0.65]]).unwrap();
    let options = MqmExactOptions {
        max_quilt_width: Some(16),
        search_middle_only: false,
        parallelism: Parallelism::Serial,
    };
    ReleaseEngine::shared(MqmExactCalibrator::new(
        MarkovChainClass::singleton(chain),
        length,
        options,
    ))
}

fn approx_engine(length: usize) -> Arc<ReleaseEngine> {
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap();
    ReleaseEngine::shared(MqmApproxCalibrator::new(
        class,
        length,
        MqmApproxOptions::default(),
    ))
}

/// The headline property: 8 threads × several epsilons racing one shared
/// engine perform exactly one calibration per distinct key, and every thread
/// observes bitwise-identical noise scales for the same key.
#[test]
fn shared_engine_calibrates_each_key_exactly_once_under_contention() {
    let engine = exact_engine(80);
    let threads = 8;
    let epsilons = [0.5, 1.0, 2.0, 4.0];
    let iterations = 25;
    let barrier = Barrier::new(threads);
    let observed: Mutex<HashMap<u64, Vec<u64>>> = Mutex::new(HashMap::new());

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let engine = Arc::clone(&engine);
            let barrier = &barrier;
            let observed = &observed;
            scope.spawn(move || {
                let query = StateFrequencyQuery::new(1, 80);
                barrier.wait();
                for iteration in 0..iterations {
                    // Rotate the starting key per thread so every key sees
                    // simultaneous first-touch from several threads.
                    let epsilon = epsilons[(thread + iteration) % epsilons.len()];
                    let budget = PrivacyBudget::new(epsilon).unwrap();
                    let scale = engine
                        .mechanism(&query, budget)
                        .unwrap()
                        .noise_scale_for(&query);
                    observed
                        .lock()
                        .unwrap()
                        .entry(epsilon.to_bits())
                        .or_default()
                        .push(scale.to_bits());
                }
            });
        }
    });

    let stats = engine.stats();
    let total = (threads * iterations) as u64;
    assert_eq!(
        stats.misses,
        epsilons.len() as u64,
        "every distinct key must calibrate exactly once: {stats:?}"
    );
    assert_eq!(stats.hits + stats.misses, total);
    assert_eq!(engine.len(), epsilons.len());

    let observed = observed.into_inner().unwrap();
    assert_eq!(observed.len(), epsilons.len());
    for (epsilon_bits, scales) in observed {
        assert_eq!(scales.len(), threads * iterations / epsilons.len());
        assert!(
            scales.windows(2).all(|w| w[0] == w[1]),
            "noise scale must be bitwise stable for epsilon {}",
            f64::from_bits(epsilon_bits)
        );
    }
}

/// Warm-cache releases from many threads match the single-threaded
/// reference bit for bit (per-thread RNG streams are independent).
#[test]
fn concurrent_releases_match_serial_reference() {
    let engine = approx_engine(100);
    let budget = PrivacyBudget::new(1.0).unwrap();
    let threads = 8;
    let releases_per_thread = 50;

    let concurrent: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|thread| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let query = StateFrequencyQuery::new(1, 100);
                    let database: Vec<usize> = (0..100).map(|t| (t + thread) % 2).collect();
                    let mut rng = StdRng::seed_from_u64(1000 + thread as u64);
                    (0..releases_per_thread)
                        .map(|_| {
                            engine
                                .release(&query, &database, budget, &mut rng)
                                .unwrap()
                                .values[0]
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Reference: same seeds, same databases, single thread, fresh engine.
    let reference_engine = approx_engine(100);
    for (thread, values) in concurrent.iter().enumerate() {
        let query = StateFrequencyQuery::new(1, 100);
        let database: Vec<usize> = (0..100).map(|t| (t + thread) % 2).collect();
        let mut rng = StdRng::seed_from_u64(1000 + thread as u64);
        for (release, &concurrent_value) in values.iter().enumerate() {
            let reference = reference_engine
                .release(&query, &database, budget, &mut rng)
                .unwrap()
                .values[0];
            assert_eq!(
                reference.to_bits(),
                concurrent_value.to_bits(),
                "thread {thread} release {release} diverged from the serial reference"
            );
        }
    }
}

/// End-to-end service stress: many users over many workers; every response
/// arrives, budgets add up exactly, and the engine calibrated once.
#[test]
fn service_survives_concurrent_submitters() {
    let engine = approx_engine(60);
    let service = ReleaseService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: Parallelism::Threads(4),
            queue_capacity: 64,
            per_user_epsilon: 10.0,
        },
    )
    .unwrap();

    let submitters = 8;
    let requests_per_submitter = 40;
    let barrier = Barrier::new(submitters);
    std::thread::scope(|scope| {
        for submitter in 0..submitters {
            let service = &service;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..requests_per_submitter {
                    let release = service
                        .release(ReleaseRequest {
                            user: format!("user-{submitter}"),
                            query: Arc::new(StateFrequencyQuery::new(1, 60)),
                            database: (0..60).map(|t| t % 2).collect(),
                            epsilon: 0.25,
                            seed: (submitter * 1000 + i) as u64,
                        })
                        .unwrap();
                    assert_eq!(release.values.len(), 1);
                }
            });
        }
    });

    let total = (submitters * requests_per_submitter) as u64;
    assert_eq!(service.served(), total);
    for submitter in 0..submitters {
        let user = format!("user-{submitter}");
        assert!(
            (service.budget().spent(&user) - 0.25 * requests_per_submitter as f64).abs() < 1e-9
        );
    }
    // One class-scoped calibration serves all traffic.
    assert_eq!(engine.stats().misses, 1);
    service.shutdown();
}

/// Budget accountant under maximum contention: a population of threads
/// burning one shared user's budget can never jointly overdraw it.
#[test]
fn budget_accountant_exhaustion_is_exact_under_contention() {
    let budget = Arc::new(BudgetAccountant::new(2.0).unwrap());
    let threads = 8;
    let attempts_per_thread = 20;
    let barrier = Barrier::new(threads);

    let grants: usize = std::thread::scope(|scope| {
        (0..threads)
            .map(|_| {
                let budget = Arc::clone(&budget);
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    (0..attempts_per_thread)
                        .filter(|_| budget.try_spend("shared", 0.1).is_ok())
                        .count()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|worker| worker.join().unwrap())
            .sum()
    });

    // 160 attempts at ε = 0.1 against a target of 2.0: exactly 20 grants.
    assert_eq!(grants, 20);
    assert!((budget.spent("shared") - 2.0).abs() < 1e-9);
    assert_eq!(budget.remaining("shared"), 0.0);
    assert!(matches!(
        budget.try_spend("shared", 0.1),
        Err(ServiceError::BudgetExhausted { .. })
    ));
}

/// Service-level budget exhaustion under concurrent submission: the number
/// of *admitted* requests is exact even when 8 threads race one user.
#[test]
fn service_budget_exhaustion_admits_exactly_the_budgeted_count() {
    let service = ReleaseService::start(
        approx_engine(60),
        ServiceConfig {
            workers: Parallelism::Threads(2),
            queue_capacity: 128,
            per_user_epsilon: 1.0,
        },
    )
    .unwrap();

    let threads = 8;
    let barrier = Barrier::new(threads);
    let admitted: usize = std::thread::scope(|scope| {
        (0..threads)
            .map(|thread| {
                let service = &service;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    let mut ok = 0;
                    for i in 0..10 {
                        match service.submit(ReleaseRequest {
                            user: "contended".to_string(),
                            query: Arc::new(StateFrequencyQuery::new(1, 60)),
                            database: vec![0; 60],
                            epsilon: 0.2,
                            seed: (thread * 100 + i) as u64,
                        }) {
                            Ok(ticket) => {
                                ticket.wait().unwrap();
                                ok += 1;
                            }
                            Err(ServiceError::BudgetExhausted { .. }) => {}
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                    ok
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|worker| worker.join().unwrap())
            .sum()
    });

    assert_eq!(admitted, 5, "1.0 / 0.2 = exactly five admitted releases");
    assert!((service.budget().spent("contended") - 1.0).abs() < 1e-9);
    service.shutdown();
}

/// Streaming pipeline exhaustion: the release schedule stops exactly when
/// the composed budget runs out, and per-stream backends stay independent.
#[test]
fn continual_release_budget_exhaustion() {
    let class = IntervalClassBuilder::symmetric(0.45)
        .grid_points(2)
        .build()
        .unwrap();
    let mut stream = ContinualRelease::new(
        "exhaust",
        &class,
        StreamConfig {
            window: 10,
            slide: 10,
            epsilon_per_release: 0.3,
            stream_epsilon: 1.0,
            backend: StreamBackend::MqmApprox,
        },
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(77);
    let mut releases = 0;
    let mut refusals = 0;
    for t in 0..80 {
        match stream.push(t % 2, &mut rng) {
            Ok(Some(_)) => releases += 1,
            Ok(None) => {}
            Err(ServiceError::StreamBudgetExhausted {
                stream: name,
                window_end,
                remaining,
                ..
            }) => {
                assert_eq!(name, "exhaust");
                assert_eq!(window_end, t + 1);
                assert!(remaining < 0.3);
                refusals += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // Tumbling windows of 10 over 80 events: 8 due releases, but only
    // floor(1.0 / 0.3) = 3 fit the stream budget.
    assert_eq!(releases, 3);
    assert_eq!(refusals, 5);
    assert!(stream.is_exhausted());
    assert!((stream.spent_epsilon() - 0.9).abs() < 1e-9);
    assert_eq!(stream.events(), 80);
}
