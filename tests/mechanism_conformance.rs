//! Generic conformance suite for the unified [`Mechanism`] trait layer, run
//! against all seven implementors: the four core mechanisms (Wasserstein,
//! general Markov Quilt, MQMExact, MQMApprox) and the three baselines
//! (EntryDp, GroupDp, Gk16).
//!
//! Per implementor the suite checks:
//! * **calibrate-once / release-many determinism** — identical releases
//!   under a re-seeded RNG, and a mechanism that is immutable across
//!   releases;
//! * **batch vs. sequential equality** — `release_batch` consumes the same
//!   noise stream as a loop of `release` calls;
//! * **trait metadata coherence** — `name`/`epsilon`/`noise_scale_for`
//!   consistent with the release output, database validation enforced;
//! * **cache-hit equivalence** — an engine release after a warm-up is served
//!   from the cache (hit counter) and matches a cold calibration bit for
//!   bit;
//! * **parallel calibration equivalence** — serial and multi-threaded
//!   calibration produce bitwise-identical noise scales.

use std::sync::Arc;

use pufferfish_baselines::{EntryDp, Gk16, GroupDp};
use pufferfish_bayesnet::{chain_quilts, Dag, DiscreteBayesianNetwork};
use pufferfish_core::engine::{
    FnCalibrator, MqmApproxCalibrator, MqmExactCalibrator, QuiltCalibrator, ReleaseEngine,
    WassersteinCalibrator,
};
use pufferfish_core::flu::flu_clique_framework;
use pufferfish_core::queries::{RelativeFrequencyHistogram, StateCountQuery};
use pufferfish_core::{
    LipschitzQuery, MarkovQuiltMechanism, Mechanism, MqmApprox, MqmApproxOptions, MqmExact,
    MqmExactOptions, Parallelism, PrivacyBudget, QuiltMechanismOptions, WassersteinMechanism,
};
use pufferfish_markov::{MarkovChain, MarkovChainClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHAIN_LENGTH: usize = 120;

fn budget() -> PrivacyBudget {
    PrivacyBudget::new(1.0).unwrap()
}

fn running_class() -> MarkovChainClass {
    MarkovChainClass::from_chains(vec![
        MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap(),
        MarkovChain::new(vec![0.9, 0.1], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap(),
    ])
    .unwrap()
}

fn chain_database(length: usize) -> Vec<usize> {
    (0..length).map(|t| (t / 7) % 2).collect()
}

fn quilt_network(len: usize) -> DiscreteBayesianNetwork {
    let dag = Dag::chain(len);
    let mut net = DiscreteBayesianNetwork::new(dag, vec![2; len]).unwrap();
    net.set_cpd(0, vec![vec![0.8, 0.2]]).unwrap();
    for node in 1..len {
        net.set_cpd(node, vec![vec![0.9, 0.1], vec![0.4, 0.6]])
            .unwrap();
    }
    net
}

/// Every implementor paired with a query + database it can release.
#[allow(clippy::type_complexity)]
fn all_mechanisms() -> Vec<(Box<dyn Mechanism>, Box<dyn LipschitzQuery>, Vec<usize>)> {
    #[allow(clippy::type_complexity)]
    let mut mechanisms: Vec<(Box<dyn Mechanism>, Box<dyn LipschitzQuery>, Vec<usize>)> = Vec::new();

    // 1. Wasserstein Mechanism on the 4-person flu clique.
    let framework = flu_clique_framework(4, &[0.1, 0.15, 0.5, 0.15, 0.1]).unwrap();
    let count = StateCountQuery::new(1, 4);
    mechanisms.push((
        Box::new(WassersteinMechanism::calibrate(&framework, &count, budget()).unwrap()),
        Box::new(count),
        vec![1, 0, 1, 0],
    ));

    // 2. General Markov Quilt Mechanism on a 6-node chain network.
    let net = quilt_network(6);
    let candidates: Vec<_> = (0..6)
        .map(|node| chain_quilts(6, node, 6).unwrap())
        .collect();
    mechanisms.push((
        Box::new(
            MarkovQuiltMechanism::calibrate(
                &[net],
                budget(),
                QuiltMechanismOptions {
                    quilt_candidates: Some(candidates),
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
        Box::new(StateCountQuery::new(1, 6)),
        vec![0, 1, 1, 0, 0, 1],
    ));

    // 3. MQMExact over the running-example class.
    mechanisms.push((
        Box::new(
            MqmExact::calibrate(
                &running_class(),
                CHAIN_LENGTH,
                budget(),
                MqmExactOptions::default(),
            )
            .unwrap(),
        ),
        Box::new(RelativeFrequencyHistogram::new(2, CHAIN_LENGTH).unwrap()),
        chain_database(CHAIN_LENGTH),
    ));

    // 4. MQMApprox over the running-example class.
    mechanisms.push((
        Box::new(
            MqmApprox::calibrate(
                &running_class(),
                CHAIN_LENGTH,
                budget(),
                MqmApproxOptions::default(),
            )
            .unwrap(),
        ),
        Box::new(RelativeFrequencyHistogram::new(2, CHAIN_LENGTH).unwrap()),
        chain_database(CHAIN_LENGTH),
    ));

    // 5. EntryDp.
    let histogram = RelativeFrequencyHistogram::new(2, CHAIN_LENGTH).unwrap();
    mechanisms.push((
        Box::new(EntryDp::for_query(&histogram, budget()).unwrap()),
        Box::new(histogram),
        chain_database(CHAIN_LENGTH),
    ));

    // 6. GroupDp.
    mechanisms.push((
        Box::new(GroupDp::calibrate(CHAIN_LENGTH, budget()).unwrap()),
        Box::new(RelativeFrequencyHistogram::new(2, CHAIN_LENGTH).unwrap()),
        chain_database(CHAIN_LENGTH),
    ));

    // 7. Gk16 on a weakly correlated class where it applies.
    let weak = MarkovChainClass::singleton(
        MarkovChain::new(vec![0.5, 0.5], vec![vec![0.55, 0.45], vec![0.45, 0.55]]).unwrap(),
    );
    mechanisms.push((
        Box::new(Gk16::calibrate(&weak, CHAIN_LENGTH, budget()).unwrap()),
        Box::new(RelativeFrequencyHistogram::new(2, CHAIN_LENGTH).unwrap()),
        chain_database(CHAIN_LENGTH),
    ));

    mechanisms
}

#[test]
fn trait_metadata_is_coherent_for_all_implementors() {
    let expected_names = [
        "wasserstein",
        "markov-quilt",
        "mqm-exact",
        "mqm-approx",
        "entry-dp",
        "group-dp",
        "gk16",
    ];
    let mechanisms = all_mechanisms();
    assert_eq!(mechanisms.len(), expected_names.len());
    for ((mechanism, query, database), expected) in mechanisms.iter().zip(expected_names) {
        assert_eq!(mechanism.name(), expected);
        assert_eq!(mechanism.epsilon(), 1.0);
        let scale = mechanism.noise_scale_for(query.as_ref());
        assert!(
            scale.is_finite() && scale > 0.0,
            "{expected}: bad scale {scale}"
        );
        let mut rng = StdRng::seed_from_u64(11);
        let release = mechanism
            .release(query.as_ref(), database, &mut rng)
            .unwrap();
        assert_eq!(release.scale, scale, "{expected}");
        assert_eq!(release.values.len(), query.output_dimension(), "{expected}");
        assert_eq!(
            release.true_values,
            query.evaluate(database).unwrap(),
            "{expected}"
        );
        // Database validation is enforced through the trait.
        assert!(
            mechanism
                .release(query.as_ref(), &database[..database.len() - 1], &mut rng)
                .is_err(),
            "{expected}: accepted short database"
        );
    }
}

#[test]
fn calibrate_once_release_many_is_deterministic_under_seeded_rng() {
    for (mechanism, query, database) in all_mechanisms() {
        // Same seed => identical noise, across repeated use of the same
        // calibrated mechanism (release must not mutate the mechanism).
        let mut first_run = Vec::new();
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..5 {
            first_run.push(
                mechanism
                    .release(query.as_ref(), &database, &mut rng)
                    .unwrap(),
            );
        }
        let mut rng = StdRng::seed_from_u64(2024);
        for previous in &first_run {
            let replay = mechanism
                .release(query.as_ref(), &database, &mut rng)
                .unwrap();
            assert_eq!(replay.values, previous.values, "{}", mechanism.name());
            assert_eq!(replay.scale, previous.scale, "{}", mechanism.name());
        }
    }
}

#[test]
fn batch_release_equals_sequential_release() {
    for (mechanism, query, database) in all_mechanisms() {
        let databases: Vec<Vec<usize>> = (0..4)
            .map(|shift| {
                let mut db = database.clone();
                let rotation = shift % db.len().max(1);
                db.rotate_left(rotation);
                db
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(99);
        let batched = mechanism
            .release_batch(query.as_ref(), &databases, &mut rng)
            .unwrap();

        let mut rng = StdRng::seed_from_u64(99);
        let sequential: Vec<_> = databases
            .iter()
            .map(|db| mechanism.release(query.as_ref(), db, &mut rng).unwrap())
            .collect();

        assert_eq!(batched.len(), sequential.len());
        for (a, b) in batched.iter().zip(&sequential) {
            assert_eq!(a.values, b.values, "{}", mechanism.name());
            assert_eq!(a.true_values, b.true_values, "{}", mechanism.name());
        }
    }
}

#[test]
fn engine_cache_hits_match_cold_calibration_for_every_calibrator() {
    let histogram = RelativeFrequencyHistogram::new(2, CHAIN_LENGTH).unwrap();
    let count4 = StateCountQuery::new(1, 4);
    let framework = flu_clique_framework(4, &[0.1, 0.15, 0.5, 0.15, 0.1]).unwrap();

    // Engines over every calibrator family (core mechanisms get concrete
    // calibrators, baselines go through FnCalibrator).
    let weak = MarkovChainClass::singleton(
        MarkovChain::new(vec![0.5, 0.5], vec![vec![0.55, 0.45], vec![0.45, 0.55]]).unwrap(),
    );
    let weak_for_fn = weak.clone();
    let engines: Vec<(ReleaseEngine, Box<dyn LipschitzQuery>, Vec<usize>)> = vec![
        (
            ReleaseEngine::new(WassersteinCalibrator::new(
                framework.clone(),
                Parallelism::default(),
            )),
            Box::new(count4),
            vec![1, 0, 1, 0],
        ),
        (
            ReleaseEngine::new(MqmExactCalibrator::new(
                running_class(),
                CHAIN_LENGTH,
                MqmExactOptions::default(),
            )),
            Box::new(histogram.clone()),
            chain_database(CHAIN_LENGTH),
        ),
        (
            ReleaseEngine::new(MqmApproxCalibrator::new(
                running_class(),
                CHAIN_LENGTH,
                MqmApproxOptions::default(),
            )),
            Box::new(histogram.clone()),
            chain_database(CHAIN_LENGTH),
        ),
        (
            ReleaseEngine::new(QuiltCalibrator::new(
                vec![quilt_network(6)],
                QuiltMechanismOptions::default(),
            )),
            Box::new(StateCountQuery::new(1, 6)),
            vec![0, 1, 1, 0, 0, 1],
        ),
        (
            ReleaseEngine::new(FnCalibrator::new("gk16", 7, move |_q, budget| {
                Ok(
                    Arc::new(Gk16::calibrate(&weak_for_fn, CHAIN_LENGTH, budget)?)
                        as Arc<dyn Mechanism>,
                )
            })),
            Box::new(histogram.clone()),
            chain_database(CHAIN_LENGTH),
        ),
    ];

    for (engine, query, database) in engines {
        let mut rng = StdRng::seed_from_u64(5);
        // Cold: calibrates.
        let first = engine
            .release(query.as_ref(), &database, budget(), &mut rng)
            .unwrap();
        assert_eq!(engine.cache_misses(), 1, "{}", engine.kind());
        assert_eq!(engine.cache_hits(), 0, "{}", engine.kind());

        // Warm: second release with the same (class, epsilon, query) skips
        // recalibration — asserted via the hit counter.
        let second = engine
            .release(query.as_ref(), &database, budget(), &mut rng)
            .unwrap();
        assert_eq!(engine.cache_misses(), 1, "{}", engine.kind());
        assert_eq!(engine.cache_hits(), 1, "{}", engine.kind());

        // The cached mechanism is equivalent to a cold calibration: same
        // scale bit for bit.
        assert_eq!(
            first.scale.to_bits(),
            second.scale.to_bits(),
            "{}",
            engine.kind()
        );
        let cached = engine.mechanism(query.as_ref(), budget()).unwrap();
        assert_eq!(
            cached.noise_scale_for(query.as_ref()).to_bits(),
            first.scale.to_bits(),
            "{}",
            engine.kind()
        );
    }
}

#[test]
fn parallel_calibration_is_bitwise_identical_to_serial() {
    let policies = [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Auto,
    ];

    // Wasserstein.
    let framework = flu_clique_framework(5, &[0.05, 0.15, 0.3, 0.3, 0.15, 0.05]).unwrap();
    let count = StateCountQuery::new(1, 5);
    let reference =
        WassersteinMechanism::calibrate_with(&framework, &count, budget(), Parallelism::Serial)
            .unwrap();
    for policy in policies {
        let candidate =
            WassersteinMechanism::calibrate_with(&framework, &count, budget(), policy).unwrap();
        assert_eq!(
            candidate.wasserstein_parameter().to_bits(),
            reference.wasserstein_parameter().to_bits()
        );
        assert_eq!(candidate.worst_case(), reference.worst_case());
    }

    // MQMExact (multi-theta class: parallelism across theta; singleton:
    // parallelism across nodes).
    for class in [
        running_class(),
        MarkovChainClass::singleton(running_class().chains()[0].clone()),
    ] {
        let reference = MqmExact::calibrate(
            &class,
            CHAIN_LENGTH,
            budget(),
            MqmExactOptions {
                parallelism: Parallelism::Serial,
                ..Default::default()
            },
        )
        .unwrap();
        for policy in policies {
            let candidate = MqmExact::calibrate(
                &class,
                CHAIN_LENGTH,
                budget(),
                MqmExactOptions {
                    parallelism: policy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                candidate.sigma_max().to_bits(),
                reference.sigma_max().to_bits()
            );
            assert_eq!(candidate.selections(), reference.selections());
        }
    }

    // MQMApprox (full search so the node loop actually parallelises).
    let options = |policy| MqmApproxOptions {
        strategy: pufferfish_core::QuiltSearchStrategy::Full { max_width: None },
        parallelism: policy,
        ..Default::default()
    };
    let reference = MqmApprox::calibrate(
        &running_class(),
        CHAIN_LENGTH,
        budget(),
        options(Parallelism::Serial),
    )
    .unwrap();
    for policy in policies {
        let candidate =
            MqmApprox::calibrate(&running_class(), CHAIN_LENGTH, budget(), options(policy))
                .unwrap();
        assert_eq!(
            candidate.sigma_max().to_bits(),
            reference.sigma_max().to_bits()
        );
        assert_eq!(candidate.worst_node(), reference.worst_node());
        assert_eq!(candidate.best_quilt(), reference.best_quilt());
    }

    // General Markov Quilt Mechanism.
    let net = quilt_network(8);
    let candidates: Vec<_> = (0..8)
        .map(|node| chain_quilts(8, node, 8).unwrap())
        .collect();
    let quilt_options = |policy| QuiltMechanismOptions {
        quilt_candidates: Some(candidates.clone()),
        parallelism: policy,
    };
    let reference = MarkovQuiltMechanism::calibrate(
        std::slice::from_ref(&net),
        budget(),
        quilt_options(Parallelism::Serial),
    )
    .unwrap();
    for policy in policies {
        let candidate = MarkovQuiltMechanism::calibrate(
            std::slice::from_ref(&net),
            budget(),
            quilt_options(policy),
        )
        .unwrap();
        assert_eq!(
            candidate.sigma_max().to_bits(),
            reference.sigma_max().to_bits()
        );
    }
}

#[test]
fn degenerate_class_parameters_yield_typed_errors() {
    use pufferfish_core::PufferfishError;

    // pi_min on/below the boundary.
    for (pi_min, eigengap) in [
        (0.0, 0.5),
        (-0.1, 0.5),
        (f64::NAN, 0.5),
        (0.3, 0.0),
        (0.3, -1.0),
        (0.3, f64::NAN),
        (0.3, 1e-15),
        (1e-15, 0.5),
    ] {
        let result = MqmApprox::calibrate_from_parameters(
            pi_min,
            eigengap,
            2,
            100,
            budget(),
            MqmApproxOptions::default(),
        );
        match result {
            Err(PufferfishError::DegenerateClass { .. }) => {}
            other => panic!("({pi_min}, {eigengap}): expected DegenerateClass, got {other:?}"),
        }
    }

    // Well-inside-the-region parameters still calibrate.
    assert!(MqmApprox::calibrate_from_parameters(
        0.3,
        0.5,
        2,
        100,
        budget(),
        MqmApproxOptions::default()
    )
    .is_ok());
}
