//! Acceptance tests for cost-based mechanism planning: `MECHANISM auto`
//! must select the minimum-noise-scale *eligible* mechanism — verified
//! against exhaustive direct per-mechanism calibration — on two workloads
//! (a synthetic binary chain class and the activity dataset), and the
//! planned execution must be bitwise-identical to the direct call.

use std::sync::Arc;

use pufferfish_baselines::{Gk16, GroupDp};
use pufferfish_core::{
    LipschitzQuery, Mechanism, MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions,
    PrivacyBudget,
};
use pufferfish_datasets::{ActivityCohort, ActivityDataset, ActivitySimulationConfig};
use pufferfish_markov::{sample_trajectory, IntervalClassBuilder, MarkovChain, MarkovChainClass};
use pufferfish_parallel::Parallelism;
use pufferfish_query::{
    execute_plan, parse_statement, plan_statement, MechanismCatalog, MechanismKind, QueryPlan,
    Table,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exhaustively calibrates every registered family directly (no engine, no
/// cache) and returns `(kind, noise scale)` for the ones that succeed.
/// `exact_options` must match what the catalog under test uses, so the
/// comparison is calibration-for-calibration.
fn exhaustive_scales(
    class: &MarkovChainClass,
    length: usize,
    epsilon: f64,
    query: &dyn LipschitzQuery,
    exact_options: MqmExactOptions,
) -> Vec<(MechanismKind, f64)> {
    let budget = PrivacyBudget::new(epsilon).unwrap();
    let mut scales = Vec::new();
    if let Ok(m) = MqmExact::calibrate(class, length, budget, exact_options) {
        scales.push((MechanismKind::Mqm, m.noise_scale_for(query)));
    }
    if let Ok(m) = MqmApprox::calibrate(class, length, budget, MqmApproxOptions::default()) {
        scales.push((MechanismKind::MqmApprox, m.noise_scale_for(query)));
    }
    if let Ok(m) = Gk16::calibrate(class, length, budget) {
        scales.push((MechanismKind::Gk16, Mechanism::noise_scale_for(&m, query)));
    }
    if let Ok(m) = GroupDp::calibrate(length, budget) {
        scales.push((
            MechanismKind::GroupDp,
            Mechanism::noise_scale_for(&m, query),
        ));
    }
    scales.retain(|(_, scale)| scale.is_finite());
    scales
}

/// Asserts the plan picked the exhaustive argmin, bit for bit.
fn assert_plan_is_argmin(plan: &QueryPlan, exhaustive: &[(MechanismKind, f64)]) {
    assert!(
        exhaustive.len() >= 2,
        "the workload must leave at least two eligible mechanisms for \
         'selects the minimum' to mean anything: {exhaustive:?}"
    );
    let (best_kind, best_scale) = exhaustive
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert_eq!(
        plan.chosen(),
        best_kind,
        "auto must select the minimum-scale mechanism; exhaustive: {exhaustive:?}, \
         probes: {:?}",
        plan.probes()
    );
    assert_eq!(
        plan.noise_scale().to_bits(),
        best_scale.to_bits(),
        "the planned scale must equal the direct calibration's scale"
    );
    // The probe evidence must agree with the exhaustive sweep, kind by kind.
    for (kind, scale) in exhaustive {
        let probe = plan
            .probes()
            .iter()
            .find(|probe| probe.kind == *kind)
            .unwrap_or_else(|| panic!("missing probe for {kind}"));
        assert_eq!(
            probe.outcome.clone().unwrap().to_bits(),
            scale.to_bits(),
            "probe for {kind} disagrees with direct calibration"
        );
    }
}

/// Executes the plan and the equivalent direct batched release with the same
/// seed; the noisy values must match bit for bit.
fn assert_bitwise_identical_to_direct(
    plan: &QueryPlan,
    class: &MarkovChainClass,
    length: usize,
    epsilon: f64,
    query: &dyn LipschitzQuery,
    windows: &[Vec<usize>],
    seed: u64,
) {
    let budget = PrivacyBudget::new(epsilon).unwrap();
    let mechanism: Arc<dyn Mechanism> = match plan.chosen() {
        MechanismKind::Mqm => Arc::new(
            MqmExact::calibrate(class, length, budget, MqmExactOptions::default()).unwrap(),
        ),
        MechanismKind::MqmApprox => Arc::new(
            MqmApprox::calibrate(class, length, budget, MqmApproxOptions::default()).unwrap(),
        ),
        MechanismKind::Gk16 => Arc::new(Gk16::calibrate(class, length, budget).unwrap()),
        MechanismKind::GroupDp => Arc::new(GroupDp::calibrate(length, budget).unwrap()),
        MechanismKind::Wasserstein => unreachable!("no framework registered"),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let direct = mechanism.release_batch(query, windows, &mut rng).unwrap();
    let result = execute_plan(plan, seed, Parallelism::Auto).unwrap();
    assert_eq!(result.cells().len(), 1);
    let planned = result.cells()[0].releases();
    assert_eq!(planned.len(), direct.len());
    for (a, b) in planned.iter().zip(&direct) {
        assert_eq!(a.scale.to_bits(), b.scale.to_bits());
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn auto_selects_minimum_scale_on_the_synthetic_chain_workload() {
    // The Section 5.2 shape: a binary interval class, a full-sequence
    // histogram release.
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(3)
        .build()
        .unwrap();
    let truth = MarkovChain::new(vec![0.5, 0.5], vec![vec![0.6, 0.4], vec![0.4, 0.6]]).unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    let length = 100;
    let data = sample_trajectory(&truth, length, &mut rng).unwrap();
    let table = Table::single("chain", 2, data.clone()).unwrap();

    let catalog = MechanismCatalog::new(class.clone());
    let statement = parse_statement("HISTOGRAM EPSILON 1.0 MECHANISM auto").unwrap();
    let plan = plan_statement(&catalog, &statement, &table).unwrap();

    let query = statement.aggregate.to_query(2, length).unwrap();
    let exhaustive = exhaustive_scales(&class, length, 1.0, &*query, MqmExactOptions::default());
    assert_plan_is_argmin(&plan, &exhaustive);
    assert_bitwise_identical_to_direct(&plan, &class, length, 1.0, &*query, &[data], 977);
}

#[test]
fn auto_selects_minimum_scale_on_the_activity_workload() {
    // The Section 5.3.1 shape: a four-state activity chain, a sliding-window
    // histogram sweep over one participant's record. At a 12-second sampling
    // interval activities are sticky, so the window must be long (as in the
    // paper, where records run to thousands of epochs) before the quilt
    // families beat the trivial-quilt/GroupDP floor; the exact-MQM search is
    // width-bounded to keep the sweep tractable, with the *same* bound used
    // for the catalog and the exhaustive reference.
    let cohort = ActivityCohort::Cyclists;
    let class = MarkovChainClass::singleton(cohort.ground_truth_chain().unwrap());
    let mut rng = StdRng::seed_from_u64(9);
    let dataset = ActivityDataset::simulate(
        cohort,
        ActivitySimulationConfig {
            observations_per_participant: 1_000,
            gap_probability: 0.0,
            participants: Some(1),
        },
        &mut rng,
    )
    .unwrap();
    let record = dataset.participants[0].concatenated();
    assert_eq!(record.len(), 1_000);
    let table = Table::single("cyclist-0", 4, record.clone()).unwrap();

    let exact_options = MqmExactOptions {
        max_quilt_width: Some(32),
        search_middle_only: true, // valid: the cohort chain starts stationary
        parallelism: Parallelism::Auto,
    };
    let catalog = MechanismCatalog::with_options(
        class.clone(),
        pufferfish_query::CatalogOptions {
            mqm_exact: exact_options,
            ..pufferfish_query::CatalogOptions::default()
        },
    );
    let statement =
        parse_statement("HISTOGRAM WINDOW 500 STEP 250 EPSILON 1.0 MECHANISM auto").unwrap();
    let plan = plan_statement(&catalog, &statement, &table).unwrap();
    assert_eq!(plan.releases(), 3);

    let window = 500;
    let query = statement.aggregate.to_query(4, window).unwrap();
    let exhaustive = exhaustive_scales(&class, window, 1.0, &*query, exact_options);
    assert_plan_is_argmin(&plan, &exhaustive);

    // The activity chains are sticky: GK16's influence norm is >= 1, so the
    // planner must have routed *around* it (the fall-back path of the cost
    // model), and the winner must beat the always-eligible GroupDP floor.
    assert!(
        !exhaustive
            .iter()
            .any(|(kind, _)| *kind == MechanismKind::Gk16),
        "expected GK16 to be ineligible on sticky activity chains"
    );
    let gk16_probe = plan
        .probes()
        .iter()
        .find(|probe| probe.kind == MechanismKind::Gk16)
        .unwrap();
    assert!(gk16_probe.outcome.is_err());
    let group_dp = exhaustive
        .iter()
        .find(|(kind, _)| *kind == MechanismKind::GroupDp)
        .unwrap()
        .1;
    assert!(
        plan.noise_scale() < group_dp,
        "auto should beat the GroupDP floor: {} vs {group_dp}",
        plan.noise_scale()
    );

    // Auto must have found a *strict* win, not a tie with the floor.
    assert_eq!(plan.chosen(), MechanismKind::MqmApprox);

    let windows: Vec<Vec<usize>> = (0..3)
        .map(|i| record[i * 250..i * 250 + window].to_vec())
        .collect();
    assert_bitwise_identical_to_direct(&plan, &class, window, 1.0, &*query, &windows, 1234);
}

#[test]
fn repeated_planning_is_amortised_by_the_catalog_cache() {
    // The ISSUE's amortisation requirement: probing goes through the cached
    // engines, so planning the same statement twice performs zero new
    // calibrations the second time.
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap();
    let catalog = MechanismCatalog::new(class);
    let table = Table::single("t", 2, (0..50).map(|t| t % 2).collect()).unwrap();
    let statement = parse_statement("HISTOGRAM EPSILON 0.8 MECHANISM auto").unwrap();

    plan_statement(&catalog, &statement, &table).unwrap();
    let (first, _) = catalog.cache_stats();
    assert!(first.misses >= 3, "auto probes every registered family");

    plan_statement(&catalog, &statement, &table).unwrap();
    let (second, _) = catalog.cache_stats();
    assert_eq!(
        second.misses, first.misses,
        "replanning must not recalibrate"
    );
    assert!(second.hits > first.hits);
}
