//! Integration test: the running example of Section 4.4 of the paper,
//! exercised end-to-end through the public APIs of the markov, core and
//! baselines crates.

use pufferfish_core::queries::StateFrequencyQuery;
use pufferfish_core::{
    ChainQuiltShape, MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions, PrivacyBudget,
    QuiltSearchStrategy,
};
use pufferfish_markov::{
    class_eigengap, class_pi_min, MarkovChain, MarkovChainClass, ReversibilityMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn theta1() -> MarkovChain {
    MarkovChain::new(vec![1.0, 0.0], vec![vec![0.9, 0.1], vec![0.4, 0.6]]).unwrap()
}

fn theta2() -> MarkovChain {
    MarkovChain::new(vec![0.9, 0.1], vec![vec![0.8, 0.2], vec![0.3, 0.7]]).unwrap()
}

fn running_class() -> MarkovChainClass {
    MarkovChainClass::from_chains(vec![theta1(), theta2()]).unwrap()
}

/// The spectral quantities quoted in Section 4.4.2: stationary distributions
/// [0.8, 0.2] and [0.6, 0.4], pi_min = 0.2, eigengap of P P* equal to 0.75.
#[test]
fn spectral_quantities_match_the_paper() {
    let class = running_class();
    assert!((class_pi_min(&class).unwrap() - 0.2).abs() < 1e-9);
    assert!((class_eigengap(&class, ReversibilityMode::General).unwrap() - 0.75).abs() < 1e-9);
}

/// The MQMExact calibration quoted in Section 4.4.1: sigma = 13.0219 at X_8
/// via {X_3, X_13} for theta_1 and 10.6402 at X_6 via {X_10} for theta_2,
/// so the class-level mechanism adds Lap(13.0219 * L) noise.
#[test]
fn mqm_exact_reproduces_paper_noise_scales() {
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism =
        MqmExact::calibrate(&running_class(), 100, budget, MqmExactOptions::default()).unwrap();
    assert!((mechanism.sigma_max() - 13.0219).abs() < 5e-3);

    let selections = mechanism.selections();
    assert_eq!(selections.len(), 2);
    assert_eq!(selections[0].node, 8);
    assert_eq!(
        selections[0].shape,
        ChainQuiltShape::TwoSided { a: 5, b: 5 }
    );
    assert!((selections[0].score - 13.0219).abs() < 5e-3);
    assert_eq!(selections[1].node, 6);
    assert_eq!(selections[1].shape, ChainQuiltShape::RightOnly { b: 4 });
    assert!((selections[1].score - 10.6402).abs() < 5e-3);
}

/// MQMApprox is an upper bound on MQMExact but still far below the trivial
/// (group-DP) multiplier T for this fast-mixing class; releases through both
/// mechanisms stay close to the exact query value.
#[test]
fn approx_and_exact_end_to_end_release() {
    let class = running_class();
    let budget = PrivacyBudget::new(1.0).unwrap();
    let length = 100;
    let exact = MqmExact::calibrate(&class, length, budget, MqmExactOptions::default()).unwrap();
    let approx = MqmApprox::calibrate(
        &class,
        length,
        budget,
        MqmApproxOptions {
            reversibility: ReversibilityMode::General,
            strategy: QuiltSearchStrategy::Full { max_width: None },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(approx.sigma_max() >= exact.sigma_max() - 1e-9);
    assert!(approx.sigma_max() < length as f64);

    let query = StateFrequencyQuery::new(1, length);
    let mut rng = StdRng::seed_from_u64(0);
    let data = pufferfish_markov::sample_trajectory(&theta1(), length, &mut rng).unwrap();

    // Average over repetitions: the mean absolute error matches the Laplace
    // scale sigma/T for each mechanism, and exact <= approx.
    let trials = 4_000;
    let (mut err_exact, mut err_approx) = (0.0, 0.0);
    for _ in 0..trials {
        err_exact += exact.release(&query, &data, &mut rng).unwrap().l1_error();
        err_approx += approx.release(&query, &data, &mut rng).unwrap().l1_error();
    }
    err_exact /= trials as f64;
    err_approx /= trials as f64;
    assert!(err_exact <= err_approx + 0.02);
    assert!((err_exact - exact.sigma_max() / length as f64).abs() < 0.05);
}

/// A wider class needs at least as much noise as a narrower one containing a
/// subset of its chains.
#[test]
fn class_monotonicity() {
    let budget = PrivacyBudget::new(1.0).unwrap();
    let narrow = MarkovChainClass::from_chains(vec![theta1()]).unwrap();
    let wide = running_class();
    let narrow_sigma = MqmExact::calibrate(&narrow, 100, budget, MqmExactOptions::default())
        .unwrap()
        .sigma_max();
    let wide_sigma = MqmExact::calibrate(&wide, 100, budget, MqmExactOptions::default())
        .unwrap()
        .sigma_max();
    assert!(wide_sigma >= narrow_sigma - 1e-12);
}
