//! Property tests for the class-estimation pipeline.
//!
//! Two contracts, swept over randomly drawn two-state chains and stream
//! seeds (the proptest shim is seeded, so the sweep is deterministic):
//!
//! * **coverage** — fitting a confidence class from a stream sampled from a
//!   known chain yields interval bounds that contain the true transition
//!   matrix. The Hoeffding intervals are Bonferroni-corrected across the
//!   k² entries, so at the advertised confidence the whole matrix is
//!   covered simultaneously; the sweep runs at 99.9% confidence on 20 000
//!   events, where a miss would be a calibration bug, not bad luck.
//! * **monotonicity under widening** — calibrating MQMApprox against the
//!   *widened* class never yields a smaller noise scale than calibrating
//!   against the point estimate alone, and never a smaller scale than the
//!   true chain's own class. Widening is how estimation uncertainty is
//!   priced into the privacy guarantee; a widened class that made the noise
//!   *cheaper* would be unsound.

use proptest::prelude::*;
use pufferfish_core::queries::StateFrequencyQuery;
use pufferfish_core::{MqmApprox, MqmApproxOptions, PrivacyBudget};
use pufferfish_datasets::EventStream;
use pufferfish_markov::{
    estimate_class, ClassEstimationOptions, IntervalMethod, MarkovChain, MarkovChainClass,
};

/// Events per fitted trajectory.
const EVENTS: usize = 20_000;
/// Database length the mechanisms are calibrated for.
const DB_LEN: usize = 60;

fn two_state(stay0: f64, stay1: f64) -> MarkovChain {
    MarkovChain::new(
        vec![0.5, 0.5],
        vec![vec![stay0, 1.0 - stay0], vec![1.0 - stay1, stay1]],
    )
    .unwrap()
}

fn scale_for(class: &MarkovChainClass) -> f64 {
    let budget = PrivacyBudget::new(0.5).unwrap();
    let mechanism = MqmApprox::calibrate(class, DB_LEN, budget, MqmApproxOptions::default())
        .expect("estimated classes stay calibratable");
    mechanism.noise_scale_for(&StateFrequencyQuery::new(1, DB_LEN))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Coverage: the fitted interval bounds contain the true transition
    /// matrix at the advertised confidence, for both interval methods.
    #[test]
    fn fitted_bounds_cover_the_true_matrix(
        stay0 in 0.25f64..0.85,
        stay1 in 0.25f64..0.85,
        seed in 0u64..1_000_000,
        wilson in 0u8..2,
    ) {
        let wilson = wilson == 1;
        let truth = two_state(stay0, stay1);
        let log: Vec<usize> = EventStream::new(truth.clone(), seed).take(EVENTS).collect();
        let fitted = estimate_class(
            &[log],
            2,
            ClassEstimationOptions {
                confidence: 0.999,
                method: if wilson { IntervalMethod::Wilson } else { IntervalMethod::Hoeffding },
                ..ClassEstimationOptions::default()
            },
        )
        .unwrap();
        let true_matrix: Vec<Vec<f64>> = (0..2)
            .map(|i| truth.transition().row(i).to_vec())
            .collect();
        prop_assert!(
            fitted.contains(&true_matrix),
            "bounds {:?}..{:?} miss the true matrix {:?} (stay0 {stay0}, stay1 {stay1}, seed {seed})",
            fitted.lower(),
            fitted.upper(),
            true_matrix
        );
        // The bounds really bracket the point estimate too.
        let point: Vec<Vec<f64>> = (0..2)
            .map(|i| fitted.chain().transition().row(i).to_vec())
            .collect();
        prop_assert!(fitted.contains(&point));
    }

    /// Monotonicity: widening can only make the calibrated noise scale
    /// larger (or equal) — estimation uncertainty is never priced at a
    /// discount.
    #[test]
    fn widened_class_never_shrinks_the_noise_scale(
        stay0 in 0.3f64..0.8,
        stay1 in 0.3f64..0.8,
        seed in 0u64..1_000_000,
    ) {
        let truth = two_state(stay0, stay1);
        let log: Vec<usize> = EventStream::new(truth.clone(), seed).take(EVENTS).collect();
        let fitted = estimate_class(&[log], 2, ClassEstimationOptions::default()).unwrap();
        let widened_scale = scale_for(&fitted.to_class().unwrap());
        let point_scale = scale_for(&MarkovChainClass::singleton(fitted.chain().clone()));
        let truth_scale = scale_for(&MarkovChainClass::singleton(truth));
        prop_assert!(
            widened_scale >= point_scale - 1e-12,
            "widened scale {widened_scale} < point-estimate scale {point_scale}"
        );
        prop_assert!(
            widened_scale >= truth_scale - 1e-9,
            "widened scale {widened_scale} < true-class scale {truth_scale} \
             (stay0 {stay0}, stay1 {stay1}, seed {seed})"
        );
    }
}
