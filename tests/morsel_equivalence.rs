//! Property tests for the morsel executor: execution over (cell ×
//! window-chunk) morsels is **bitwise-identical** to `Parallelism::Serial`
//! and to direct `Mechanism::release_batch` calls, across morsel sizes ×
//! thread counts × mechanisms × skewed group shapes (one giant cell next to
//! many tiny ones — the shape whose windows spread across the most morsels
//! and whose RNG-offset skipping is exercised hardest).
//!
//! Set `PUFFERFISH_TEST_THREADS=<n>` to pin every execution to
//! `Parallelism::Threads(n)` regardless of the generated thread count — the
//! CI matrix runs this suite at 2 and 8 threads explicitly.

use std::sync::Arc;

use proptest::prelude::*;
use pufferfish_baselines::{Gk16, GroupDp};
use pufferfish_core::{
    Mechanism, MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions, PrivacyBudget,
};
use pufferfish_markov::{IntervalClassBuilder, MarkovChainClass};
use pufferfish_parallel::Parallelism;
use pufferfish_query::{
    cell_seed, execute_plan, execute_plan_with, parse_statement, plan_statement, ExecOptions,
    MechanismCatalog, MechanismKind, Table,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A weakly correlated binary class every registered family calibrates on.
fn weak_class() -> MarkovChainClass {
    IntervalClassBuilder::symmetric(0.45)
        .grid_points(2)
        .build()
        .unwrap()
}

/// The thread policy under test: the generated count, unless the CI matrix
/// pinned one via `PUFFERFISH_TEST_THREADS`.
fn test_threads(generated: usize) -> usize {
    std::env::var("PUFFERFISH_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(generated)
}

/// Calibrates `kind` directly on the concrete types — no engine, no cache.
fn direct_mechanism(
    kind: MechanismKind,
    class: &MarkovChainClass,
    length: usize,
    budget: PrivacyBudget,
) -> Arc<dyn Mechanism> {
    match kind {
        MechanismKind::Mqm => Arc::new(
            MqmExact::calibrate(class, length, budget, MqmExactOptions::default()).unwrap(),
        ),
        MechanismKind::MqmApprox => Arc::new(
            MqmApprox::calibrate(class, length, budget, MqmApproxOptions::default()).unwrap(),
        ),
        MechanismKind::Gk16 => Arc::new(Gk16::calibrate(class, length, budget).unwrap()),
        MechanismKind::GroupDp => Arc::new(GroupDp::calibrate(length, budget).unwrap()),
        MechanismKind::Wasserstein => {
            unreachable!("no framework is registered in these tests")
        }
    }
}

/// The window sweep a `WINDOW w STEP s` clause performs, spelled out
/// independently of the planner and the batch.
fn direct_windows(sequence: &[usize], width: usize, step: usize) -> Vec<Vec<usize>> {
    let mut windows = Vec::new();
    let mut start = 0;
    while start + width <= sequence.len() {
        windows.push(sequence[start..start + width].to_vec());
        start += step;
    }
    windows
}

/// One giant cell (`giant_windows` sweep windows) followed by `tiny` cells
/// of exactly one window each — deterministic but phase-shifted contents.
fn skewed_groups(
    width: usize,
    step: usize,
    giant_windows: usize,
    tiny: usize,
) -> Vec<(String, Vec<usize>)> {
    let giant_len = width + (giant_windows - 1) * step;
    let mut groups = vec![(
        "giant".to_string(),
        (0..giant_len).map(|t| (t * 7 + 3) % 13 % 2).collect(),
    )];
    for g in 0..tiny {
        groups.push((
            format!("tiny-{g:02}"),
            (0..width).map(|t| (t * 5 + g) % 11 % 2).collect(),
        ));
    }
    groups
}

const MECHANISMS: [&str; 4] = ["mqm", "mqm_approx", "gk16", "group_dp"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole contract: for any morsel size, thread count, mechanism
    /// and skew shape, morsel execution equals the serial reference and the
    /// direct per-cell `release_batch` — bit for bit.
    #[test]
    fn morsel_execution_is_bitwise_identical_to_serial_and_direct(
        width in 8usize..14,
        step in 2usize..6,
        giant_windows in 4usize..12,
        tiny in 2usize..7,
        mechanism_index in 0usize..4,
        morsel_windows in 1usize..10,
        threads in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let class = weak_class();
        let catalog = MechanismCatalog::new(class.clone());
        let groups = skewed_groups(width, step, giant_windows, tiny);
        let table = Table::grouped("skewed", 2, groups.clone()).unwrap();
        let text = format!(
            "HISTOGRAM WINDOW {width} STEP {step} GROUP BY key EPSILON 0.4 MECHANISM {}",
            MECHANISMS[mechanism_index],
        );
        let statement = parse_statement(&text).unwrap();
        let plan = plan_statement(&catalog, &statement, &table).unwrap();

        // The giant cell really is split across morsels.
        prop_assert_eq!(plan.batch().window_count(0), giant_windows);
        prop_assert_eq!(plan.cell_count(), tiny + 1);

        let serial = execute_plan(&plan, seed, Parallelism::Serial).unwrap();
        let morsel = execute_plan_with(
            &plan,
            seed,
            &ExecOptions {
                parallelism: Parallelism::Threads(test_threads(threads)),
                morsel_windows: Some(morsel_windows),
            },
        )
        .unwrap();

        // Serial vs. stolen morsel schedule: bit-identical.
        prop_assert_eq!(serial.cells().len(), morsel.cells().len());
        for (a, b) in serial.cells().iter().zip(morsel.cells()) {
            prop_assert_eq!(a.key(), b.key());
            prop_assert_eq!(a.releases().len(), b.releases().len());
            for (x, y) in a.releases().iter().zip(b.releases()) {
                prop_assert_eq!(x.scale.to_bits(), y.scale.to_bits());
                for (u, v) in x.values.iter().zip(&y.values) {
                    prop_assert_eq!(u.to_bits(), v.to_bits());
                }
                for (u, v) in x.true_values.iter().zip(&y.true_values) {
                    prop_assert_eq!(u.to_bits(), v.to_bits());
                }
            }
        }

        // Planned vs. direct mechanism calls with the published cell-seed
        // derivation: bit-identical per cell.
        let budget = PrivacyBudget::new(0.4).unwrap();
        let mechanism = direct_mechanism(plan.chosen(), &class, width, budget);
        let query = statement.aggregate.to_query(2, width).unwrap();
        for (index, (key, data)) in groups.iter().enumerate() {
            let windows = direct_windows(data, width, step);
            let mut rng = StdRng::seed_from_u64(cell_seed(seed, index));
            let direct = mechanism.release_batch(&*query, &windows, &mut rng).unwrap();
            let cell = &morsel.cells()[index];
            prop_assert_eq!(cell.key(), key.as_str());
            prop_assert_eq!(cell.releases().len(), direct.len());
            for (a, b) in cell.releases().iter().zip(&direct) {
                for (x, y) in a.values.iter().zip(&b.values) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }
}

/// The auto-derived morsel size must also hold the contract (no pinned
/// size), including on thread counts far beyond the host's cores.
#[test]
fn auto_morsel_size_matches_serial_on_every_thread_count() {
    let class = weak_class();
    let catalog = MechanismCatalog::new(class);
    let table = Table::grouped("skewed", 2, skewed_groups(10, 3, 20, 5)).unwrap();
    let statement =
        parse_statement("HISTOGRAM WINDOW 10 STEP 3 GROUP BY key EPSILON 0.4 MECHANISM mqm_approx")
            .unwrap();
    let plan = plan_statement(&catalog, &statement, &table).unwrap();
    let serial = execute_plan(&plan, 99, Parallelism::Serial).unwrap();
    for threads in [2, 3, 8, 64] {
        let auto = execute_plan_with(
            &plan,
            99,
            &ExecOptions {
                parallelism: Parallelism::Threads(test_threads(threads)),
                morsel_windows: None,
            },
        )
        .unwrap();
        assert_eq!(
            serial, auto,
            "auto morsel size diverged at {threads} threads"
        );
    }
}
