//! End-to-end socket tests for the TCP front-end.
//!
//! The contracts pinned here, each over real `127.0.0.1` connections:
//!
//! * **Determinism survives the wire**: concurrent clients on separate
//!   connections issuing the identical `(user, query, ε, seed, database)`
//!   release get bitwise-identical noisy answers — and exactly the answer
//!   the in-process service gives for the same scoped identity.
//! * **Budget enforcement is typed**: exhausting a user's ε over the wire
//!   yields a `BUDGET_EXHAUSTED{requested, remaining}` frame, budgets are
//!   tenant-scoped (the same numeric user id under two tenants spends two
//!   budgets), and the spend survives reconnects.
//! * **Overload is typed and survivable**: a tiny admission queue under a
//!   deep pipeline produces `BUSY` frames, never hangs, and the server
//!   serves normally afterwards.
//! * **Adversarial bytes are contained**: garbage on one connection gets a
//!   typed error and a close, while the listener keeps serving others; the
//!   connection cap refuses with a typed frame; shutdown drains in-flight
//!   releases.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pufferfish_core::engine::{MqmApproxCalibrator, ReleaseEngine};
use pufferfish_core::{MqmApproxOptions, Parallelism};
use pufferfish_markov::IntervalClassBuilder;
use pufferfish_net::{
    decode, encode, ClientError, Envelope, ErrorCode, Frame, NetClient, NetServer, NetServerConfig,
    ProgressiveEndpoint, QueryEndpoint, TelemetryOptions, WireMetricValue, WireQuery,
    DEFAULT_MAX_FRAME_LEN,
};
use pufferfish_query::{MechanismCatalog, QueryService, QueryServiceConfig, Table};
use pufferfish_service::{
    audit_ledger, ProgressiveRelease, RefinementSchedule, RefinementStep, ReleaseRequest,
    ReleaseService, ServiceConfig, StreamBackend,
};
use pufferfish_telemetry::{EpsilonLedger, FlightRecorder};

const LENGTH: usize = 60;

fn engine() -> Arc<ReleaseEngine> {
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap();
    ReleaseEngine::shared(MqmApproxCalibrator::new(
        class,
        LENGTH,
        MqmApproxOptions::default(),
    ))
}

fn service(queue_capacity: usize, workers: usize, per_user_epsilon: f64) -> Arc<ReleaseService> {
    Arc::new(
        ReleaseService::start(
            engine(),
            ServiceConfig {
                workers: Parallelism::Threads(workers),
                queue_capacity,
                per_user_epsilon,
            },
        )
        .unwrap(),
    )
}

fn database(seed: usize) -> Vec<usize> {
    (0..LENGTH).map(|t| (t * 7 + seed) % 13 % 2).collect()
}

fn test_query() -> WireQuery {
    WireQuery::StateFrequency {
        state: 1,
        length: LENGTH as u32,
    }
}

#[test]
fn concurrent_connections_get_bitwise_deterministic_releases() {
    let service = service(64, 4, 100.0);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let db = database(3);

    // The ground truth: the identical request through the in-process path,
    // under the exact scoped identity the wire assigns ("tenant#user-hex").
    let reference = service
        .try_submit(ReleaseRequest {
            user: "det#2a".to_string(),
            query: test_query().build().unwrap(),
            database: db.clone(),
            epsilon: 0.25,
            seed: 777,
        })
        .unwrap()
        .wait()
        .unwrap();

    let answers: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let db = db.clone();
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr, "det").unwrap();
                    let (scale, values) =
                        client.release(0x2a, test_query(), &db, 0.25, 777).unwrap();
                    assert!(scale > 0.0);
                    client.goodbye().unwrap();
                    values.iter().map(|v| v.to_bits()).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let expected: Vec<u64> = reference.values.iter().map(|v| v.to_bits()).collect();
    for answer in &answers {
        assert_eq!(
            answer, &expected,
            "a wire release diverged from the in-process release"
        );
    }
    assert_eq!(server.total_connections(), 6);
    server.shutdown();
}

#[test]
fn pipelined_requests_complete_out_of_order_but_all_complete() {
    let service = service(256, 4, 1000.0);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr(), "pipe").unwrap();

    // 40 requests in flight before the first recv: more than the release
    // worker count, so completion order is up to the scheduler.
    let db = database(5);
    let mut expected: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for i in 0..40u64 {
        let frame = Frame::release(i, test_query(), &db, 0.1, 1000 + i).unwrap();
        let seq = client.send(frame).unwrap();
        expected.insert(seq, i);
    }
    for _ in 0..40 {
        let Envelope { seq, frame } = client.recv().unwrap();
        let user = expected.remove(&seq).expect("unknown or duplicate seq");
        match frame {
            Frame::ReleaseOk { values, .. } => assert_eq!(values.len(), 1),
            other => panic!("user {user} got {other:?}"),
        }
    }
    assert!(expected.is_empty(), "every request answered exactly once");
    client.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn budget_exhaustion_over_the_wire_is_typed_and_tenant_scoped() {
    // ε = 0.5 per user: two 0.2-releases fit, the third does not.
    let service = service(64, 2, 0.5);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .unwrap();
    let db = database(1);

    let mut client = NetClient::connect(server.local_addr(), "alpha").unwrap();
    for seed in 0..2 {
        client.release(9, test_query(), &db, 0.2, seed).unwrap();
    }
    match client.release(9, test_query(), &db, 0.2, 3) {
        Err(ClientError::BudgetExhausted {
            requested,
            remaining,
        }) => {
            assert_eq!(requested, 0.2);
            assert!(remaining < 0.2, "remaining was {remaining}");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    // A different user under the same tenant still has a full budget...
    client.release(10, test_query(), &db, 0.2, 4).unwrap();
    client.goodbye().unwrap();

    // ...and the same numeric user id under a *different* tenant does too:
    // the tenant prefix is what the accountant charges.
    let mut other = NetClient::connect(server.local_addr(), "beta").unwrap();
    other.release(9, test_query(), &db, 0.2, 5).unwrap();
    other.goodbye().unwrap();

    // The spend is server-side state: reconnecting as the exhausted tenant
    // does not refresh the budget.
    let mut back = NetClient::connect(server.local_addr(), "alpha").unwrap();
    assert!(matches!(
        back.release(9, test_query(), &db, 0.2, 6),
        Err(ClientError::BudgetExhausted { .. })
    ));
    back.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn overload_returns_busy_and_the_server_stays_healthy() {
    // One slow worker behind a 2-deep queue, hammered by a deep pipeline:
    // some requests must be refused as BUSY, none may hang, and the server
    // must serve normally afterwards.
    let service = service(2, 1, 10_000.0);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig {
            max_pipeline: 256,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let db = database(9);

    let mut client = NetClient::connect(server.local_addr(), "storm").unwrap();
    let mut seqs = Vec::new();
    for i in 0..120u64 {
        seqs.push(
            client
                .send(Frame::release(i, test_query(), &db, 0.01, i).unwrap())
                .unwrap(),
        );
    }
    let mut ok = 0u64;
    let mut busy = 0u64;
    for _ in 0..seqs.len() {
        match client.recv().unwrap().frame {
            Frame::ReleaseOk { .. } => ok += 1,
            Frame::Busy { retry_hint_ms } => {
                busy += 1;
                assert!(retry_hint_ms >= 1);
            }
            other => panic!("unexpected overload response {other:?}"),
        }
    }
    assert!(
        busy > 0,
        "a 2-deep queue under 120 pipelined requests must refuse some"
    );
    assert!(ok > 0, "admission control must not starve everything");
    client.goodbye().unwrap();

    // Health check: a fresh connection serves normally, and the refusals
    // are visible in the STATS frame.
    let mut after = NetClient::connect(server.local_addr(), "after").unwrap();
    after.release(1, test_query(), &db, 0.01, 42).unwrap();
    let stats = after.stats().unwrap();
    assert!(stats.queue_refusals > 0, "refusals must surface in STATS");
    assert!(stats.served >= ok);
    after.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn busy_refusals_do_not_charge_the_budget() {
    // Budget admits exactly 50 ε=0.1 releases. Push 50 through an overload
    // that BUSY-refuses many; every refusal must roll its spend back, so
    // retrying eventually lands all 50.
    let service = service(1, 1, 5.0 + 1e-9);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .unwrap();
    let db = database(2);
    let mut client = NetClient::connect(server.local_addr(), "refund").unwrap();
    let mut landed = 0u64;
    let mut attempts = 0u64;
    while landed < 50 {
        attempts += 1;
        assert!(attempts < 50_000, "refusals must not leak budget");
        match client.release(7, test_query(), &db, 0.1, landed) {
            Ok(_) => landed += 1,
            Err(ClientError::Busy { .. }) => {
                std::thread::sleep(std::time::Duration::from_micros(200))
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    // The 51st must fail on budget, not on queue state.
    match client.release(7, test_query(), &db, 0.1, 999) {
        Err(ClientError::BudgetExhausted { .. }) => {}
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    client.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn query_frames_execute_and_miss_typed() {
    let class = IntervalClassBuilder::symmetric(0.45)
        .grid_points(2)
        .build()
        .unwrap();
    let query_service = QueryService::start(
        MechanismCatalog::new(class),
        QueryServiceConfig {
            per_user_epsilon: 10.0,
            parallelism: Parallelism::Threads(2),
        },
    )
    .unwrap();
    let mut endpoint = QueryEndpoint::new(query_service);
    endpoint.register_table(Table::single("sensor", 2, database(4)).unwrap());

    let service = service(64, 2, 10.0);
    let server = NetServer::bind_with_query(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        endpoint,
        NetServerConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr(), "q").unwrap();

    let statement = "HISTOGRAM WINDOW 30 EPSILON 0.2 MECHANISM MQM_APPROX";
    let result = client.query(5, "sensor", statement, 11).unwrap();
    assert!(!result.cells.is_empty());
    assert!(result.noise_scale > 0.0);
    assert!(result.total_epsilon > 0.0);
    for cell in &result.cells {
        assert!(!cell.windows.is_empty());
        for window in &cell.windows {
            assert_eq!(window.values.len(), 2, "histogram over 2 states");
        }
    }
    // Identical query, identical seed: bitwise-identical over the wire.
    let again = client.query(6, "sensor", statement, 11).unwrap();
    assert_eq!(
        result.cells[0].windows[0]
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        again.cells[0].windows[0]
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    );

    // Typed misses: unknown table, unparsable statement.
    match client.query(5, "nope", statement, 1) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::TableNotFound),
        other => panic!("expected TableNotFound, got {other:?}"),
    }
    match client.query(5, "sensor", "FROBNICATE EVERYTHING", 1) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Parse),
        other => panic!("expected Parse, got {other:?}"),
    }
    client.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn progressive_streams_interleave_with_pipelined_traffic_and_charge_per_refinement() {
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap();
    let service = service(64, 2, 100.0);
    let server = NetServer::bind_full(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        None,
        Some(ProgressiveEndpoint::new(
            class.clone(),
            StreamBackend::MqmApprox,
        )),
        NetServerConfig::default(),
        None,
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr(), "prog").unwrap();

    let window = 16usize;
    let steps = [(8usize, 0.5f64, 4.0f64), (16, 0.5, 2.0)];
    let stream_db: Vec<usize> = (0..window).map(|t| (t * 5 + 1) % 7 % 2).collect();
    let release_db = database(3);

    // One PROGRESSIVE in the middle of ordinary pipelined RELEASE traffic,
    // all in flight before the first recv: its refinements must stream back
    // seq-correlated and in step order, interleaved however completion
    // order falls with the surrounding RELEASE_OK frames.
    let mut release_seqs = std::collections::HashSet::new();
    for i in 0..4u64 {
        release_seqs.insert(
            client
                .send(Frame::release(i, test_query(), &release_db, 0.1, i).unwrap())
                .unwrap(),
        );
    }
    let prog_seq = client
        .send(Frame::progressive(9, 0.9, 42, &steps, &stream_db).unwrap())
        .unwrap();
    for i in 4..8u64 {
        release_seqs.insert(
            client
                .send(Frame::release(i, test_query(), &release_db, 0.1, i).unwrap())
                .unwrap(),
        );
    }

    let mut refinements: Vec<(u32, u32, f64, Vec<f64>)> = Vec::new();
    let mut releases = 0usize;
    while releases < 8 || refinements.len() < steps.len() {
        let Envelope { seq, frame } = client.recv().unwrap();
        match frame {
            Frame::ReleaseOk { .. } => {
                assert!(release_seqs.remove(&seq), "unknown release seq {seq}");
                releases += 1;
            }
            Frame::RefineOk {
                step,
                total_steps,
                prefix,
                spent_epsilon,
                values,
                ..
            } => {
                assert_eq!(seq, prog_seq, "refinements correlate by request seq");
                assert_eq!(total_steps, steps.len() as u32);
                refinements.push((step, prefix, spent_epsilon, values));
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(release_seqs.is_empty());

    // Step order and prefixes are the schedule's, ε-spend is monotone and
    // settles on the schedule's sum — charged per refinement against the
    // *tenant-scoped* budget the connection proved.
    assert_eq!(
        refinements.iter().map(|r| r.0).collect::<Vec<_>>(),
        vec![1, 2]
    );
    assert_eq!(
        refinements.iter().map(|r| r.1).collect::<Vec<_>>(),
        vec![8, 16]
    );
    assert!(refinements[0].2 < refinements[1].2, "ε-spend is monotone");
    let schedule = RefinementSchedule::new(
        steps
            .iter()
            .map(|&(prefix, epsilon, error_bound)| RefinementStep {
                prefix,
                epsilon,
                error_bound,
            })
            .collect(),
        0.9,
    )
    .unwrap();
    assert_eq!(
        refinements[1].2.to_bits(),
        schedule.total_epsilon().to_bits()
    );
    assert_eq!(
        service.budget().spent("prog#9").to_bits(),
        schedule.total_epsilon().to_bits(),
        "the stream's ε lands on the tenant-scoped user"
    );

    // The final refinement over the wire is bitwise-identical to the
    // in-process one-shot release at the same seed and total ε.
    let one_shot = ProgressiveRelease::one_shot(
        "net-progressive",
        &class,
        &schedule,
        StreamBackend::MqmApprox,
        42,
        &stream_db,
    )
    .unwrap();
    assert_eq!(
        refinements[1]
            .3
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        one_shot
            .release
            .values
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "a wire refinement diverged from the in-process release"
    );

    // The blocking client helper drives the same stream end to end, under
    // its own user — charged separately.
    let refined = client.progressive(11, 0.9, 43, &steps, &stream_db).unwrap();
    assert_eq!(refined.len(), steps.len());
    assert!(refined[0].certified_error > refined[1].certified_error);
    assert_eq!(
        service.budget().spent("prog#b").to_bits(),
        schedule.total_epsilon().to_bits()
    );

    // A schedule whose window disagrees with the shipped database is a
    // typed Malformed refusal, not a stream.
    match client.progressive(7, 0.9, 1, &steps, &stream_db[..10]) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // So is an empty schedule.
    match client.progressive(7, 0.9, 1, &[], &stream_db) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    client.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn progressive_without_an_endpoint_is_a_typed_refusal() {
    let service = service(16, 1, 10.0);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr(), "plain").unwrap();
    let db: Vec<usize> = (0..16).map(|t| t % 2).collect();
    match client.progressive(1, 0.9, 7, &[(8, 0.5, 2.0), (16, 0.5, 1.0)], &db) {
        Err(ClientError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::Unsupported);
            assert!(message.contains("progressive"), "message was {message:?}");
        }
        other => panic!("expected a typed Unsupported refusal, got {other:?}"),
    }
    client.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn malformed_bytes_get_a_typed_error_and_the_listener_survives() {
    let service = service(64, 2, 10.0);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Raw garbage on a fresh socket (not even a length prefix that parses).
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0x10, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef])
        .unwrap();
    raw.write_all(&[0u8; 16]).unwrap();
    raw.flush().unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap(); // server answers then closes
    let (envelope, _) = decode(&response, DEFAULT_MAX_FRAME_LEN).unwrap();
    match envelope.frame {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a typed Malformed error, got {other:?}"),
    }

    // A valid frame that is not HELLO as the first frame: typed NotHello.
    let mut eager = TcpStream::connect(addr).unwrap();
    let stats = encode(
        &Envelope {
            seq: 4,
            frame: Frame::Stats,
        },
        DEFAULT_MAX_FRAME_LEN,
    )
    .unwrap();
    eager.write_all(&stats).unwrap();
    eager.flush().unwrap();
    let mut response = Vec::new();
    eager.read_to_end(&mut response).unwrap();
    let (envelope, _) = decode(&response, DEFAULT_MAX_FRAME_LEN).unwrap();
    match envelope.frame {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::NotHello),
        other => panic!("expected NotHello, got {other:?}"),
    }

    // The listener shrugged it all off.
    let mut fine = NetClient::connect(addr, "fine").unwrap();
    fine.release(1, test_query(), &database(6), 0.1, 1).unwrap();
    fine.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn connection_cap_refuses_with_a_typed_frame() {
    let service = service(64, 2, 10.0);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig {
            max_connections: 2,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let held_a = NetClient::connect(addr, "a").unwrap();
    let held_b = NetClient::connect(addr, "b").unwrap();

    // The third connection is told why before the socket closes. The cap
    // check races the accept loop, so allow a few scheduling retries.
    let mut refused = false;
    for _ in 0..50 {
        if server.active_connections() < 2 {
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        }
        let mut extra = TcpStream::connect(addr).unwrap();
        let mut response = Vec::new();
        extra.read_to_end(&mut response).unwrap();
        if response.is_empty() {
            continue;
        }
        let (envelope, _) = decode(&response, DEFAULT_MAX_FRAME_LEN).unwrap();
        match envelope.frame {
            Frame::Error { code, .. } => {
                assert_eq!(code, ErrorCode::TooManyConnections);
                refused = true;
                break;
            }
            other => panic!("expected TooManyConnections, got {other:?}"),
        }
    }
    assert!(refused, "the connection cap never refused");
    assert!(server.refused_connections() >= 1);

    // Freeing a slot re-admits new connections.
    held_a.goodbye().unwrap();
    for _ in 0..100 {
        if server.active_connections() < 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let readmitted = NetClient::connect(addr, "c").unwrap();
    readmitted.goodbye().unwrap();
    held_b.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn telemetry_server_exposes_metrics_traces_and_an_auditable_ledger() {
    let service = service(64, 2, 100.0);
    // Attach the ε-ledger before any traffic so the audit sees every event.
    let ledger = Arc::new(EpsilonLedger::new());
    service.budget().attach_ledger(Arc::clone(&ledger));

    let mut options = TelemetryOptions::new();
    // Threshold 0: every request is "slow", so the recorder captures all.
    options.recorder = Some(Arc::new(FlightRecorder::new(16, 0)));
    let recorder = options.recorder.clone().unwrap();
    let server = NetServer::bind_telemetry(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        None,
        NetServerConfig::default(),
        options,
    )
    .unwrap();
    let db = database(7);

    let mut client = NetClient::connect(server.local_addr(), "obs").unwrap();
    for seed in 0..3u64 {
        client.release(1, test_query(), &db, 0.2, seed).unwrap();
    }
    // One budget refusal must land in the ledger as a Refusal event.
    assert!(matches!(
        client.release(1, test_query(), &db, 1000.0, 9),
        Err(ClientError::BudgetExhausted { .. })
    ));

    let metrics = client.metrics().unwrap();
    let lines: Vec<String> = metrics.iter().map(|m| m.to_string()).collect();
    let find = |name: &str| {
        metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("metric {name} missing from {lines:#?}"))
    };

    // Every layer reported into the one registry: net byte counters, the
    // six-stage span family, service admission counters, engine cache
    // counters.
    match find("net_rx_bytes_total").value {
        WireMetricValue::Counter(n) => assert!(n > 0, "rx bytes must count"),
        ref other => panic!("net_rx_bytes_total was {other:?}"),
    }
    match find("service_admitted_total").value {
        WireMetricValue::Counter(n) => assert_eq!(n, 3),
        ref other => panic!("service_admitted_total was {other:?}"),
    }
    match find("service_refused_total").value {
        WireMetricValue::Counter(n) => assert_eq!(n, 1),
        ref other => panic!("service_refused_total was {other:?}"),
    }
    for stage in [
        "stage_decode_ns",
        "stage_admission_ns",
        "stage_queue_wait_ns",
        "stage_engine_ns",
        "stage_mechanism_ns",
    ] {
        match find(stage).value {
            WireMetricValue::Histogram { count, .. } => {
                assert!(count >= 3, "{stage} saw {count} < 3 samples")
            }
            ref other => panic!("{stage} was {other:?}"),
        }
    }
    match find("engine_mqm_approx_releases_total").value {
        WireMetricValue::Counter(n) => assert_eq!(n, 3),
        ref other => panic!("releases_total was {other:?}"),
    }
    // The exposition lines render in the registry's canonical text format.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("stage_engine_ns histogram count=")),
        "missing exposition line in {lines:#?}"
    );

    // tx bytes only settle after the responses were written; the METRICS
    // response itself was answered, so the counter must be non-zero by now.
    let metrics_again = client.metrics().unwrap();
    let tx = metrics_again
        .iter()
        .find(|m| m.name == "net_tx_bytes_total")
        .unwrap();
    match tx.value {
        WireMetricValue::Counter(n) => assert!(n > 0, "tx bytes must count"),
        ref other => panic!("net_tx_bytes_total was {other:?}"),
    }

    // The flight recorder captured the wire-traced releases with a full
    // decode → encode breakdown.
    assert!(recorder.observed() >= 3);
    let reports = recorder.reports();
    assert!(!reports.is_empty());
    assert!(reports.iter().all(|r| r.to_string().contains("decode=")));

    // The ledger replays to bitwise equality with the live accountant:
    // 3 charges + 1 refusal, all tenant-scoped.
    let report = audit_ledger(&ledger.to_bytes(), service.budget()).unwrap();
    assert_eq!(report.events, 4);
    assert_eq!(report.per_user.len(), 1);
    assert!(report.per_user.contains_key("obs#1"));

    client.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn metrics_on_an_uninstrumented_server_is_a_typed_refusal() {
    let service = service(16, 1, 10.0);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr(), "plain").unwrap();
    match client.metrics() {
        Err(ClientError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::Unsupported);
            assert!(message.contains("telemetry"), "message was {message:?}");
        }
        other => panic!("expected a typed Unsupported refusal, got {other:?}"),
    }
    client.goodbye().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_releases() {
    let service = service(256, 2, 1000.0);
    let server = NetServer::bind(
        ("127.0.0.1", 0),
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr(), "drain").unwrap();
    let db = database(8);

    // Pipeline a burst, then shut the server down while they are in flight.
    let mut outstanding = std::collections::HashSet::new();
    for i in 0..30u64 {
        outstanding.insert(
            client
                .send(Frame::release(i, test_query(), &db, 0.1, i).unwrap())
                .unwrap(),
        );
    }
    client.flush().unwrap();
    server.shutdown();

    // Every admitted request still gets a response frame (RELEASE_OK, BUSY,
    // or a typed shutdown error) before the server closes the socket.
    let mut answered = 0usize;
    // recv() errors with a clean EOF once the drain finishes.
    while let Ok(envelope) = client.recv() {
        if !outstanding.remove(&envelope.seq) {
            // Server-initiated shutdown notice (seq 0), not a reply.
            assert!(
                matches!(
                    envelope.frame,
                    Frame::Error {
                        code: ErrorCode::Shutdown,
                        ..
                    }
                ),
                "unknown seq {} with frame {:?}",
                envelope.seq,
                envelope.frame
            );
            continue;
        }
        match envelope.frame {
            Frame::ReleaseOk { .. } | Frame::Busy { .. } | Frame::Error { .. } => {}
            other => panic!("unexpected drain response {other:?}"),
        }
        answered += 1;
    }
    assert!(
        answered > 0,
        "shutdown must drain, not drop, in-flight requests"
    );
}
