//! Integration test: the flu-status example of Sections 2.2 and 3, released
//! end-to-end through the Wasserstein Mechanism and compared with the
//! group-DP baseline.

use pufferfish_baselines::GroupDp;
use pufferfish_core::flu::{contagion_distribution, flu_clique_framework};
use pufferfish_core::queries::StateCountQuery;
use pufferfish_core::{PrivacyBudget, WassersteinMechanism};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Section 3's worked example: W = 2 for the 4-person clique with infection
/// distribution (0.1, 0.15, 0.5, 0.15, 0.1), strictly better than group DP's
/// sensitivity of 4 (Theorem 3.3).
#[test]
fn paper_flu_example_wasserstein_parameter() {
    let framework = flu_clique_framework(4, &[0.1, 0.15, 0.5, 0.15, 0.1]).unwrap();
    let query = StateCountQuery::new(1, 4);
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism = WassersteinMechanism::calibrate(&framework, &query, budget).unwrap();
    assert!((mechanism.wasserstein_parameter() - 2.0).abs() < 1e-9);

    // Group DP treats the whole clique as one group of 4 binary records, so
    // its Laplace scale for the count query is 4 / epsilon.
    let group = GroupDp::calibrate(4, budget).unwrap();
    assert!((group.noise_scale_for(&query) - 4.0).abs() < 1e-9);
    assert!(mechanism.noise_scale() < group.noise_scale_for(&query));
}

/// End-to-end release accuracy: the Wasserstein Mechanism's mean error is
/// about half that of group DP on the same clique.
#[test]
fn wasserstein_release_beats_group_dp() {
    let framework = flu_clique_framework(4, &[0.1, 0.15, 0.5, 0.15, 0.1]).unwrap();
    let query = StateCountQuery::new(1, 4);
    let budget = PrivacyBudget::new(1.0).unwrap();
    let mechanism = WassersteinMechanism::calibrate(&framework, &query, budget).unwrap();
    let group = GroupDp::calibrate(4, budget).unwrap();

    let database = vec![1, 1, 0, 0];
    let mut rng = StdRng::seed_from_u64(13);
    let trials = 20_000;
    let (mut wasserstein_error, mut group_error) = (0.0, 0.0);
    for _ in 0..trials {
        wasserstein_error += mechanism
            .release(&query, &database, &mut rng)
            .unwrap()
            .l1_error();
        group_error += group
            .release(&query, &database, &mut rng)
            .unwrap()
            .l1_error();
    }
    wasserstein_error /= trials as f64;
    group_error /= trials as f64;
    assert!(
        (wasserstein_error - 2.0).abs() < 0.1,
        "wasserstein {wasserstein_error}"
    );
    assert!((group_error - 4.0).abs() < 0.2, "group {group_error}");
}

/// Correlated contagion models need more noise than independent infections,
/// but the Wasserstein parameter never exceeds the group sensitivity
/// (Theorem 3.3).
///
/// Note `contagion_distribution(n, 0.0)` is *uniform over counts* — a
/// strongly correlated model (the count barely constrains any individual, so
/// conditioning shifts the whole count distribution) — not independence.
/// True independence is the binomial count distribution `C(n, j) / 2^n`.
#[test]
fn contagion_strength_and_clique_size_scaling() {
    let budget = PrivacyBudget::new(1.0).unwrap();
    let query = StateCountQuery::new(1, 6);

    // Independent fair coins: the count is Binomial(6, 1/2) and W collapses
    // to (about) the entry-DP sensitivity 1.
    let binomial: Vec<f64> = {
        let mut row = vec![1.0f64];
        for k in 1..=6usize {
            let next = row[k - 1] * (6 - k + 1) as f64 / k as f64;
            row.push(next);
        }
        let total: f64 = row.iter().sum();
        row.into_iter().map(|c| c / total).collect()
    };
    let independent = flu_clique_framework(6, &binomial).unwrap();
    let w_independent = WassersteinMechanism::calibrate(&independent, &query, budget)
        .unwrap()
        .wasserstein_parameter();
    assert!(w_independent < 2.5, "binomial W = {w_independent}");

    // Every contagion-shaped model is more correlated than independence:
    // W strictly exceeds the independent case yet respects Theorem 3.3's
    // group-sensitivity ceiling.
    for strength in [0.0, 1.0, 2.0] {
        let dist = contagion_distribution(6, strength);
        let framework = flu_clique_framework(6, &dist).unwrap();
        let mechanism = WassersteinMechanism::calibrate(&framework, &query, budget).unwrap();
        let w = mechanism.wasserstein_parameter();
        assert!(w <= 6.0 + 1e-9, "strength {strength}: W = {w}");
        assert!(
            w > w_independent + 0.4,
            "strength {strength}: W = {w} vs independent {w_independent}"
        );
    }
}
