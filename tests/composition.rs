//! Integration test: sequential composition of the Markov Quilt Mechanism
//! (Theorem 4.4) across repeated releases on the same database.

use pufferfish_core::queries::{RelativeFrequencyHistogram, StateFrequencyQuery};
use pufferfish_core::{CompositionAccountant, MqmExact, MqmExactOptions, PrivacyBudget};
use pufferfish_markov::{sample_trajectory, MarkovChain, MarkovChainClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn class_and_data(length: usize) -> (MarkovChainClass, Vec<usize>) {
    let chain =
        MarkovChain::with_stationary_initial(vec![vec![0.85, 0.15], vec![0.30, 0.70]]).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let data = sample_trajectory(&chain, length, &mut rng).unwrap();
    (MarkovChainClass::singleton(chain), data)
}

/// K releases at epsilon each compose to K * epsilon, and the accountant
/// reports exactly that.
#[test]
fn homogeneous_composition_across_releases() {
    let length = 200;
    let (class, data) = class_and_data(length);
    let per_release = 0.25;
    let budget = PrivacyBudget::new(per_release).unwrap();
    let mechanism =
        MqmExact::calibrate(&class, length, budget, MqmExactOptions::default()).unwrap();

    let histogram = RelativeFrequencyHistogram::new(2, length).unwrap();
    let frequency = StateFrequencyQuery::new(1, length);
    let mut accountant = CompositionAccountant::new();
    let mut rng = StdRng::seed_from_u64(7);

    for round in 0..8 {
        if round % 2 == 0 {
            mechanism.release(&histogram, &data, &mut rng).unwrap();
        } else {
            mechanism.release(&frequency, &data, &mut rng).unwrap();
        }
        accountant.record(mechanism.epsilon());
    }
    assert_eq!(accountant.releases(), 8);
    assert!((accountant.guaranteed_epsilon() - 8.0 * per_release).abs() < 1e-12);
    assert!(accountant.remaining(2.1).is_some());
    assert!(accountant.remaining(2.0).is_none());
}

/// Splitting a fixed total budget over more releases forces more noise per
/// release: the per-release scale is proportional to 1/epsilon_k for this
/// fast-mixing chain.
#[test]
fn budget_splitting_increases_per_release_noise() {
    let length = 300;
    let (class, _) = class_and_data(length);
    let single = MqmExact::calibrate(
        &class,
        length,
        PrivacyBudget::new(1.0).unwrap(),
        MqmExactOptions::default(),
    )
    .unwrap();
    let quarter = MqmExact::calibrate(
        &class,
        length,
        PrivacyBudget::new(0.25).unwrap(),
        MqmExactOptions::default(),
    )
    .unwrap();
    assert!(quarter.sigma_max() > single.sigma_max());
    // For rapidly mixing chains, sigma scales close to 1/epsilon (the
    // max-influence term is small relative to epsilon).
    let ratio = quarter.sigma_max() / single.sigma_max();
    assert!(ratio > 2.0 && ratio < 8.0, "ratio {ratio}");
}

/// Heterogeneous budgets are accounted with the K * max rule.
#[test]
fn heterogeneous_budgets_use_worst_case_rule() {
    let mut accountant = CompositionAccountant::new();
    accountant.record(0.1);
    accountant.record(0.3);
    accountant.record(0.2);
    assert!((accountant.guaranteed_epsilon() - 0.9).abs() < 1e-12);
    assert!(accountant.guaranteed_epsilon() >= accountant.total_epsilon());
}
