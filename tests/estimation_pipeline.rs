//! End-to-end estimation pipeline: raw event log → fitted confidence class
//! → calibrated release engine → snapshot export/import → bitwise-identical
//! releases — and the canary-swap path, where in-flight tickets must be
//! answered from a *consistent* calibration (old or new, never a torn mix).

use std::sync::Arc;

use pufferfish_core::engine::{MqmApproxCalibrator, ReleaseEngine};
use pufferfish_core::queries::StateFrequencyQuery;
use pufferfish_core::{MqmApproxOptions, Parallelism, PrivacyBudget, PufferfishError};
use pufferfish_datasets::EventStream;
use pufferfish_markov::{
    estimate_class, ClassEstimationOptions, FittedClass, MarkovChain, MarkovChainClass,
};
use pufferfish_monitor::{
    CanaryConfig, ClassBounds, MonitorConfig, MonitoredService, ServiceMonitor,
};
use pufferfish_service::{ReleaseRequest, ReleaseService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Request database length.
const DB_LEN: usize = 60;

fn two_state(stay0: f64, stay1: f64) -> MarkovChain {
    MarkovChain::new(
        vec![0.5, 0.5],
        vec![vec![stay0, 1.0 - stay0], vec![1.0 - stay1, stay1]],
    )
    .unwrap()
}

fn fit(truth: &MarkovChain, seed: u64) -> FittedClass {
    let log: Vec<usize> = EventStream::new(truth.clone(), seed).take(20_000).collect();
    estimate_class(&[log], 2, ClassEstimationOptions::default()).unwrap()
}

fn engine_for(class: &MarkovChainClass) -> Arc<ReleaseEngine> {
    ReleaseEngine::shared(MqmApproxCalibrator::new(
        class.clone(),
        DB_LEN,
        MqmApproxOptions::default(),
    ))
}

/// The full pipeline: log → fit → widen → calibrate → export → import →
/// replay. The imported engine answers bit-for-bit identically without a
/// single calibration of its own.
#[test]
fn log_to_snapshot_roundtrip_is_bitwise_stable() {
    let truth = two_state(0.8, 0.65);
    let fitted = fit(&truth, 0xE57);
    assert!(fitted.confidence() > 0.9);
    let class = fitted.to_class().unwrap();
    assert!(class.len() >= 3, "widened class must carry corner chains");

    let query = StateFrequencyQuery::new(1, DB_LEN);
    let budget = PrivacyBudget::new(0.5).unwrap();
    let database: Vec<usize> = EventStream::new(truth, 0xE58).take(DB_LEN).collect();

    let cold = engine_for(&class);
    let cold_scale = cold.noise_scale_estimate(&query, budget).unwrap();
    assert!(cold_scale.is_finite() && cold_scale > 0.0);
    let snapshot = cold.export_snapshot();

    let warm = engine_for(&class);
    assert_eq!(warm.import_snapshot(&snapshot).unwrap(), 1);
    let mut cold_rng = StdRng::seed_from_u64(0xE59);
    let mut warm_rng = StdRng::seed_from_u64(0xE59);
    let cold_release = cold
        .release(&query, &database, budget, &mut cold_rng)
        .unwrap();
    let warm_release = warm
        .release(&query, &database, budget, &mut warm_rng)
        .unwrap();
    assert_eq!(
        warm.cache_misses(),
        0,
        "the import must pre-empt calibration"
    );
    assert_eq!(cold_release.scale.to_bits(), warm_release.scale.to_bits());
    for (a, b) in cold_release.values.iter().zip(&warm_release.values) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // The snapshot is keyed by the widened class: an engine built for a
    // *different* fitted class must refuse it rather than serve wrong noise.
    let other = engine_for(&fit(&two_state(0.5, 0.5), 0xE60).to_class().unwrap());
    assert!(matches!(
        other.import_snapshot(&snapshot),
        Err(PufferfishError::Snapshot(_))
    ));
}

/// The canary swap: tickets submitted around an engine swap are each
/// answered entirely by one calibration — every response's scale is
/// bitwise the old engine's scale or bitwise the new one's, never anything
/// else (a torn read would surface as a third value).
#[test]
fn in_flight_tickets_never_see_a_torn_calibration() {
    let old_truth = two_state(0.85, 0.7);
    let new_truth = two_state(0.45, 0.7);
    let old_fit = fit(&old_truth, 0xCA1);
    let query = StateFrequencyQuery::new(1, DB_LEN);
    let epsilon = 0.5;
    let budget = PrivacyBudget::new(epsilon).unwrap();

    let service = Arc::new(
        ReleaseService::start(
            engine_for(&old_fit.to_class().unwrap()),
            ServiceConfig {
                workers: Parallelism::Threads(4),
                queue_capacity: 2048,
                per_user_epsilon: 1e12,
            },
        )
        .unwrap(),
    );
    let monitor = ServiceMonitor::new(
        ClassBounds::from_fitted(&old_fit),
        MonitorConfig::default(),
        64 * 1024,
    );
    let monitored = MonitoredService::attach(
        Arc::clone(&service),
        monitor,
        Box::new(|class: &MarkovChainClass| Ok(engine_for(class))),
        Arc::new(StateFrequencyQuery::new(1, DB_LEN)),
        CanaryConfig {
            min_refit_events: 2048,
            // The canary key matches the serving key, so the swapped-in
            // engine is already warm for the in-flight traffic.
            canary_epsilon: epsilon,
            ..CanaryConfig::default()
        },
    );
    let old_scale = service
        .engine()
        .noise_scale_estimate(&query, budget)
        .unwrap();

    // Serve shifted traffic so the refit buffer holds the *new* regime.
    let mut rng = StdRng::seed_from_u64(0xCA2);
    for i in 0..60 {
        let database = pufferfish_markov::sample_trajectory(&new_truth, DB_LEN, &mut rng).unwrap();
        service
            .release(ReleaseRequest {
                user: format!("feeder-{}", i % 5),
                query: Arc::new(StateFrequencyQuery::new(1, DB_LEN)),
                database,
                epsilon,
                seed: 0xCA3 + i,
            })
            .unwrap();
    }

    // Queue a burst of tickets, swap mid-burst, queue a second burst.
    let database: Vec<usize> =
        pufferfish_markov::sample_trajectory(&new_truth, DB_LEN, &mut rng).unwrap();
    let submit = |seed: u64| {
        service
            .submit(ReleaseRequest {
                user: format!("burst-{}", seed % 7),
                query: Arc::new(StateFrequencyQuery::new(1, DB_LEN)),
                database: database.clone(),
                epsilon,
                seed,
            })
            .unwrap()
    };
    let mut tickets: Vec<_> = (0..512).map(submit).collect();
    let outcome = monitored.recalibrate().unwrap();
    tickets.extend((512..1024).map(submit));

    assert_eq!(outcome.old_scale.to_bits(), old_scale.to_bits());
    let new_scale = outcome.new_scale;
    assert_ne!(
        old_scale.to_bits(),
        new_scale.to_bits(),
        "the fixture needs distinguishable calibrations"
    );

    let mut served_old = 0usize;
    let mut served_new = 0usize;
    for ticket in tickets {
        let release = ticket.wait().unwrap();
        if release.scale.to_bits() == old_scale.to_bits() {
            served_old += 1;
        } else if release.scale.to_bits() == new_scale.to_bits() {
            served_new += 1;
        } else {
            panic!(
                "torn calibration: scale {} is neither old {} nor new {}",
                release.scale, old_scale, new_scale
            );
        }
    }
    assert_eq!(served_old + served_new, 1024);
    assert!(
        served_new >= 512,
        "tickets submitted after the swap must see the new calibration \
         (old {served_old}, new {served_new})"
    );
    let stats = service.stats();
    let monitor_stats = stats.monitor.expect("observer attached");
    assert_eq!(monitor_stats.recalibrations, 1);
    drop(monitored);
    Arc::try_unwrap(service)
        .map_err(|_| "another service handle is still alive")
        .unwrap()
        .shutdown();
}
