//! ScaleIndex accuracy: the interpolated noise scale must sit within the
//! certified error bound of the *exact* calibrated scale at every probed ε,
//! for both a synthetic binary interval class and the activity-monitoring
//! class of Section 5.3 — and out-of-grid ε must fall back to exact probes
//! instead of extrapolating.

use pufferfish_core::queries::{LipschitzQuery, RelativeFrequencyHistogram};
use pufferfish_core::{EpsilonGrid, MqmExactOptions, Parallelism, PrivacyBudget};
use pufferfish_datasets::ActivityCohort;
use pufferfish_markov::{IntervalClassBuilder, MarkovChainClass};
use pufferfish_query::{
    parse_statement, plan_statement, CatalogOptions, MechanismCatalog, MechanismKind, ProbeSource,
    Table,
};

/// Grid shared by the accuracy sweeps.
fn grid() -> EpsilonGrid {
    EpsilonGrid::log_spaced(0.2, 4.0, 6).unwrap()
}

/// The probe ε values: every grid point plus every geometric midpoint
/// (worst case for the interpolation error) plus two asymmetric interior
/// points.
fn probe_epsilons(grid: &EpsilonGrid) -> Vec<f64> {
    let mut epsilons: Vec<f64> = grid.points().to_vec();
    for pair in grid.points().windows(2) {
        epsilons.push((pair[0] * pair[1]).sqrt());
        epsilons.push(pair[0] + 0.8 * (pair[1] - pair[0]));
    }
    epsilons
}

/// The shared sweep: for every family the catalog indexed, every probed ε
/// must satisfy `|indexed − exact| ≤ error_bound`; the family's indexed
/// estimates must inherit the scale's monotonicity; and ε outside the grid
/// must be declined.
fn assert_index_accuracy(catalog: &MechanismCatalog, length: usize, query: &dyn LipschitzQuery) {
    let grid = grid();
    let indexed_kinds: Vec<MechanismKind> = catalog
        .kinds()
        .into_iter()
        .filter(|&kind| catalog.scale_index_for(kind, length).is_some())
        .collect();
    assert!(
        indexed_kinds.len() >= 2,
        "the sweep needs at least two indexable families, got {indexed_kinds:?}"
    );
    for kind in indexed_kinds {
        let index = catalog.scale_index_for(kind, length).unwrap();
        let engine = catalog.engine_for(kind, length).unwrap();
        for &epsilon in &probe_epsilons(&grid) {
            if !index.covers(epsilon) {
                // Float noise in the midpoint construction can nudge an
                // endpoint probe outside the closed range; skip, the
                // explicit out-of-grid checks below cover refusal.
                continue;
            }
            let estimate = index
                .estimate(query, epsilon)
                .unwrap_or_else(|| panic!("{kind}: in-grid epsilon {epsilon} must be estimable"));
            let exact = engine
                .noise_scale_estimate(query, PrivacyBudget::new(epsilon).unwrap())
                .unwrap();
            assert!(
                (estimate.scale - exact).abs() <= estimate.error_bound,
                "{kind} at epsilon {epsilon}: estimate {} vs exact {exact} exceeds certified \
                 bound {}",
                estimate.scale,
                estimate.error_bound
            );
            assert!(
                estimate.lower <= estimate.scale && estimate.scale <= estimate.upper,
                "{kind}: estimate must sit inside its own bracket"
            );
            assert!(
                exact >= estimate.lower - estimate.error_bound
                    && exact <= estimate.upper + estimate.error_bound,
                "{kind} at epsilon {epsilon}: exact scale {exact} escapes the bracket \
                 [{}, {}]",
                estimate.lower,
                estimate.upper
            );
        }
        // Out-of-grid ε: declined in both directions, never extrapolated.
        assert!(index.estimate(query, grid.min_epsilon() / 2.0).is_none());
        assert!(index.estimate(query, grid.max_epsilon() * 2.0).is_none());
    }
}

#[test]
fn index_is_accurate_for_the_binary_interval_class() {
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .unwrap();
    let catalog = MechanismCatalog::with_options(
        class,
        CatalogOptions {
            scale_grid: Some(grid()),
            ..CatalogOptions::default()
        },
    );
    let length = 40;
    let query = RelativeFrequencyHistogram::new(2, length).unwrap();
    // All four class-scoped families index for this weakly correlated class.
    assert_eq!(catalog.warm_scale_index(length, &query).unwrap(), 4);
    assert_index_accuracy(&catalog, length, &query);
}

#[test]
fn index_is_accurate_for_the_activity_class() {
    // The 4-state cyclist cohort chain of Section 5.3: sticky correlations,
    // so GK16 is inapplicable (skipped by warm-up) while the quilt families
    // and GroupDP index fine. The exact-MQM search is width-bounded and
    // middle-node-only (the cohort chain starts stationary) to keep the
    // 6-point grid sweep fast.
    let class = MarkovChainClass::singleton(ActivityCohort::Cyclists.ground_truth_chain().unwrap());
    let catalog = MechanismCatalog::with_options(
        class,
        CatalogOptions {
            mqm_exact: MqmExactOptions {
                max_quilt_width: Some(16),
                search_middle_only: true,
                parallelism: Parallelism::Auto,
            },
            scale_grid: Some(grid()),
            ..CatalogOptions::default()
        },
    );
    let length = 60;
    let query = RelativeFrequencyHistogram::new(4, length).unwrap();
    let indexed = catalog.warm_scale_index(length, &query).unwrap();
    assert!(
        indexed >= 2,
        "the activity class must index at least the MQM + GroupDP families, got {indexed}"
    );
    assert!(
        catalog
            .scale_index_for(MechanismKind::Mqm, length)
            .is_some(),
        "MQMExact must be indexable for the activity class"
    );
    assert_index_accuracy(&catalog, length, &query);
}

#[test]
fn out_of_grid_epsilon_plans_through_exact_probes() {
    let class = MarkovChainClass::singleton(ActivityCohort::Cyclists.ground_truth_chain().unwrap());
    let catalog = MechanismCatalog::with_options(
        class,
        CatalogOptions {
            mqm_exact: MqmExactOptions {
                max_quilt_width: Some(16),
                search_middle_only: true,
                parallelism: Parallelism::Auto,
            },
            scale_grid: Some(grid()),
            ..CatalogOptions::default()
        },
    );
    let length = 60;
    let query = RelativeFrequencyHistogram::new(4, length).unwrap();
    catalog.warm_scale_index(length, &query).unwrap();
    let warm_misses = catalog.cache_stats().0.misses;

    let record: Vec<usize> = (0..length).map(|t| (t / 4) % 4).collect();
    let table = Table::single("cyclist", 4, record).unwrap();

    // In-grid: every successful probe is indexed and nothing calibrates.
    let inside = parse_statement("HISTOGRAM EPSILON 1.3").unwrap();
    let plan = plan_statement(&catalog, &inside, &table).unwrap();
    assert!(plan
        .probes()
        .iter()
        .filter(|probe| probe.outcome.is_ok())
        .all(|probe| matches!(probe.source, ProbeSource::Indexed { .. })));
    assert_eq!(catalog.cache_stats().0.misses, warm_misses);

    // Out-of-grid ε = 8: the planner falls back to exact probes (which do
    // calibrate) and still produces a plan.
    let outside = parse_statement("HISTOGRAM EPSILON 8.0").unwrap();
    let plan = plan_statement(&catalog, &outside, &table).unwrap();
    assert!(plan
        .probes()
        .iter()
        .all(|probe| probe.source == ProbeSource::Exact));
    assert!(catalog.cache_stats().0.misses > warm_misses);
    assert!(plan.noise_scale().is_finite());
}
