//! Wire-protocol client walkthrough: connect, release, query, stats.
//!
//! Start `--example net_server` first, then run
//!
//! ```text
//! cargo run -p pufferfish-bench --release --example net_client -- 127.0.0.1:7878
//! ```
//!
//! The client authenticates a tenant with HELLO, issues a few releases for
//! distinct per-frame user ids (showing the budget is charged per
//! `tenant#user`, not per connection), runs one declarative query against
//! the server's demo table, and prints the server's STATS snapshot. With
//! `--telemetry` it additionally snapshots the server's full metrics
//! registry over a METRICS frame and prints every exposition line (the
//! server must have been started with `--telemetry` too).

use pufferfish_net::{ClientError, NetClient, WireQuery};

const CHAIN_LENGTH: usize = 60;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut telemetry = false;
    for arg in std::env::args().skip(1) {
        if arg == "--telemetry" {
            telemetry = true;
        } else {
            addr = arg;
        }
    }

    let mut client = NetClient::connect(&addr as &str, "demo").expect("connect failed");
    println!(
        "connected to {addr} (server pipeline limit {}, max frame {} bytes)",
        client.server_max_pipeline(),
        client.max_frame_len()
    );

    // A deterministic binary activity trace, released under three queries.
    let database: Vec<usize> = (0..CHAIN_LENGTH).map(|t| (t * 5 + 1) % 11 % 2).collect();
    let queries = [
        (
            "state-frequency(1)",
            WireQuery::StateFrequency {
                state: 1,
                length: CHAIN_LENGTH as u32,
            },
        ),
        (
            "histogram",
            WireQuery::Histogram {
                num_states: 2,
                length: CHAIN_LENGTH as u32,
            },
        ),
        (
            "range-count[0,0]",
            WireQuery::RangeCount {
                lo: 0,
                hi: 0,
                num_states: 2,
                length: CHAIN_LENGTH as u32,
            },
        ),
    ];
    for (user, (name, query)) in queries.into_iter().enumerate() {
        let (scale, values) = client
            .release(user as u64, query, &database, 0.25, 42 + user as u64)
            .expect("release failed");
        println!("user {user} {name}: scale {scale:.3}, noisy values {values:?}");
    }

    // The same (user, query, ε, seed, database) releases identical noise —
    // determinism is part of the wire contract.
    let q = WireQuery::StateFrequency {
        state: 1,
        length: CHAIN_LENGTH as u32,
    };
    let (_, first) = client.release(7, q, &database, 0.25, 99).expect("release");
    let (_, second) = client.release(7, q, &database, 0.25, 99).expect("release");
    assert_eq!(
        first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        second.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    println!("determinism check: identical request → bitwise-identical release");

    // One declarative query against the server's demo table.
    match client.query(1, "sensor", "HISTOGRAM WINDOW 30 EPSILON 0.2", 7) {
        Ok(result) => {
            println!(
                "query via {} (scale {:.3}, total ε {:.2}): {} cell(s)",
                result.mechanism,
                result.noise_scale,
                result.total_epsilon,
                result.cells.len()
            );
            for cell in &result.cells {
                for window in &cell.windows {
                    println!(
                        "  cell {:?} window ..{}: {:?}",
                        cell.key, window.end, window.values
                    );
                }
            }
        }
        Err(ClientError::Remote { code, message }) => {
            println!("query refused ({code}): {message}");
        }
        Err(other) => panic!("query failed: {other}"),
    }

    let stats = client.stats().expect("stats failed");
    println!(
        "server stats: {} served, {} user(s), ε spent {:.2}, queue {}/{} \
         (high-water {}, refused {})",
        stats.served,
        stats.users,
        stats.spent_epsilon,
        stats.queue_depth,
        stats.queue_capacity,
        stats.queue_high_water,
        stats.queue_refusals
    );
    println!(
        "monitor: noise tests {} ({} failed), drift windows {} \
         (score {:.2}, drifted {}), recalibrations {}",
        stats.monitor_noise_tests,
        stats.monitor_noise_failures,
        stats.drift_windows,
        stats.drift_score,
        stats.drifted,
        stats.recalibrations
    );

    if telemetry {
        // The full registry over the wire: every line renders in the same
        // text exposition format as the server-side `Registry::render_text`,
        // so the output greps identically on either side.
        let metrics = client.metrics().expect("metrics failed");
        println!("server metrics ({} series):", metrics.len());
        for metric in &metrics {
            println!("  {metric}");
        }
    }

    client.goodbye().expect("goodbye failed");
    println!("closed cleanly");
}
