//! Cross-process snapshot cycle — the CI driver for the calibration store.
//!
//! ```text
//! snapshot_cycle export <path>   # calibrate, release, write the snapshot
//! snapshot_cycle import <path>   # fresh process: import, verify bitwise
//! ```
//!
//! The two subcommands run in **separate processes** (CI invokes them as
//! separate steps), so a passing `import` proves the on-disk format carries
//! everything a cold process needs: it imports the file, performs zero
//! calibrations, and reproduces — bitwise — the releases of a freshly
//! calibrated reference engine built inside the importing process.

use pufferfish_core::engine::{MqmExactCalibrator, ReleaseEngine};
use pufferfish_core::queries::StateFrequencyQuery;
use pufferfish_core::{CalibrationSnapshot, MqmExactOptions, PrivacyBudget};
use pufferfish_markov::{MarkovChain, MarkovChainClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHAIN_LENGTH: usize = 100;
const EPSILONS: [f64; 3] = [0.5, 1.0, 2.0];
const RELEASE_SEED: u64 = 42;

/// The deterministic engine both processes construct.
fn engine() -> ReleaseEngine {
    let chain =
        MarkovChain::with_stationary_initial(vec![vec![0.85, 0.15], vec![0.35, 0.65]]).unwrap();
    ReleaseEngine::new(MqmExactCalibrator::new(
        MarkovChainClass::singleton(chain),
        CHAIN_LENGTH,
        MqmExactOptions::default(),
    ))
}

fn database() -> Vec<usize> {
    (0..CHAIN_LENGTH).map(|t| (t / 3) % 2).collect()
}

/// The seeded releases both processes compare, one per ε.
fn reference_releases(engine: &ReleaseEngine) -> Vec<(u64, Vec<f64>)> {
    let query = StateFrequencyQuery::new(1, CHAIN_LENGTH);
    let database = database();
    EPSILONS
        .iter()
        .map(|&epsilon| {
            let budget = PrivacyBudget::new(epsilon).unwrap();
            let mut rng = StdRng::seed_from_u64(RELEASE_SEED);
            let release = engine.release(&query, &database, budget, &mut rng).unwrap();
            (release.scale.to_bits(), release.values)
        })
        .collect()
}

fn export(path: &str) {
    let engine = engine();
    let releases = reference_releases(&engine);
    assert_eq!(engine.stats().misses, EPSILONS.len() as u64);
    let bytes = engine.export_snapshot().write_to_file(path).unwrap();
    println!(
        "exported {} calibrations ({} bytes) to {path}",
        EPSILONS.len(),
        bytes
    );
    for (&epsilon, (scale_bits, _)) in EPSILONS.iter().zip(&releases) {
        println!("  epsilon {epsilon}: scale bits {scale_bits:#018x}");
    }
}

fn import(path: &str) {
    let warm = engine();
    let snapshot = CalibrationSnapshot::read_from_file(path).unwrap();
    let imported = warm.import_snapshot(&snapshot).unwrap();
    assert_eq!(imported, EPSILONS.len(), "snapshot must carry every key");
    let warm_releases = reference_releases(&warm);
    assert_eq!(
        warm.stats().misses,
        0,
        "a warm start must perform zero calibrations"
    );

    // The in-process cold reference: whatever this build calibrates from
    // scratch, the imported (other-process) snapshot must reproduce bitwise.
    let cold = engine();
    let cold_releases = reference_releases(&cold);
    assert_eq!(
        warm_releases, cold_releases,
        "imported releases must be bitwise-identical to cold calibration"
    );
    println!(
        "imported {imported} calibrations from {path}: 0 calibrations performed, {} seeded \
         releases bitwise-identical to a cold engine — PASS",
        EPSILONS.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("export") if args.len() == 3 => export(&args[2]),
        Some("import") if args.len() == 3 => import(&args[2]),
        _ => {
            eprintln!("usage: snapshot_cycle <export|import> <path>");
            std::process::exit(2);
        }
    }
}
