//! Household electricity consumption (Section 5.3.2): release a private
//! histogram of power levels for a long, strongly correlated time series.
//!
//! Run with `cargo run -p pufferfish-bench --release --example electricity`.

use pufferfish_baselines::GroupDp;
use pufferfish_core::queries::RelativeFrequencyHistogram;
use pufferfish_core::{MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions, PrivacyBudget};
use pufferfish_datasets::{ElectricityConfig, ElectricityDataset};
use pufferfish_markov::MarkovChainClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    // Keep the example snappy; the bench binary `table3` runs the full
    // million-observation series.
    let length = 100_000;
    let dataset = ElectricityDataset::simulate(ElectricityConfig::small(length), &mut rng)?;
    println!(
        "Simulated {} minutes of household power across {} bins of {} W",
        dataset.len(),
        dataset.config.num_states,
        dataset.config.bin_width_watts
    );

    let class = MarkovChainClass::singleton(dataset.empirical_chain()?);
    for &epsilon in &[0.2, 1.0, 5.0] {
        let budget = PrivacyBudget::new(epsilon)?;
        let approx = MqmApprox::calibrate(&class, length, budget, MqmApproxOptions::default())?;
        let exact = MqmExact::calibrate(
            &class,
            length,
            budget,
            MqmExactOptions {
                max_quilt_width: Some(approx.optimal_quilt_width().max(4)),
                search_middle_only: true,
                ..Default::default()
            },
        )?;
        let group = GroupDp::calibrate(length, budget)?;

        let query = RelativeFrequencyHistogram::new(dataset.config.num_states, length)?;
        let group_err = group.release(&query, &dataset.states, &mut rng)?.l1_error();
        let approx_err = approx
            .release(&query, &dataset.states, &mut rng)?
            .l1_error();
        let exact_err = exact.release(&query, &dataset.states, &mut rng)?.l1_error();
        println!(
            "epsilon = {epsilon:>3}: L1 error GroupDP = {group_err:>9.4}, \
             MQMApprox = {approx_err:.4}, MQMExact = {exact_err:.4}"
        );
    }
    Ok(())
}
