//! Sequential composition (Theorem 4.4): answering several queries about the
//! same correlated time series while tracking the cumulative guarantee.
//!
//! Run with `cargo run -p pufferfish-bench --release --example composition`.

use pufferfish_core::queries::{RelativeFrequencyHistogram, StateFrequencyQuery};
use pufferfish_core::{CompositionAccountant, MqmExact, MqmExactOptions, PrivacyBudget};
use pufferfish_markov::{sample_trajectory, MarkovChain, MarkovChainClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let length = 500;
    let chain = MarkovChain::with_stationary_initial(vec![vec![0.85, 0.15], vec![0.25, 0.75]])?;
    let class = MarkovChainClass::singleton(chain.clone());
    let mut rng = StdRng::seed_from_u64(11);
    let data = sample_trajectory(&chain, length, &mut rng)?;

    // Each analyst query gets a small per-release budget; Theorem 4.4 says
    // the releases compose because they use the same quilt configuration.
    let per_release = 0.25;
    let target = 1.0;
    let budget = PrivacyBudget::new(per_release)?;
    let mechanism = MqmExact::calibrate(&class, length, budget, MqmExactOptions::default())?;
    let mut accountant = CompositionAccountant::new();

    let histogram = RelativeFrequencyHistogram::new(2, length)?;
    let frequency = StateFrequencyQuery::new(1, length);

    println!("Answering queries with epsilon = {per_release} each, target budget {target}:");
    for round in 1.. {
        if accountant.remaining(target).is_none() {
            println!("Budget exhausted after {} releases.", accountant.releases());
            break;
        }
        let release = if round % 2 == 1 {
            mechanism.release(&histogram, &data, &mut rng)?
        } else {
            mechanism.release(&frequency, &data, &mut rng)?
        };
        accountant.record(mechanism.epsilon());
        println!(
            "  release {round}: {} values, L1 error {:.4}, cumulative epsilon {:.2}",
            release.values.len(),
            release.l1_error(),
            accountant.guaranteed_epsilon()
        );
        if round >= 10 {
            break;
        }
    }
    println!(
        "\nTotal guarantee after {} releases: {:.2}-Pufferfish privacy",
        accountant.releases(),
        accountant.guaranteed_epsilon()
    );
    Ok(())
}
