//! Concurrent serving walkthrough: one sharded engine, a worker-pool
//! service with per-user budgets, and continual release over event streams.
//!
//! Run with `cargo run -p pufferfish-bench --release --example concurrent_service`.

use std::sync::Arc;

use pufferfish_core::engine::{MqmApproxCalibrator, ReleaseEngine};
use pufferfish_core::queries::StateFrequencyQuery;
use pufferfish_core::{MqmApproxOptions, Parallelism};
use pufferfish_datasets::StreamWorkload;
use pufferfish_markov::{IntervalClassBuilder, MarkovChain};
use pufferfish_service::{
    ContinualRelease, ReleaseRequest, ReleaseService, ServiceConfig, ServiceError, StreamBackend,
    StreamConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let length = 100;
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(3)
        .build()
        .expect("valid interval class");

    // --- 1. A sharded engine shared by a pool of service workers. ---------
    let engine = ReleaseEngine::shared(MqmApproxCalibrator::new(
        class.clone(),
        length,
        MqmApproxOptions::default(),
    ));
    let service = ReleaseService::start(
        Arc::clone(&engine),
        ServiceConfig {
            workers: Parallelism::Threads(4),
            queue_capacity: 64,
            per_user_epsilon: 1.0,
        },
    )
    .expect("valid service config");

    // Simulated population: deterministic per-user activity streams.
    let truth = MarkovChain::new(vec![0.5, 0.5], vec![vec![0.6, 0.4], vec![0.4, 0.6]])
        .expect("valid chain");
    let workload = StreamWorkload::new(truth, 2024);

    println!("submitting 3 requests each for 8 users (epsilon 0.25 per release)...");
    let tickets: Vec<_> = (0..8u64)
        .flat_map(|user| {
            let database: Vec<usize> = workload.user_stream(user).take(length).collect();
            (0..3).map(move |i| {
                (
                    user,
                    ReleaseRequest {
                        user: format!("user-{user}"),
                        query: Arc::new(StateFrequencyQuery::new(1, length)),
                        database: database.clone(),
                        epsilon: 0.25,
                        seed: user * 10 + i,
                    },
                )
            })
        })
        .map(|(user, request)| (user, service.submit(request).expect("within budget")))
        .collect();
    for (user, ticket) in tickets {
        let release = ticket.wait().expect("release succeeds");
        println!(
            "  user-{user}: noisy frequency {:+.4} (exact {:.4}, scale {:.4})",
            release.values[0], release.true_values[0], release.scale
        );
    }

    // A fourth 0.25-release fits (4 x 0.25 = 1.0); a fifth is refused.
    let database: Vec<usize> = workload.user_stream(0).take(length).collect();
    let request = |seed| ReleaseRequest {
        user: "user-0".to_string(),
        query: Arc::new(StateFrequencyQuery::new(1, length)),
        database: database.clone(),
        epsilon: 0.25,
        seed,
    };
    service.release(request(90)).expect("fourth release fits");
    match service.submit(request(91)) {
        Err(ServiceError::BudgetExhausted {
            user, remaining, ..
        }) => {
            println!("fifth release for {user} refused: remaining budget {remaining:.2}")
        }
        other => panic!("expected budget exhaustion, got {other:?}"),
    }

    let stats = engine.stats();
    println!(
        "engine: {} shard(s), {} calibration(s), {} hit(s), {} coalesced — served {}",
        engine.shard_count(),
        stats.misses,
        stats.hits,
        stats.coalesced,
        service.served()
    );
    service.shutdown();

    // --- 2. Continual release: MQM and GK16 side by side on one stream. ---
    println!("\nstreaming: window 50, slide 25, epsilon 0.2/release, budget 1.0");
    let weak_class = IntervalClassBuilder::symmetric(0.45)
        .grid_points(2)
        .build()
        .expect("valid interval class");
    let stream_config = |backend| StreamConfig {
        window: 50,
        slide: 25,
        epsilon_per_release: 0.2,
        stream_epsilon: 1.0,
        backend,
    };
    let mut mqm =
        ContinualRelease::new("mqm", &weak_class, stream_config(StreamBackend::MqmApprox))
            .expect("mqm stream calibrates");
    let mut gk16 = ContinualRelease::new("gk16", &weak_class, stream_config(StreamBackend::Gk16))
        .expect("gk16 stream calibrates");
    println!(
        "  calibrated noise scales: mqm {:.4}, gk16 {:.4}",
        mqm.noise_scale(),
        gk16.noise_scale()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let mut gk_rng = StdRng::seed_from_u64(7);
    for event in workload.user_stream(99).take(200) {
        if let Ok(Some(window)) = mqm.push(event, &mut rng) {
            println!(
                "  mqm  @ event {:>3}: histogram {:?} (spent {:.2})",
                window.window_end,
                window
                    .release
                    .values
                    .iter()
                    .map(|v| (v * 100.0).round() / 100.0)
                    .collect::<Vec<f64>>(),
                window.spent_epsilon
            );
        }
        let _ = gk16.push(event, &mut gk_rng);
    }
    println!(
        "  mqm:  {} release(s), exhausted: {}",
        mqm.releases(),
        mqm.is_exhausted()
    );
    println!(
        "  gk16: {} release(s), exhausted: {}",
        gk16.releases(),
        gk16.is_exhausted()
    );
}
