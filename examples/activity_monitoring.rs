//! Physical-activity monitoring (Example 1 / Section 5.3.1): release private
//! activity histograms for a simulated cohort and compare mechanisms.
//!
//! Run with `cargo run -p pufferfish-bench --release --example activity_monitoring`.

use pufferfish_baselines::GroupDp;
use pufferfish_core::queries::RelativeFrequencyHistogram;
use pufferfish_core::{MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions, PrivacyBudget};
use pufferfish_datasets::{
    relative_frequencies, ActivityCohort, ActivityDataset, ActivitySimulationConfig,
    ACTIVITY_LABELS, ACTIVITY_STATES,
};
use pufferfish_markov::MarkovChainClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);
    let observations = 6_000;
    let dataset = ActivityDataset::simulate(
        ActivityCohort::Cyclists,
        ActivitySimulationConfig {
            observations_per_participant: observations,
            gap_probability: 0.0005,
            participants: Some(8),
        },
        &mut rng,
    )?;

    // The model class is the cohort-level empirical chain.
    let class = MarkovChainClass::singleton(dataset.empirical_chain()?);
    let budget = PrivacyBudget::new(1.0)?;
    let approx = MqmApprox::calibrate(&class, observations, budget, MqmApproxOptions::default())?;
    let exact = MqmExact::calibrate(
        &class,
        observations,
        budget,
        MqmExactOptions {
            max_quilt_width: Some(approx.optimal_quilt_width().max(4)),
            search_middle_only: true,
            ..Default::default()
        },
    )?;

    let query = RelativeFrequencyHistogram::new(ACTIVITY_STATES, observations)?;
    let participant = &dataset.participants[0];
    let data = participant.concatenated();
    let exact_histogram = relative_frequencies(&data, ACTIVITY_STATES);

    let group_dp = GroupDp::calibrate(participant.longest_segment(), budget)?;
    let group_release = group_dp.release(&query, &data, &mut rng)?;
    let approx_release = approx.release(&query, &data, &mut rng)?;
    let exact_release = exact.release(&query, &data, &mut rng)?;

    println!("One cyclist's day, epsilon = 1");
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10}",
        "activity", "exact", "GroupDP", "MQMApprox", "MQMExact"
    );
    for (state, label) in ACTIVITY_LABELS.iter().enumerate() {
        println!(
            "{:<14} {:>8.4} {:>10.4} {:>10.4} {:>10.4}",
            label,
            exact_histogram[state],
            group_release.values[state],
            approx_release.values[state],
            exact_release.values[state]
        );
    }
    println!(
        "\nL1 errors  GroupDP: {:.4}  MQMApprox: {:.4}  MQMExact: {:.4}",
        group_release.l1_error(),
        approx_release.l1_error(),
        exact_release.l1_error()
    );
    println!(
        "Noise multipliers  sigma_approx = {:.2}, sigma_exact = {:.2}, group size = {}",
        approx.sigma_max(),
        exact.sigma_max(),
        participant.longest_segment()
    );
    Ok(())
}
