//! A batch REPL for the query language: run a `.pfq` script (or the
//! built-in demo) against a simulated sensor table.
//!
//! ```text
//! cargo run --release --example query_repl -- examples/queries.pfq
//! cargo run --release --example query_repl            # built-in demo script
//! ```
//!
//! Every statement is parsed, cost-planned (watch the probe column pick the
//! minimum-noise-scale mechanism under `auto`), admitted against the
//! submitting user's ε budget and executed; the process exits non-zero on
//! the first failure, which is what makes it a CI smoke test.

use std::process::ExitCode;

use pufferfish_bench::reporting::render_table;
use pufferfish_core::{MqmExactOptions, Parallelism};
use pufferfish_markov::{sample_trajectory, IntervalClassBuilder, MarkovChain};
use pufferfish_query::{
    parse_script, plan_statement, CatalogOptions, MechanismCatalog, QueryService,
    QueryServiceConfig, Table,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DEMO_SCRIPT: &str = "\
# Built-in demo: the same statements as examples/queries.pfq.
HISTOGRAM EPSILON 0.5
COUNT STATE 1 WINDOW 60 STEP 30 EPSILON 0.1
RANGE 0 0 WINDOW 60 STEP 60 EPSILON 0.1 MECHANISM mqm_approx
MEAN EPSILON 0.2 MECHANISM group_dp
HISTOGRAM WINDOW 120 GROUP BY user EPSILON 0.2 MECHANISM auto
";

fn main() -> ExitCode {
    let script = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => {
                println!("script: {path}");
                text
            }
            Err(e) => {
                eprintln!("cannot read script '{path}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            println!("script: <built-in demo>");
            DEMO_SCRIPT.to_string()
        }
    };

    // The data: a 240-step binary sensor trace drawn from a moderately
    // correlated chain; the class: transition probabilities in [0.42, 0.58]
    // (weak enough that every mechanism family — including GK16 — is
    // eligible, so cost-based selection has real choices to make).
    let class = IntervalClassBuilder::symmetric(0.42)
        .grid_points(3)
        .build()
        .unwrap();
    let truth = MarkovChain::new(vec![0.5, 0.5], vec![vec![0.6, 0.4], vec![0.45, 0.55]]).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let trace = sample_trajectory(&truth, 240, &mut rng).unwrap();
    let table = Table::single("sensor-0", 2, trace).unwrap();
    println!(
        "table: '{}', {} states, {} records\n",
        table.name(),
        table.num_states(),
        table.groups()[0].len()
    );

    // Bound the exact-MQM quilt search so cold plans stay snappy.
    let catalog = MechanismCatalog::with_options(
        class,
        CatalogOptions {
            mqm_exact: MqmExactOptions {
                max_quilt_width: Some(24),
                search_middle_only: false,
                parallelism: Parallelism::Auto,
            },
            ..CatalogOptions::default()
        },
    );
    let service = QueryService::start(
        catalog,
        QueryServiceConfig {
            per_user_epsilon: 5.0,
            parallelism: Parallelism::Auto,
        },
    )
    .unwrap();

    let statements = match parse_script(&script) {
        Ok(statements) => statements,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if statements.is_empty() {
        eprintln!("script contains no statements");
        return ExitCode::FAILURE;
    }

    for (index, statement) in statements.iter().enumerate() {
        println!(">>> {statement}");
        let plan = match plan_statement(service.catalog(), statement, &table) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let probes: Vec<String> = plan
            .probes()
            .iter()
            .map(|probe| match &probe.outcome {
                Ok(scale) => format!("{} b={scale:.4}", probe.kind),
                Err(_) => format!("{} n/a", probe.kind),
            })
            .collect();
        println!(
            "    plan: mechanism={} scale={:.5} expected-L1={:.5} total-eps={:.2} \
             releases={}  [{}]",
            plan.chosen(),
            plan.noise_scale(),
            plan.expected_l1_error(),
            plan.total_epsilon(),
            plan.releases(),
            probes.join(", ")
        );
        let result = match service.execute("analyst", &plan, 1000 + index as u64) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let mut rows = Vec::new();
        for cell in result.cells() {
            for (end, release) in cell.window_ends().iter().zip(cell.releases()) {
                let values: Vec<String> =
                    release.values.iter().map(|v| format!("{v:.4}")).collect();
                rows.push(vec![
                    cell.key().to_string(),
                    end.to_string(),
                    values.join(", "),
                    format!("{:.4}", release.l1_error()),
                ]);
            }
        }
        println!(
            "{}",
            indent(&render_table(
                &["cell", "window end", "noisy values", "L1 error"],
                &rows
            ))
        );
    }

    println!("service stats: {}", service.stats());
    println!(
        "budget: analyst spent eps = {:.3} of {:.3}",
        service.budget().spent("analyst"),
        service.budget().target_epsilon()
    );
    ExitCode::SUCCESS
}

fn indent(table: &str) -> String {
    table
        .lines()
        .map(|line| format!("    {line}"))
        .collect::<Vec<_>>()
        .join("\n")
}
