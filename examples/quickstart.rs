//! Quickstart: release a private activity histogram from a correlated time
//! series with the Markov Quilt Mechanism.
//!
//! Run with `cargo run -p pufferfish-bench --release --example quickstart`.

use pufferfish_core::queries::RelativeFrequencyHistogram;
use pufferfish_core::{MqmApprox, MqmApproxOptions, MqmExact, MqmExactOptions, PrivacyBudget};
use pufferfish_markov::{sample_trajectory, MarkovChain, MarkovChainClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A subject's activity alternates between "resting" (0) and "moving" (1),
    // modelled as a two-state Markov chain sampled once a minute.
    let truth = MarkovChain::new(vec![0.7, 0.3], vec![vec![0.9, 0.1], vec![0.3, 0.7]])?;
    let length = 1_440; // one day of minutes
    let mut rng = StdRng::seed_from_u64(7);
    let day = sample_trajectory(&truth, length, &mut rng)?;

    // The analyst's model class Θ: the empirical chain fitted to the data
    // (the paper's real-data methodology).
    let class = MarkovChainClass::singleton(MarkovChain::with_stationary_initial(vec![
        vec![0.9, 0.1],
        vec![0.3, 0.7],
    ])?);

    // Calibrate both Markov Quilt Mechanism variants at epsilon = 1.
    let budget = PrivacyBudget::new(1.0)?;
    let approx = MqmApprox::calibrate(&class, length, budget, MqmApproxOptions::default())?;
    let exact = MqmExact::calibrate(
        &class,
        length,
        budget,
        MqmExactOptions {
            max_quilt_width: Some(approx.optimal_quilt_width().max(4)),
            search_middle_only: true,
        },
    )?;

    println!("MQMApprox noise multiplier sigma_max = {:.4}", approx.sigma_max());
    println!("MQMExact  noise multiplier sigma_max = {:.4}", exact.sigma_max());
    println!("(the trivial / group-DP multiplier would be {length})");

    // Release the fraction of the day spent in each activity.
    let query = RelativeFrequencyHistogram::new(2, length)?;
    let release = exact.release(&query, &day, &mut rng)?;
    println!("\n{:<12} {:>10} {:>10}", "activity", "exact", "private");
    for (state, label) in ["resting", "moving"].iter().enumerate() {
        println!(
            "{:<12} {:>10.4} {:>10.4}",
            label, release.true_values[state], release.values[state]
        );
    }
    println!("\nL1 error of this release: {:.5}", release.l1_error());
    Ok(())
}
