//! Quickstart: release a private activity histogram from a correlated time
//! series through the unified `Mechanism` trait and the cached release
//! engine.
//!
//! Run with `cargo run -p pufferfish-bench --release --example quickstart`.

use pufferfish_core::engine::{MqmApproxCalibrator, MqmExactCalibrator, ReleaseEngine};
use pufferfish_core::queries::RelativeFrequencyHistogram;
use pufferfish_core::{Mechanism, MqmApprox, MqmApproxOptions, MqmExactOptions, PrivacyBudget};
use pufferfish_markov::{sample_trajectory, MarkovChain, MarkovChainClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A subject's activity alternates between "resting" (0) and "moving" (1),
    // modelled as a two-state Markov chain sampled once a minute.
    let truth = MarkovChain::new(vec![0.7, 0.3], vec![vec![0.9, 0.1], vec![0.3, 0.7]])?;
    let length = 1_440; // one day of minutes
    let mut rng = StdRng::seed_from_u64(7);
    let day = sample_trajectory(&truth, length, &mut rng)?;

    // The analyst's model class Θ: the empirical chain fitted to the data
    // (the paper's real-data methodology).
    let class = MarkovChainClass::singleton(MarkovChain::with_stationary_initial(vec![
        vec![0.9, 0.1],
        vec![0.3, 0.7],
    ])?);

    // MQMApprox is cheap to calibrate and its winning quilt width seeds the
    // MQMExact search radius (the paper's experimental configuration).
    let budget = PrivacyBudget::new(1.0)?;
    let approx = MqmApprox::calibrate(&class, length, budget, MqmApproxOptions::default())?;

    // Serve releases through engines: the first release calibrates, every
    // further (ε, query) repeat is a cache hit.
    let approx_engine = ReleaseEngine::new(MqmApproxCalibrator::new(
        class.clone(),
        length,
        MqmApproxOptions::default(),
    ));
    let exact_engine = ReleaseEngine::new(MqmExactCalibrator::new(
        class,
        length,
        MqmExactOptions {
            max_quilt_width: Some(approx.optimal_quilt_width().max(4)),
            search_middle_only: true,
            ..Default::default()
        },
    ));

    // Both engines hand back uniform `Arc<dyn Mechanism>` handles.
    let query = RelativeFrequencyHistogram::new(2, length)?;
    let mechanisms: Vec<std::sync::Arc<dyn Mechanism>> = vec![
        approx_engine.mechanism(&query, budget)?,
        exact_engine.mechanism(&query, budget)?,
    ];
    for mechanism in &mechanisms {
        println!(
            "{:<12} noise scale for the histogram = {:.6}  (epsilon = {})",
            mechanism.name(),
            mechanism.noise_scale_for(&query),
            mechanism.epsilon()
        );
    }
    println!("(the trivial / group-DP multiplier would scale with T = {length})");

    // Release the fraction of the day spent in each activity with MQMExact.
    let release = exact_engine.release(&query, &day, budget, &mut rng)?;
    println!("\n{:<12} {:>10} {:>10}", "activity", "exact", "private");
    for (state, label) in ["resting", "moving"].iter().enumerate() {
        println!(
            "{:<12} {:>10.4} {:>10.4}",
            label, release.true_values[state], release.values[state]
        );
    }
    println!("\nL1 error of this release: {:.5}", release.l1_error());

    // A second day of traffic: same (class, epsilon, query) key, so the
    // engine skips recalibration entirely.
    let day2 = sample_trajectory(&truth, length, &mut rng)?;
    let release2 = exact_engine.release(&query, &day2, budget, &mut rng)?;
    println!(
        "second release L1 error {:.5} (cache hits: {}, misses: {})",
        release2.l1_error(),
        exact_engine.cache_hits(),
        exact_engine.cache_misses()
    );
    Ok(())
}
