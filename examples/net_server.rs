//! Stand-alone TCP release server: the binary half of the wire quickstart.
//!
//! Run with
//!
//! ```text
//! cargo run -p pufferfish-bench --release --example net_server -- 127.0.0.1:7878
//! ```
//!
//! then point `--example net_client` at the same address. Useful flags:
//!
//! * first positional arg — listen address (default `127.0.0.1:7878`;
//!   `127.0.0.1:0` picks an ephemeral port and prints it)
//! * `--exit-after-connections N` — shut down gracefully once N
//!   connections have come and gone (how CI runs the server/client pair as
//!   separate processes with a deterministic exit)
//! * `--telemetry` — attach the unified telemetry layer: a metrics
//!   registry every client can snapshot with METRICS, a flight recorder of
//!   slow requests, and an ε-spend ledger audited (bitwise, against the
//!   live accountant) at shutdown

use std::sync::Arc;
use std::time::Duration;

use pufferfish_core::engine::{MqmApproxCalibrator, ReleaseEngine};
use pufferfish_core::{MqmApproxOptions, Parallelism};
use pufferfish_markov::IntervalClassBuilder;
use pufferfish_monitor::{ClassBounds, MonitorConfig, ServiceMonitor};
use pufferfish_net::{NetServer, NetServerConfig, QueryEndpoint, TelemetryOptions};
use pufferfish_query::{MechanismCatalog, QueryService, QueryServiceConfig, Table};
use pufferfish_service::{audit_ledger, ReleaseObserver, ReleaseService, ServiceConfig};
use pufferfish_telemetry::{EpsilonLedger, FlightRecorder};

const CHAIN_LENGTH: usize = 60;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut exit_after: Option<u64> = None;
    let mut telemetry = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--exit-after-connections" {
            let n = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--exit-after-connections needs a number");
            exit_after = Some(n);
        } else if arg == "--telemetry" {
            telemetry = true;
        } else {
            addr = arg;
        }
    }

    // The serving stack: a weakly correlated binary interval class behind
    // the approximate Markov Quilt mechanism, shared by 4 workers.
    let class = IntervalClassBuilder::symmetric(0.4)
        .grid_points(2)
        .build()
        .expect("valid interval class");
    let engine = ReleaseEngine::shared(MqmApproxCalibrator::new(
        class.clone(),
        CHAIN_LENGTH,
        MqmApproxOptions::default(),
    ));
    let service = Arc::new(
        ReleaseService::start(
            engine,
            ServiceConfig {
                workers: Parallelism::Threads(4),
                queue_capacity: 256,
                per_user_epsilon: 5.0,
            },
        )
        .expect("valid service config"),
    );

    // Self-validation: a monitor watches every release (sequential noise
    // test + windowed drift detection against a generous demo envelope),
    // and its counters ride the STATS wire frame to every client.
    let monitor = ServiceMonitor::new(
        ClassBounds::new(vec![vec![0.05; 2]; 2], vec![vec![0.95; 2]; 2]),
        MonitorConfig::default(),
        8 * 1024,
    );
    service.set_observer(Arc::clone(&monitor) as Arc<dyn ReleaseObserver>);

    // A query endpoint with one demo table, so QUERY frames work too.
    let query_service = QueryService::start(
        MechanismCatalog::new(class),
        QueryServiceConfig {
            per_user_epsilon: 5.0,
            parallelism: Parallelism::Threads(2),
        },
    )
    .expect("valid query config");
    let mut endpoint = QueryEndpoint::new(query_service);
    let sensor: Vec<usize> = (0..CHAIN_LENGTH).map(|t| (t * 7 + 3) % 13 % 2).collect();
    endpoint.register_table(Table::single("sensor", 2, sensor).expect("valid table"));

    // With --telemetry: one registry shared by every layer (net byte
    // counters, the six-stage span family, service admission counters,
    // engine cache counters), a flight recorder capturing requests slower
    // than 1 ms end to end, and an append-only ε-ledger the shutdown path
    // audits bitwise against the live accountant.
    let ledger = telemetry.then(|| {
        let ledger = Arc::new(EpsilonLedger::new());
        service.budget().attach_ledger(Arc::clone(&ledger));
        ledger
    });
    let server = if telemetry {
        let mut options = TelemetryOptions::new();
        options.recorder = Some(Arc::new(FlightRecorder::new(64, 1_000_000)));
        NetServer::bind_telemetry(
            &addr as &str,
            Arc::clone(&service),
            Some(endpoint),
            NetServerConfig::default(),
            options,
        )
    } else {
        NetServer::bind_with_query(
            &addr as &str,
            Arc::clone(&service),
            endpoint,
            NetServerConfig::default(),
        )
    }
    .expect("bind failed");

    println!("listening on {}", server.local_addr());
    if telemetry {
        println!("telemetry on: METRICS frames answered, ε-ledger attached");
    }
    match exit_after {
        Some(n) => {
            // Poll until N connections have been accepted and finished,
            // then drain and exit — the deterministic CI lifecycle.
            loop {
                if server.total_connections() >= n && server.active_connections() == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            let stats = server.stats();
            println!(
                "served {} release(s) across {} connection(s); shutting down",
                stats.served,
                server.total_connections()
            );
            server.shutdown();
            if let Some(ledger) = &ledger {
                let report = audit_ledger(&ledger.to_bytes(), service.budget())
                    .expect("ledger audit must reconstruct the accountant bitwise");
                println!(
                    "ledger audit passed: {} event(s), {} user(s), total ε {:.6} \
                     bitwise-equal to the live accountant",
                    report.events,
                    report.per_user.len(),
                    report.total
                );
            }
        }
        None => {
            // Serve until the process is killed.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    }
}
