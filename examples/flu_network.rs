//! The flu-status social-network example (Sections 2–3 of the paper),
//! released with the Wasserstein Mechanism.
//!
//! Run with `cargo run -p pufferfish-bench --release --example flu_network`.

use pufferfish_baselines::GroupDp;
use pufferfish_core::flu::{contagion_distribution, flu_clique_framework};
use pufferfish_core::queries::StateCountQuery;
use pufferfish_core::{Mechanism, PrivacyBudget, WassersteinMechanism};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A workplace clique of 4 people; flu spreads, so statuses are highly
    // correlated. The modelling assumption is the paper's distribution over
    // the number of infected people.
    let clique_size = 4;
    let infection_distribution = [0.1, 0.15, 0.5, 0.15, 0.1];
    let framework = flu_clique_framework(clique_size, &infection_distribution)?;

    // Query: how many people have the flu?
    let query = StateCountQuery::new(1, clique_size);
    let mechanism = WassersteinMechanism::calibrate(&framework, &query, PrivacyBudget::new(1.0)?)?;

    println!(
        "Wasserstein parameter W = {:.3} (group DP would use sensitivity {})",
        mechanism.wasserstein_parameter(),
        clique_size
    );
    println!(
        "Laplace scale at epsilon = 1: {:.3}",
        mechanism.noise_scale()
    );

    // The true database: two of the four are infected. Both mechanisms are
    // served uniformly through the `Mechanism` trait.
    let database = vec![1, 0, 1, 0];
    let mut rng = StdRng::seed_from_u64(42);
    let group_dp = GroupDp::calibrate(clique_size, PrivacyBudget::new(1.0)?)?;
    let contenders: [&dyn Mechanism; 2] = [&mechanism, &group_dp];
    println!();
    for contender in contenders {
        let release = contender.release(&query, &database, &mut rng)?;
        println!(
            "{:<12} true infected: {:.0}, privately released: {:.2} (scale {:.2})",
            contender.name(),
            release.true_values[0],
            release.values[0],
            release.scale
        );
    }

    // A more contagious model (the exp(2j) distribution of Section 2.2)
    // produces stronger correlation and therefore a larger W.
    let contagious = contagion_distribution(clique_size, 2.0);
    let contagious_framework = flu_clique_framework(clique_size, &contagious)?;
    let contagious_mechanism =
        WassersteinMechanism::calibrate(&contagious_framework, &query, PrivacyBudget::new(1.0)?)?;
    println!(
        "\nWith the exp(2j) contagion model, W grows to {:.3}",
        contagious_mechanism.wasserstein_parameter()
    );
    Ok(())
}
